"""Table 3 — hardware cost, access latency and energy per structure.

Sizes and field widths are deterministic bit-level accounting and must
match the paper exactly; area/latency/energy come from the calibrated
CACTI-like model and must track the published CACTI outputs.
"""

import pytest

from repro.harness.experiments import table3_hardware_cost


def test_table3_hardware_cost(once, emit):
    table = once(table3_hardware_cost)
    emit(table, "table3")
    rows = table.row_map()

    # Exact size accounting (KB) per structure.
    for name, kb in [
        ("baseline_llc", 2156.0),
        ("precise_1mb", 1080.0),
        ("dopp_tag", 154.0),
        ("dopp_data", 275.0),
        ("uni_tag", 316.0),
        ("uni_data", 1100.0),
    ]:
        assert rows[name][3] == pytest.approx(kb, rel=1e-3), name

    # Exact tag-entry widths.
    widths = {name: rows[name][2] for name in rows}
    assert widths["baseline_llc"] == 27
    assert widths["dopp_tag"] == 77
    assert widths["dopp_data"] == 38
    assert widths["uni_tag"] == 79

    # Model tracks published CACTI outputs (column pairs ours/paper).
    for name in rows:
        ours, paper = rows[name][5], rows[name][6]
        if paper is not None:
            assert ours == pytest.approx(paper, rel=0.30), name

    # Sec. 5.6: Doppelgänger's MTag+data access beats the baseline's
    # data access latency (paper: by 1.31x).
    dopp_access = rows["dopp_data"][7] + rows["dopp_data"][8]
    assert dopp_access < rows["baseline_llc"][8]
