"""Fig. 7 — approximate-data storage savings vs map-space size.

Paper: 65.2% average savings with a 12-bit map space, 37.9% with
14-bit; savings shrink as the map space grows because fewer blocks are
deemed similar. Even the low-element-wise-similarity benchmarks
(inversek2j, jmeint) show substantial block-granularity savings.
"""

from repro.harness.experiments import fig07_map_space_savings


def test_fig07_map_space_savings(once, ctx, emit):
    table = once(lambda: fig07_map_space_savings(ctx))
    emit(table, "fig07")
    by_name = table.row_map()
    # Savings monotonically decrease as the map space grows.
    for row in table.rows:
        vals = row[1:]
        assert all(a >= b - 1e-9 for a, b in zip(vals, vals[1:])), row[0]
    # Substantial average savings at every size.
    mean = by_name["mean"]
    assert mean[1] > mean[3] > 0.25
    # inversek2j and jmeint still save storage at block granularity
    # despite near-zero element-wise similarity (paper Sec. 5.1).
    assert by_name["inversek2j"][3] > 0.2
    assert by_name["jmeint"][3] > 0.1
