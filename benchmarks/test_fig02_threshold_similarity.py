"""Fig. 2 — storage savings vs element-wise similarity threshold T.

Paper: virtually no savings at T = 0% (except blackscholes/swaptions,
whose parameters repeat exactly); savings grow as T relaxes;
inversek2j/jmeint stay low because one out-of-threshold element pair
disqualifies a whole block.
"""

from repro.harness.experiments import fig02_threshold_similarity


def test_fig02_threshold_similarity(once, ctx, emit):
    table = once(lambda: fig02_threshold_similarity(ctx))
    emit(table, "fig02")
    by_name = table.row_map()
    # Exact redundancy exists in the pricing benchmarks at T=0.
    assert by_name["blackscholes"][1] > 0.05
    assert by_name["swaptions"][1] > 0.05
    # Savings are monotone in T for every workload.
    for row in table.rows:
        vals = row[1:]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))
    # jmeint finds little element-wise similarity even at T=10%.
    assert by_name["jmeint"][5] < 0.35
