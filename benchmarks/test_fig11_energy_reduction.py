"""Fig. 11 — LLC dynamic and leakage energy reductions.

Paper headline: with the 1/4 data array, 2.55x dynamic and 1.41x
leakage energy reductions over the baseline 2 MB LLC; savings grow as
the data array shrinks; canneal benefits least on the dynamic side
because its extra misses generate extra cache activity.
"""

from repro.harness.experiments import fig11_energy_reduction


def test_fig11_energy_reduction(once, ctx, emit):
    tables = once(lambda: fig11_energy_reduction(ctx))
    emit(tables, "fig11")
    dyn = tables["dynamic"].row_map()["geomean"]
    leak = tables["leakage"].row_map()["geomean"]

    # Dynamic energy reduction in the paper's band at 1/4 (2.55x).
    # The absolute anchor only holds with Table 1's structure sizes:
    # the fixed 168 pJ map-generation energy does not shrink when
    # REPRO_SCALE scales the arrays down.
    if ctx.size_factor >= 1.0:
        assert 1.8 < dyn[2] < 3.5
    else:
        assert dyn[2] > 1.0
    # Monotone improvement as the array shrinks.
    assert dyn[1] <= dyn[2] <= dyn[3]
    assert leak[1] <= leak[2] <= leak[3]
    # Leakage reduction near the paper's 1.41x at 1/4 (the fixed
    # periphery offset in the leakage model also assumes full scale).
    if ctx.size_factor >= 1.0:
        assert 1.1 < leak[2] < 1.8

    # canneal's dynamic reduction trails the field (extra activity).
    rows = {row[0]: row for row in tables["dynamic"].rows if row[0] != "geomean"}
    best = max(row[2] for row in rows.values())
    assert rows["canneal"][2] < best
