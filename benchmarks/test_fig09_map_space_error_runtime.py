"""Fig. 9 — output error (a) and normalized runtime (b) vs map space.

Paper: error decreases with a larger map space (fewer blocks deemed
similar); all benchmarks stay near or below 10% error at 14 bits
except ferret (pessimistic metric) and swaptions (mixed-purpose
floats). Runtime moves by <1% on average between 12- and 14-bit maps.
"""

from repro.harness.experiments import fig09_map_space
from repro.harness.reporting import geometric_mean


def test_fig09_map_space(once, ctx, emit):
    tables = once(lambda: fig09_map_space(ctx))
    emit(tables, "fig09")
    err = tables["error"].row_map()
    run = tables["runtime"].row_map()

    # Error shrinks (or stays) as the map space grows, per workload.
    for name, *vals in tables["error"].rows:
        assert vals[0] >= vals[2] - 0.02, f"{name}: 12-bit should not beat 14-bit"

    # At 14 bits, the well-behaved benchmarks sit at low error
    # (paper: <=10%; blackscholes lands slightly above in our
    # portfolio-normalized metric).
    for name in ("canneal", "inversek2j", "jpeg", "kmeans"):
        assert err[name][3] < 0.12, name
    assert err["blackscholes"][3] < 0.20
    # ...while the paper's two outliers stay high.
    assert err["ferret"][3] > 0.10
    assert err["swaptions"][3] > 0.10

    # Runtime is insensitive to the map-space size on average.
    geo = run["geomean"]
    assert abs(geo[1] - geo[3]) < 0.10
