"""Fig. 14 — uniDoppelgänger error, runtime and dynamic energy.

Paper: the unified design keeps error and runtime comparable to the
split design while reaching larger savings; with the 1/4 (512 KB) data
array it reduces LLC dynamic energy by 2.45x. The 3/4 array gives the
most flexibility to precise data (lower MPKI for some benchmarks) at
modest savings.
"""

from repro.harness.experiments import fig14_unidoppelganger


def test_fig14_unidoppelganger(once, ctx, emit):
    tables = once(lambda: fig14_unidoppelganger(ctx))
    emit(tables, "fig14")

    # Dynamic energy reduction grows as the array shrinks; the 1/4
    # point lands in the paper's band (2.45x).
    dyn = tables["dynamic"].row_map()["geomean"]
    assert dyn[1] <= dyn[2] <= dyn[3]
    if ctx.size_factor >= 1.0:  # absolute anchor needs Table 1 sizes
        assert 1.6 < dyn[3] < 3.5
    else:
        assert dyn[3] > 1.0

    # Error stays bounded and comparable to the split design's Fig. 10
    # levels: the well-behaved benchmarks remain below ~15%.
    err = tables["error"].row_map()
    for name in ("canneal", "inversek2j", "jpeg", "kmeans"):
        assert err[name][3] < 0.15, name

    # Runtime stays within a moderate band of baseline on average.
    run = tables["runtime"].row_map()["geomean"]
    assert run[1] < 1.35
