"""Table 2 — percentage of LLC blocks that are approximate.

Measured over the baseline 2 MB LLC's resident blocks; the paper's
hand-annotated percentages range from 1.5% (swaptions) to 99.7%
(inversek2j).
"""

from repro.harness.experiments import table2_approx_footprint


def test_table2_approx_footprint(once, ctx, emit):
    table = once(lambda: table2_approx_footprint(ctx))
    emit(table, "table2")
    by_name = table.row_map()
    # The ordering of the extremes must match the paper.
    assert by_name["inversek2j"][1] > 85
    assert by_name["jpeg"][1] > 85
    assert by_name["jmeint"][1] > 80
    assert by_name["swaptions"][1] < 20
    assert by_name["fluidanimate"][1] < 20
    # Every measured footprint lands within 25 points of Table 2.
    for name, measured, paper in table.rows:
        assert abs(measured - paper) < 25, f"{name}: {measured} vs {paper}"
