"""Fig. 12 — off-chip memory traffic normalized to the baseline LLC.

Paper: Doppelgänger barely moves off-chip traffic on average (+1.1%
with the 1/2 array, +3.4% with 1/4); canneal — random access, most
miss-sensitive — is the visible exception.
"""

from repro.harness.experiments import fig12_offchip_traffic


def test_fig12_offchip_traffic(once, ctx, emit):
    table = once(lambda: fig12_offchip_traffic(ctx))
    emit(table, "fig12")
    rows = {row[0]: row for row in table.rows}

    # Average traffic stays close to baseline (paper: +1.1% at 1/2,
    # +3.4% at 1/4).
    geo = rows["geomean"]
    assert geo[1] < 1.15
    assert geo[2] < 1.20
    assert geo[3] < 1.30

    # The miss-sensitive benchmark's traffic grows as the data array
    # shrinks (canneal in the paper; canneal and jpeg here).
    assert rows["canneal"][3] >= rows["canneal"][1] - 0.01
    ranked = sorted(
        (rows[n][3] for n in rows if n != "geomean"), reverse=True
    )
    assert rows["canneal"][3] >= ranked[2] - 0.01 or rows["jpeg"][3] >= ranked[0] - 0.01
