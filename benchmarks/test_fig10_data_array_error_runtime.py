"""Fig. 10 — output error (a) and normalized runtime (b) vs data array.

Paper: shrinking the approximate data array (1/2 -> 1/4 -> 1/8 of the
tag count) slightly increases runtime — canneal, the most
miss-sensitive benchmark, most of all — while error stays flat or even
*drops* (a smaller array means less value reuse, Sec. 5.2). The base
1/4 configuration costs 2.3% runtime on average. The companion table
checks the paper's structural statistics: ~4.4 tags per evicted data
entry and ~5.1% dirty evictions on average.
"""

from repro.harness.experiments import fig10_data_array
from repro.harness.reporting import arithmetic_mean


def test_fig10_data_array(once, ctx, emit):
    tables = once(lambda: fig10_data_array(ctx))
    emit(tables, "fig10")
    run = tables["runtime"].row_map()

    # The base 1/4 configuration stays close to baseline overall
    # (paper: +2.3% average).
    geo = run["geomean"]
    assert geo[2] < 1.10
    assert geo[3] < 1.15

    # canneal (12.2 MPKI target) is miss-sensitive: its runtime grows
    # as the data array shrinks, and it sits among the most affected
    # workloads at 1/8.
    assert run["canneal"][3] >= run["canneal"][2] - 0.01
    ranked = sorted(
        (run[n][3] for n in run if n != "geomean"), reverse=True
    )
    assert run["canneal"][3] >= ranked[2] - 0.01  # top-3

    # Error never explodes as the array shrinks (less value reuse).
    for name, *vals in tables["error"].rows:
        assert vals[2] <= vals[0] + 0.05, name

    # Replacement statistics: dirty evictions average near the paper's
    # 5.1% (well under half), and substantial tag sharing exists
    # (paper: on average 4.4 tags per data entry).
    stats = tables["stats"].rows
    dirty = arithmetic_mean([row[3] for row in stats])
    assert dirty < 25.0
    assert max(row[1] for row in stats) > 2.0  # resident sharing
    assert arithmetic_mean([row[1] for row in stats]) > 1.2
