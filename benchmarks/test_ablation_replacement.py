"""Ablation — replacement policy in the Doppelgänger arrays.

The paper uses LRU in both arrays and leaves specialized replacement
to future work (Sec. 3.5). This bench swaps the policy in both the tag
and data arrays (LRU / FIFO / random) on the most replacement-
sensitive benchmark (canneal) and reports LLC misses and runtime.
"""

from repro.core.config import DoppelgangerConfig
from repro.core.maps import MapConfig
from repro.harness.reporting import Table
from repro.harness.runner import baseline_spec
from repro.hierarchy.llc import SplitDoppelgangerLLC
from repro.hierarchy.system import System

POLICIES = ("lru", "fifo", "random")
#: jpeg at the 1/8 array: the config with real data-array replacement
#: pressure (canneal's quantized working set fits at 1/4).
WORKLOAD = "jpeg"


def test_ablation_replacement(once, ctx, emit):
    trace = ctx.trace(WORKLOAD)
    base_cycles = ctx.run(WORKLOAD, baseline_spec()).cycles

    def run():
        table = Table(
            f"Ablation: replacement policy ({WORKLOAD}, 14-bit, 1/8 array)",
            ["policy", "LLC misses", "normalized runtime"],
        )
        for policy in POLICIES:
            cfg = DoppelgangerConfig(
                tag_entries=max(int(16 * 1024 * ctx.size_factor), 1024),
                data_fraction=0.125, map=MapConfig(14), policy=policy,
            )
            llc = SplitDoppelgangerLLC(
                cfg, policy=policy,
                precise_bytes=max(int(1024 * 1024 * ctx.size_factor), 64 * 1024),
                regions=trace.regions,
            )
            result = System(llc, config=ctx._system_config()).run(trace)
            table.add_row(policy, result.llc_misses, result.cycles / base_cycles)
        return table

    table = once(run)
    emit(table, "ablation_replacement")
    rows = table.row_map()
    # All policies complete and stay within a sane band of each other.
    runtimes = [rows[p][2] for p in POLICIES]
    assert max(runtimes) / min(runtimes) < 2.0
    # LRU (the paper's choice) is not the worst policy here.
    assert rows["lru"][1] <= max(rows[p][1] for p in POLICIES)
