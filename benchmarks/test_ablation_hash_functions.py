"""Ablation — map hash functions (Sec. 3.7, "other hash functions are
possible; we leave this to future work").

Compares the paper's average+range map against average-only and
range-only variants: storage savings (more sharing) vs output error
(worse substitutions). The combined hash should dominate range-only
everywhere and trade a little sharing for a lot of error versus
average-only.
"""

from repro.core.functional import BlockApproximator
from repro.core.maps import MapConfig
from repro.harness.reporting import Table, arithmetic_mean


def _evaluate(ctx, map_config):
    errors, sharings = [], []
    for name in ctx.names:
        workload = ctx.workload(name)
        approximator = BlockApproximator(map_config, data_entries=4096)
        errors.append(workload.evaluate_error(approximator))
        sharings.append(approximator.sharing_rate())
    return arithmetic_mean(errors), arithmetic_mean(sharings)


def test_ablation_hash_functions(once, ctx, emit):
    configs = {
        "average+range (paper)": MapConfig(14),
        "average only": MapConfig(14, use_range=False),
        "range only": MapConfig(14, use_average=False),
    }

    def run():
        table = Table(
            "Ablation: map hash functions (14-bit, 1/4 data array)",
            ["hash", "mean output error", "mean sharing rate"],
        )
        for label, config in configs.items():
            err, share = _evaluate(ctx, config)
            table.add_row(label, err, share)
        return table

    table = once(run)
    emit(table, "ablation_hash")
    rows = table.row_map()
    paper_err = rows["average+range (paper)"][1]
    avg_err = rows["average only"][1]
    range_err = rows["range only"][1]
    # Dropping the range hash merges avg-similar but differently-spread
    # blocks: error must not improve.
    assert avg_err >= paper_err - 0.02
    # The range hash alone is a much weaker discriminator.
    assert range_err > paper_err
    # And the range-only variant shares the most (coarsest grouping).
    assert rows["range only"][2] >= rows["average+range (paper)"][2] - 0.02


def test_ablation_alternative_hashes(once, ctx, emit):
    """Future-work hash exploration: storage savings per hash combo."""
    from repro.analysis.storage import snapshot_from_workload
    from repro.core.hashes import savings_for_hashes

    combos = {
        "average+range (paper)": ("average", "range"),
        "min+max": ("min", "max"),
        "median+range": ("median", "range"),
        "average+projection": ("average", "projection"),
        "projection only": ("projection",),
    }

    def run():
        table = Table(
            "Ablation: alternative similarity hashes (14-bit, storage savings)",
            ["workload"] + list(combos),
        )
        for name in ctx.names:
            snapshot = snapshot_from_workload(ctx.workload(name))
            row = [name]
            for hashes in combos.values():
                total, saved = 0, 0.0
                for region, blocks in snapshot.groups():
                    s = savings_for_hashes(
                        blocks, hashes, 14, region.vmin, region.vmax, region.dtype
                    )
                    total += len(blocks)
                    saved += s * len(blocks)
                row.append(saved / total if total else 0.0)
            table.add_row(*row)
        means = [
            arithmetic_mean([row[i] for row in table.rows])
            for i in range(1, len(combos) + 1)
        ]
        table.add_row("mean", *means)
        return table

    table = once(run)
    emit(table, "ablation_alt_hashes")
    mean = table.row_map()["mean"]
    labels = ["workload"] + list(combos)
    by = dict(zip(labels[1:], mean[1:]))
    # min+max is informationally close to average+range.
    assert abs(by["min+max"] - by["average+range (paper)"]) < 0.30
    # The projection is the most discriminating single hash: combining
    # it with the average must not *increase* savings over the paper's
    # coarser pair.
    assert by["average+projection"] <= by["average+range (paper)"] + 0.02
