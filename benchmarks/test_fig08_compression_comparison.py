"""Fig. 8 — Doppelgänger vs BΔI compression vs exact deduplication.

Paper: 14-bit Doppelgänger saves 37.9% vs 20.9% (BΔI) and 5.3%
(dedup); BΔI shines on integer data (canneal, jpeg) and struggles with
floats; dedup only helps where values repeat exactly (blackscholes,
swaptions); composing Doppelgänger with BΔI adds more (43.9%).
"""

from repro.harness.experiments import fig08_compression_comparison


def test_fig08_compression_comparison(once, ctx, emit):
    table = once(lambda: fig08_compression_comparison(ctx))
    emit(table, "fig08")
    by_name = table.row_map()
    mean = by_name["mean"]
    bdi, dedup, dopp, both = mean[1], mean[2], mean[3], mean[4]
    # Who wins: Doppelgänger beats both lossless baselines on average.
    assert dopp > bdi
    assert dopp > dedup
    # Composition only helps.
    assert both >= dopp - 1e-9
    # BdI is effective on the integer benchmarks...
    assert by_name["canneal"][1] > 0.3
    assert by_name["jpeg"][1] > 0.2
    # ...and ineffective on wild floating-point data.
    assert by_name["jmeint"][1] < 0.1
    assert by_name["swaptions"][1] < 0.1
    # Dedup only works where exact redundancy exists.
    assert by_name["blackscholes"][2] > 0.3
    assert by_name["swaptions"][2] > 0.3
    assert by_name["kmeans"][2] < 0.2
    assert by_name["canneal"][2] < 0.2
