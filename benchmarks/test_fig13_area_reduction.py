"""Fig. 13 — LLC area reduction for both designs.

Paper: split Doppelgänger reaches 1.36x / 1.55x / 1.70x with 1/2, 1/4
and 1/8 data arrays; unifying precise and approximate storage
(uniDoppelgänger) reaches 3.15x at 1/4. Configuration-only: no
simulation involved.
"""

import pytest

from repro.harness.experiments import fig13_area_reduction


def test_fig13_area_reduction(once, emit):
    table = once(fig13_area_reduction)
    emit(table, "fig13")
    rows = table.rows
    dopp = [row for row in rows if row[0] == "Doppelganger"]
    uni = [row for row in rows if row[0] == "uniDoppelganger"]

    # Reductions grow monotonically as the data array shrinks.
    assert dopp[0][3] < dopp[1][3] < dopp[2][3]
    assert uni[0][3] < uni[1][3] < uni[2][3]

    # Paper's anchor points, within model tolerance.
    assert dopp[0][3] == pytest.approx(1.36, rel=0.15)
    assert dopp[1][3] == pytest.approx(1.55, rel=0.15)
    assert dopp[2][3] == pytest.approx(1.70, rel=0.15)
    assert uni[2][3] == pytest.approx(3.15, rel=0.20)

    # The unified design dominates the split design at equal fractions.
    assert uni[2][3] > dopp[1][3]
