"""Ablation — sharing-aware data-array replacement (future work, Sec. 3.5).

The paper suggests a replacement policy that accounts for "the number
of tags associated to a data entry". This bench compares plain LRU
against the tag-count-aware variant on the replacement-stressed
benchmarks and reports LLC misses, back-invalidations and runtime.
"""

from repro.core.config import DoppelgangerConfig
from repro.core.maps import MapConfig
from repro.core.replacement_ext import make_sharing_aware
from repro.harness.reporting import Table
from repro.harness.runner import baseline_spec
from repro.hierarchy.llc import SplitDoppelgangerLLC
from repro.hierarchy.system import System

WORKLOADS = ("canneal", "jpeg")


def test_ablation_sharing_aware(once, ctx, emit):
    def run():
        table = Table(
            "Ablation: sharing-aware data-array replacement (14-bit, 1/8 array)",
            ["workload", "policy", "LLC misses", "back-invalidations",
             "normalized runtime"],
        )
        for name in WORKLOADS:
            trace = ctx.trace(name)
            base_cycles = ctx.run(name, baseline_spec()).cycles
            for aware in (False, True):
                spec_llc = SplitDoppelgangerLLC(
                    DoppelgangerConfig(
                        tag_entries=max(int(16 * 1024 * ctx.size_factor), 1024),
                        data_fraction=0.125,
                        map=MapConfig(14),
                    ),
                    precise_bytes=max(int(1024 * 1024 * ctx.size_factor), 64 * 1024),
                    regions=trace.regions,
                )
                if aware:
                    make_sharing_aware(spec_llc.dopp)
                system = System(spec_llc, config=ctx._system_config())
                result = system.run(trace)
                table.add_row(
                    name,
                    "tag-count-aware" if aware else "lru",
                    result.llc_misses,
                    result.back_invalidations,
                    result.cycles / base_cycles,
                )
        return table

    table = once(run)
    emit(table, "ablation_sharing_aware")
    # Both policies complete with consistent structures; the aware
    # policy must not increase back-invalidations dramatically.
    rows = table.rows
    for name in WORKLOADS:
        lru = next(r for r in rows if r[0] == name and r[1] == "lru")
        aware = next(r for r in rows if r[0] == name and r[1] != "lru")
        assert aware[3] <= lru[3] * 1.5, name
