"""The abstract's headline claims, all in one table.

Paper: 1.55x LLC area, 2.55x dynamic energy and 1.41x leakage energy
reductions with only a 2.3% runtime increase (14-bit map, 1/4 data
array).
"""

import pytest

from repro.harness.experiments import summary_headline


def test_headline_claims(once, ctx, emit):
    table = once(lambda: summary_headline(ctx))
    emit(table, "headline")
    rows = {row[0]: row for row in table.rows}

    area = rows["LLC area reduction (x)"]
    assert area[1] == pytest.approx(area[2], rel=0.15)  # 1.55x

    if ctx.size_factor >= 1.0:  # absolute anchors need Table 1 sizes
        dyn = rows["LLC dynamic energy reduction (x, geomean)"]
        assert dyn[1] == pytest.approx(dyn[2], rel=0.35)  # 2.55x

        leak = rows["LLC leakage energy reduction (x, geomean)"]
        assert leak[1] == pytest.approx(leak[2], rel=0.30)  # 1.41x

    runtime = rows["runtime increase (%, geomean)"]
    assert runtime[1] < 30.0  # paper: 2.3%; our substrate is harsher
