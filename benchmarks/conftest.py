"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table/figure of the paper via the
drivers in :mod:`repro.harness.experiments`. A single
ExperimentContext is shared across the whole session so configurations
needed by several figures (e.g. the 1/4-data-array runs feed Figs. 10,
11 and 12) are simulated exactly once.

Environment knobs:

* ``REPRO_SCALE`` — dataset scale (default 1.0; use 0.25 for a quick
  pass).
* ``REPRO_SEED`` — data-generation seed (default 7).

Rendered tables are printed (visible with ``-s``) and written under
``results/``.
"""

import os

import pytest

from repro.harness.runner import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    """Session-wide experiment context over all nine benchmarks."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def results_dir():
    path = os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture
def emit(results_dir):
    """Print and persist a Table (or dict of Tables)."""

    def _emit(tables, prefix):
        if not isinstance(tables, dict):
            tables = {"": tables}
        for key, table in tables.items():
            name = f"{prefix}_{key}" if key else prefix
            print()
            print(table.render())
            table.save(directory=results_dir, filename=f"{name}.txt")
            # The paper's figures are bar charts; save that form too.
            bars_path = os.path.join(results_dir, f"{name}_bars.txt")
            with open(bars_path, "w") as fh:
                fh.write(table.render_bars() + "\n")

    return _emit


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(fn):
        return benchmark.pedantic(fn, iterations=1, rounds=1)

    return _run
