"""Element-wise approximate similarity (Sec. 2, Fig. 2).

The paper's definition: two cache blocks are approximately similar if
*each and every* pair of corresponding elements differs by no more than
a threshold ``T``, expressed as a percentage of the programmer-declared
value range. One stored block can then represent a whole group of
mutually similar blocks; the storage savings is ``1 - groups/blocks``
(four all-similar blocks save 75%).

Grouping uses greedy leader clustering in block-insertion order: a
block joins the first existing leader it is similar to, else becomes a
new leader. This mirrors how a cache would discover similarity online
(the first block of a group is the one whose data is kept) and is
deterministic.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def blocks_similar(a: np.ndarray, b: np.ndarray, threshold: float, value_range: float) -> bool:
    """Whether two blocks are approximately similar at threshold ``T``.

    Args:
        a, b: element arrays of equal length.
        threshold: T as a fraction (0.01 = 1%).
        value_range: declared ``vmax - vmin`` of the data.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"block shapes differ: {a.shape} vs {b.shape}")
    if value_range <= 0:
        raise ValueError("value_range must be positive")
    tol = threshold * value_range
    return bool(np.all(np.abs(a - b) <= tol))


def greedy_similarity_clusters(
    blocks: np.ndarray, threshold: float, value_range: float
) -> np.ndarray:
    """Assign each block to a leader cluster.

    Args:
        blocks: ``(n, elems)`` array.
        threshold: T as a fraction of the value range.
        value_range: declared range of the data.

    Returns:
        int array of cluster ids (leaders get fresh consecutive ids).
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 2:
        raise ValueError("blocks must be 2-D (n_blocks, elements)")
    n = len(blocks)
    tol = threshold * value_range
    assignments = np.empty(n, dtype=np.int64)
    leaders: List[np.ndarray] = []
    leader_matrix = None
    for i in range(n):
        if leaders:
            if leader_matrix is None or leader_matrix.shape[0] != len(leaders):
                leader_matrix = np.vstack(leaders)
            diffs = np.abs(leader_matrix - blocks[i]).max(axis=1)
            matches = np.nonzero(diffs <= tol)[0]
            if len(matches):
                assignments[i] = matches[0]
                continue
        assignments[i] = len(leaders)
        leaders.append(blocks[i])
        leader_matrix = None
    return assignments


def threshold_storage_savings(
    blocks: np.ndarray, threshold: float, value_range: float
) -> float:
    """Fraction of block storage saved at similarity threshold ``T``.

    This is the quantity plotted in Fig. 2 per benchmark: if all
    blocks fall into ``k`` similarity groups, storage for only ``k``
    blocks is needed, saving ``1 - k/n``.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    if len(blocks) == 0:
        return 0.0
    if threshold == 0.0:
        # Exact match: grouping degenerates to exact dedup, computable
        # without the O(n*k) clustering.
        unique = {blocks[i].tobytes() for i in range(len(blocks))}
        return 1.0 - len(unique) / len(blocks)
    assignments = greedy_similarity_clusters(blocks, threshold, value_range)
    k = int(assignments.max()) + 1 if len(assignments) else 0
    return 1.0 - k / len(blocks)


def sweep_thresholds(
    blocks: np.ndarray,
    value_range: float,
    thresholds: Sequence[float] = (0.0, 0.0001, 0.001, 0.01, 0.10),
) -> dict:
    """Fig. 2 sweep: savings for each threshold (paper uses 0-10%)."""
    return {t: threshold_storage_savings(blocks, t, value_range) for t in thresholds}
