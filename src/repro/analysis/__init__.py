"""Offline similarity and storage-savings analyses.

* :mod:`repro.analysis.similarity` — the Sec. 2 characterization:
  element-wise threshold similarity between cache blocks (Fig. 2).
* :mod:`repro.analysis.storage` — map-based storage savings (Fig. 7)
  and the comparison against BΔI / exact deduplication (Fig. 8),
  computed over LLC-resident block snapshots.
"""

from repro.analysis.similarity import (
    blocks_similar,
    greedy_similarity_clusters,
    threshold_storage_savings,
)
from repro.analysis.storage import (
    LLCSnapshot,
    bdi_savings,
    dedup_savings,
    doppelganger_savings,
    doppelganger_bdi_savings,
    snapshot_from_workload,
)

__all__ = [
    "LLCSnapshot",
    "bdi_savings",
    "blocks_similar",
    "dedup_savings",
    "doppelganger_bdi_savings",
    "doppelganger_savings",
    "greedy_similarity_clusters",
    "snapshot_from_workload",
    "threshold_storage_savings",
]
