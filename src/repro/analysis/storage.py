"""Storage-savings analyses over LLC-resident blocks (Figs. 7 and 8).

The paper's storage results "only look at approximate blocks residing
in the LLC" of the baseline 2 MB system. An :class:`LLCSnapshot`
captures exactly that: for every approximate block resident at the end
of a baseline simulation (or, cheaper, the approximate working set the
trace touches), its element values and owning region.

Savings metrics:

* :func:`doppelganger_savings` — blocks with equal map values share a
  single data entry: savings = 1 - unique_maps / blocks (Fig. 7).
* :func:`dedup_savings` — exact deduplication baseline (Fig. 8).
* :func:`bdi_savings` — BΔI compression baseline (Fig. 8).
* :func:`doppelganger_bdi_savings` — BΔI applied to the canonical
  block of each map group; the techniques compose because one is
  inter-block and the other intra-block (Fig. 8, rightmost bars).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compression.bdi import BDICompressor, bdi_compressed_size, BLOCK_BYTES
from repro.compression.dedup import dedup_storage_savings
from repro.core.maps import MapConfig, MapGenerator
from repro.trace.region import Region


class LLCSnapshot:
    """Approximate blocks resident in the (baseline) LLC.

    Blocks are grouped per region so each group carries its annotation
    (dtype, declared range) for map generation.
    """

    def __init__(self):
        self._groups: Dict[int, Tuple[Region, List[np.ndarray]]] = {}

    def add(self, region_id: int, region: Region, values: np.ndarray) -> None:
        """Record one resident approximate block."""
        if not region.approx:
            raise ValueError(f"region {region.name!r} is not approximate")
        group = self._groups.get(region_id)
        if group is None:
            group = (region, [])
            self._groups[region_id] = group
        group[1].append(np.asarray(values, dtype=np.float64))

    def __len__(self) -> int:
        return sum(len(blocks) for _, blocks in self._groups.values())

    def groups(self):
        """Iterate ``(region, blocks_matrix)`` pairs."""
        for region, blocks in self._groups.values():
            lengths = {len(b) for b in blocks}
            if len(lengths) == 1:
                yield region, np.vstack(blocks)
            else:
                # Ragged tails: group by length to keep matrices dense.
                by_len: Dict[int, List[np.ndarray]] = {}
                for b in blocks:
                    by_len.setdefault(len(b), []).append(b)
                for same in by_len.values():
                    yield region, np.vstack(same)

    def all_blocks(self) -> List[np.ndarray]:
        """Flat list of every block's values."""
        out: List[np.ndarray] = []
        for _, blocks in self._groups.values():
            out.extend(blocks)
        return out


def snapshot_from_workload(workload, block_size: int = 64) -> LLCSnapshot:
    """Snapshot the workload's approximate data footprint directly.

    For the paper's benchmarks the approximate working set cycles
    through the LLC; its resident approximate population is (up to
    replacement noise) a sample of the approximate footprint. This
    avoids a full simulation when only storage savings are needed.
    """
    refresh = getattr(workload, "refresh_outputs", None)
    if refresh is not None:
        refresh()
    snapshot = LLCSnapshot()
    for region_id, region in enumerate(workload.regions):
        if not region.approx:
            continue
        data = workload.region_data(region.name)
        flat = np.asarray(data).reshape(-1)
        elems = region.elements_per_block(block_size)
        n_full = len(flat) // elems
        for b in range(n_full):
            snapshot.add(region_id, region, flat[b * elems : (b + 1) * elems])
        if len(flat) % elems:
            snapshot.add(region_id, region, flat[n_full * elems :])
    return snapshot


def snapshot_from_system(system, llc, trace) -> LLCSnapshot:
    """Snapshot the approximate blocks resident in a simulated LLC.

    Walks a finished baseline simulation's LLC contents; blocks whose
    current values are tracked in the trace's value table contribute
    their values.
    """
    snapshot = LLCSnapshot()
    regions = trace.regions
    for addr in llc.cache.resident_addrs():
        region_id = regions.find_id(addr)
        if region_id < 0:
            continue
        region = regions[region_id]
        if not region.approx:
            continue
        vid = system._cur_value.get(addr, -1)
        if vid >= 0:
            snapshot.add(region_id, region, trace.values[vid])
    return snapshot


# ------------------------------------------------------------------ savings


def _map_values(snapshot: LLCSnapshot, map_config: MapConfig):
    """Yield (region, blocks, maps) per snapshot group."""
    for region, blocks in snapshot.groups():
        gen = MapGenerator(map_config, region.vmin, region.vmax, region.dtype)
        yield region, blocks, gen.compute_batch(blocks)


def doppelganger_savings(snapshot: LLCSnapshot, map_config: Optional[MapConfig] = None) -> float:
    """Fraction of approximate data storage saved by map sharing (Fig. 7)."""
    map_config = map_config or MapConfig()
    total = 0
    unique = 0
    for region, blocks, maps in _map_values(snapshot, map_config):
        total += len(blocks)
        unique += len(np.unique(maps))
    if total == 0:
        return 0.0
    return 1.0 - unique / total


def dedup_savings(snapshot: LLCSnapshot) -> float:
    """Exact-deduplication savings over the snapshot (Fig. 8)."""
    return dedup_storage_savings(snapshot.all_blocks())


def bdi_savings(snapshot: LLCSnapshot) -> float:
    """BΔI compression savings over the snapshot (Fig. 8).

    Blocks are compressed in their native element representation, as
    the hardware sees their bytes.
    """
    compressor = BDICompressor()
    blocks = []
    for region, matrix in snapshot.groups():
        native = matrix.astype(region_dtype(region))
        blocks.extend(native)
    return compressor.storage_savings(blocks)


def doppelganger_bdi_savings(
    snapshot: LLCSnapshot, map_config: Optional[MapConfig] = None
) -> float:
    """Doppelgänger + BΔI composed savings (Fig. 8, rightmost bars).

    One canonical block per map group, stored BΔI-compressed.
    """
    map_config = map_config or MapConfig()
    total_bytes = 0
    stored_bytes = 0
    for region, blocks, maps in _map_values(snapshot, map_config):
        total_bytes += len(blocks) * BLOCK_BYTES
        native = blocks.astype(region_dtype(region))
        seen = {}
        for i in range(len(blocks)):
            m = int(maps[i])
            if m not in seen:
                seen[m] = bdi_compressed_size(native[i]).compressed_bytes
        stored_bytes += sum(seen.values())
    if total_bytes == 0:
        return 0.0
    return 1.0 - stored_bytes / total_bytes


def region_dtype(region: Region):
    """Native numpy dtype of a region's elements."""
    from repro.trace.record import DTYPE_INFO

    return DTYPE_INFO[region.dtype].numpy_dtype


def whole_llc_savings(workload, map_config: Optional[MapConfig] = None) -> dict:
    """LLC-wide savings with Doppelgänger *and* lossless techniques.

    Sec. 5.1: "Since precise and approximate data are separated in
    hardware, these techniques can be used simultaneously with
    Doppelgänger in the LLC." This helper quantifies that composition:
    approximate regions go through map sharing (+BΔI on the canonical
    blocks), precise regions through exact deduplication + BΔI, and
    the result is weighted by each side's share of the footprint.

    Returns a dict with ``approx_savings``, ``precise_savings``,
    ``combined_savings`` and the byte weights.
    """
    map_config = map_config or MapConfig()
    refresh = getattr(workload, "refresh_outputs", None)
    if refresh is not None:
        refresh()

    approx_snapshot = snapshot_from_workload(workload)
    approx_bytes = len(approx_snapshot) * BLOCK_BYTES
    approx_savings = doppelganger_bdi_savings(approx_snapshot, map_config)

    # Precise side: dedup groups, one BΔI-compressed copy per group.
    precise_total = 0
    precise_stored = 0
    for region in workload.regions:
        if region.approx:
            continue
        data = np.asarray(workload.region_data(region.name)).reshape(-1)
        native = data.astype(region_dtype(region), copy=False)
        elems = region.elements_per_block(64)
        n_full = len(native) // elems
        seen: dict = {}
        for b in range(n_full):
            block = native[b * elems : (b + 1) * elems]
            key = block.tobytes()
            if key not in seen:
                seen[key] = bdi_compressed_size(block).compressed_bytes
            precise_total += BLOCK_BYTES
        precise_stored += sum(seen.values())
    precise_savings = 1.0 - precise_stored / precise_total if precise_total else 0.0

    total = approx_bytes + precise_total
    combined = (
        (approx_savings * approx_bytes + precise_savings * precise_total) / total
        if total
        else 0.0
    )
    return {
        "approx_savings": approx_savings,
        "precise_savings": precise_savings,
        "combined_savings": combined,
        "approx_bytes": approx_bytes,
        "precise_bytes": precise_total,
    }
