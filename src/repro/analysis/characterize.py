"""Per-workload value characterization (the Sec. 2 methodology, deeper).

The paper's first contribution is a characterization of approximate
similarity in LLC-resident data. This module generalizes that study
into a reusable tool: given any workload (or raw block population), it
reports

* block-statistic distributions — where the averages and ranges live
  inside the declared value interval, and how concentrated they are;
* the *unique-map curve*: distinct map values (and hence required data
  entries) as a function of the map-space size M, the quantity that
  determines whether a given data array can hold a workload;
* the sharing histogram at a chosen M (how many blocks pile onto each
  map — the tag-list length distribution the hardware would see);
* recommended minimum map bits to keep a target data-array occupancy.

Used by ``examples/characterize_workload.py`` and the test suite; handy
when annotating *new* applications for a Doppelgänger-style cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.storage import LLCSnapshot, snapshot_from_workload
from repro.core.maps import MapConfig, MapGenerator
from repro.harness.reporting import Table


@dataclass
class RegionProfile:
    """Value statistics of one region's block population."""

    name: str
    blocks: int
    avg_mean: float
    avg_std: float
    range_mean: float
    range_std: float
    declared_span: float

    @property
    def avg_concentration(self) -> float:
        """Fraction of the declared span the averages occupy (±2σ)."""
        if self.declared_span <= 0:
            return 0.0
        return min(4.0 * self.avg_std / self.declared_span, 1.0)


@dataclass
class Characterization:
    """Full similarity characterization of a workload."""

    workload: str
    regions: List[RegionProfile] = field(default_factory=list)
    #: map bits -> (unique maps, total blocks)
    unique_curve: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: tag-list length -> number of map groups of that size (at base M)
    sharing_histogram: Dict[int, int] = field(default_factory=dict)
    base_bits: int = 14

    def savings_at(self, bits: int) -> float:
        """Storage savings at a map-space size."""
        unique, total = self.unique_curve[bits]
        return 1.0 - unique / total if total else 0.0

    def max_bits_for_entries(self, data_entries: int) -> Optional[int]:
        """Largest surveyed M whose unique-map count fits the array.

        Larger map spaces produce more unique maps (finer bins, lower
        error); the designer wants the finest map space the data array
        can still hold. Returns None when even the smallest surveyed M
        overflows ``data_entries``.
        """
        best = None
        for bits in sorted(self.unique_curve):
            unique, _ = self.unique_curve[bits]
            if unique <= data_entries:
                best = bits
        return best

    def avg_tags_per_map(self) -> float:
        """Mean blocks per occupied map at the base M."""
        groups = sum(self.sharing_histogram.values())
        blocks = sum(k * v for k, v in self.sharing_histogram.items())
        return blocks / groups if groups else 0.0

    def to_table(self) -> Table:
        """Render the characterization as a report table."""
        table = Table(
            f"Characterization: {self.workload}",
            ["map bits", "unique maps", "blocks", "storage savings"],
        )
        for bits in sorted(self.unique_curve):
            unique, total = self.unique_curve[bits]
            table.add_row(bits, unique, total, self.savings_at(bits))
        table.add_note(
            f"avg tags per occupied map at {self.base_bits}-bit: "
            f"{self.avg_tags_per_map():.2f}"
        )
        return table


def characterize_snapshot(
    snapshot: LLCSnapshot,
    workload_name: str = "snapshot",
    bits_sweep: Sequence[int] = (8, 10, 12, 13, 14, 16),
    base_bits: int = 14,
) -> Characterization:
    """Characterize a block population across map-space sizes."""
    result = Characterization(workload=workload_name, base_bits=base_bits)

    for region, blocks in snapshot.groups():
        avgs = blocks.mean(axis=1)
        ranges = blocks.max(axis=1) - blocks.min(axis=1)
        result.regions.append(
            RegionProfile(
                name=region.name,
                blocks=len(blocks),
                avg_mean=float(avgs.mean()),
                avg_std=float(avgs.std()),
                range_mean=float(ranges.mean()),
                range_std=float(ranges.std()),
                declared_span=region.vmax - region.vmin,
            )
        )

    for bits in bits_sweep:
        unique = 0
        total = 0
        for region, blocks in snapshot.groups():
            gen = MapGenerator(MapConfig(bits), region.vmin, region.vmax, region.dtype)
            maps = gen.compute_batch(blocks)
            unique += len(np.unique(maps))
            total += len(blocks)
        result.unique_curve[bits] = (unique, total)

    histogram: Dict[int, int] = {}
    for region, blocks in snapshot.groups():
        gen = MapGenerator(
            MapConfig(base_bits), region.vmin, region.vmax, region.dtype
        )
        maps = gen.compute_batch(blocks)
        _, counts = np.unique(maps, return_counts=True)
        for count in counts:
            histogram[int(count)] = histogram.get(int(count), 0) + 1
    result.sharing_histogram = histogram
    return result


def characterize_workload(
    workload, bits_sweep: Sequence[int] = (8, 10, 12, 13, 14, 16)
) -> Characterization:
    """Characterize a workload's approximate data footprint."""
    snapshot = snapshot_from_workload(workload)
    return characterize_snapshot(snapshot, workload.name, bits_sweep)
