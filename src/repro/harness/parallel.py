"""Process-pool prefetch for the experiment harness (``--jobs N``).

The per-(workload, config) pipeline — trace generation, simulation,
energy accounting and error evaluation — is embarrassingly parallel:
runs never share mutable state, only the memo dictionaries inside
:class:`~repro.harness.runner.ExperimentContext`. This module fans the
pairs a set of experiments will need out across worker processes and
merges the finished :class:`~repro.harness.runner.RunRecord` objects
back into the parent context's memo, so the (sequential) experiment
drivers then find every simulation already cached.

Determinism: each worker rebuilds its context from the same
(seed, scale, engine) triple, so a run computed in a child is
bit-identical to one computed in the parent; results are merged in
task-submission order (workloads in context order, specs in plan
order), and ``run_summaries`` additionally sorts by (workload,
config) — a ``--jobs 4`` sweep therefore emits exactly the same
tables and BENCH rows as ``--jobs 1``.

Workers are spawned per workload (one task covers all of a workload's
configs) so the expensive trace generation happens once per worker,
mirroring the parent's memoization.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import ConfigSpec, ExperimentContext, RunRecord
from repro.obs import get_logger

log = get_logger("harness.parallel")


def plan_specs(experiment_names: Sequence[str]) -> Tuple[List[ConfigSpec], List[ConfigSpec]]:
    """The (run specs, error specs) a set of experiments will request.

    Mirrors the drivers in :mod:`repro.harness.experiments`: every
    simulated experiment starts from the baseline LLC and sweeps the
    configurations of its figure. Config-only experiments (fig13,
    table3) and the snapshot analyses (fig02/07/08) need no
    simulation prefetch.
    """
    from repro.harness.experiments import (
        DATA_FRACTIONS,
        MAP_BITS_SWEEP,
        UNI_FRACTIONS,
    )
    from repro.harness.runner import baseline_spec, dopp_spec, uni_spec

    runs: List[ConfigSpec] = []
    errors: List[ConfigSpec] = []
    for name in experiment_names:
        if name == "table2":
            runs += [baseline_spec()]
        elif name == "fig09":
            sweep = [dopp_spec(b, 0.25) for b in MAP_BITS_SWEEP]
            runs += [baseline_spec()] + sweep
            errors += sweep
        elif name in ("fig10", "fig11", "fig12"):
            sweep = [dopp_spec(14, f) for f in DATA_FRACTIONS]
            runs += [baseline_spec()] + sweep
            if name == "fig10":
                errors += sweep
        elif name == "fig14":
            sweep = [uni_spec(14, f) for f in UNI_FRACTIONS]
            runs += [baseline_spec()] + sweep
            errors += sweep
        elif name == "headline":
            runs += [baseline_spec(), dopp_spec(14, 0.25)]
    # Dedupe, preserving first-seen order (dict keys are ordered).
    return list(dict.fromkeys(runs)), list(dict.fromkeys(errors))


def _run_task(task: dict):
    """Worker: simulate one workload under every requested config.

    Runs in a child process; builds a fresh context (observability
    disabled — sinks and registries don't cross process boundaries)
    and returns picklable records only.
    """
    ctx = ExperimentContext(
        seed=task["seed"],
        scale=task["scale"],
        workloads=[task["workload"]],
        engine=task["engine"],
    )
    name = task["workload"]
    runs = [(spec, ctx.run(name, spec)) for spec in task["run_specs"]]
    errors = {spec: ctx.error(name, spec) for spec in task["error_specs"]}
    return name, runs, errors


def prefetch_runs(
    ctx: ExperimentContext,
    experiment_names: Sequence[str],
    jobs: int,
    run_specs: Optional[Sequence[ConfigSpec]] = None,
    error_specs: Optional[Sequence[ConfigSpec]] = None,
) -> int:
    """Simulate everything ``experiment_names`` will need, in parallel.

    Fans one task per workload (covering all its configs) across
    ``jobs`` worker processes and merges the results into ``ctx``'s
    memo dictionaries. Pairs already memoized are skipped. Returns the
    number of (workload, config) simulations fetched.

    ``run_specs`` / ``error_specs`` override the experiment-derived
    plan (used by :func:`repro.api.simulate` callers and tests).
    """
    if run_specs is None or error_specs is None:
        planned_runs, planned_errors = plan_specs(experiment_names)
        run_specs = planned_runs if run_specs is None else list(run_specs)
        error_specs = planned_errors if error_specs is None else list(error_specs)
    tasks = []
    for name in ctx.names:
        need_runs = [s for s in run_specs if (name, s) not in ctx._runs]
        need_errors = [
            s
            for s in error_specs
            if s.kind != "baseline" and (name, s) not in ctx._errors
        ]
        if need_runs or need_errors:
            tasks.append(
                {
                    "workload": name,
                    "seed": ctx.seed,
                    "scale": ctx.scale,
                    "engine": ctx.engine,
                    "run_specs": need_runs,
                    "error_specs": need_errors,
                }
            )
    if not tasks:
        return 0
    fetched = 0
    workers = max(1, min(int(jobs), len(tasks)))
    log.info(
        "prefetching %d workload tasks across %d workers", len(tasks), workers
    )
    with ctx.obs.profiler.phase(f"parallel/jobs{workers}"):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_task, task) for task in tasks]
            # Merge in submission order for deterministic memo order.
            for future in futures:
                name, runs, errors = future.result()
                for spec, record in runs:
                    ctx._runs[(name, spec)] = record
                    fetched += 1
                for spec, err in errors.items():
                    ctx._errors[(name, spec)] = err
    return fetched


def merge_records(
    ctx: ExperimentContext, records: Dict[Tuple[str, ConfigSpec], RunRecord]
) -> None:
    """Adopt externally computed records into a context's memo."""
    ctx._runs.update(records)
