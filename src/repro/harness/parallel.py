"""Process-pool prefetch for the experiment harness (``--jobs N``).

The per-(workload, config) pipeline — trace generation, simulation,
energy accounting and error evaluation — is embarrassingly parallel:
runs never share mutable state, only the memo dictionaries inside
:class:`~repro.harness.runner.ExperimentContext`. This module fans the
pairs a set of experiments will need out across worker processes and
merges the finished :class:`~repro.harness.runner.RunRecord` objects
back into the parent context's memo, so the (sequential) experiment
drivers then find every simulation already cached.

Determinism: each worker rebuilds its context from the same
(seed, scale, engine) triple, so a run computed in a child is
bit-identical to one computed in the parent; results are merged in
task-submission order (workloads in context order, specs in plan
order), and ``run_summaries`` additionally sorts by (workload,
config) — a ``--jobs 4`` sweep therefore emits exactly the same
tables and BENCH rows as ``--jobs 1``.

Workers are spawned per workload (one task covers all of a workload's
configs) so the expensive trace generation happens once per worker,
mirroring the parent's memoization. When there are fewer workloads
than ``--jobs`` workers — the ROADMAP-noted imbalance when sweeping
few workloads on many cores — each workload's config fan is split
into (workload, config-chunk) units so every worker gets a slice;
each chunk worker regenerates its workload's trace, a cost that only
pays off when cores would otherwise sit idle, which is exactly the
case the split is gated on. ``--no-split-fans`` restores
one-task-per-workload.

Resilience (``docs/robustness.md``): a worker that dies (OOM kill,
segfault) or exceeds ``timeout`` no longer hangs or poisons the whole
sweep — the pool is torn down, finished results are kept, and the
failed workloads are retried up to ``retries`` times with exponential
backoff; the final failure is a typed
:class:`~repro.errors.SimulationFault` naming every (workload, config)
that could not be computed. An optional
:class:`~repro.resilience.checkpoint.SweepJournal` persists each
merged record so an interrupted sweep resumes instead of restarting.

Cancellation: every prefetch runs under a :class:`CancelToken`. While
the pool is live, SIGINT/SIGTERM are routed through
:func:`cancellation_signals` onto that token (main thread only — the
serve daemon's job threads set tokens through its API instead), so an
interrupted sweep tears the pool down cleanly, keeps and journals
every record already merged, and surfaces as the typed
:class:`~repro.errors.Cancelled` (exit code 130) rather than a raw
``KeyboardInterrupt`` traceback mid-merge.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import Cancelled, SimulationFault
from repro.harness.runner import ConfigSpec, ExperimentContext, RunRecord
from repro.obs import EVENT_WORKER_RETRY, get_logger

log = get_logger("harness.parallel")

#: Seconds between cancellation checks while awaiting a worker future.
_POLL_S = 0.1


class CancelToken:
    """Cooperative, thread-safe cancellation flag for a sweep.

    Created per prefetch (or handed in by a caller that wants to
    cancel from another thread — the serve daemon's ``DELETE
    /jobs/<id>``). Setting it is idempotent; the first reason wins.
    """

    def __init__(self):
        """Create an unset token."""
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (first caller's ``reason`` is kept)."""
        if self.reason is None:
            self.reason = reason
        self._event.set()

    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()


@contextmanager
def cancellation_signals(
    token: CancelToken, signals=(signal.SIGINT, signal.SIGTERM)
):
    """Route SIGINT/SIGTERM onto ``token`` for the guarded block.

    Installed around the worker pool so an interrupt becomes a clean
    cancellation — pool teardown, journal flush, typed
    :class:`~repro.errors.Cancelled` — instead of a
    ``KeyboardInterrupt`` traceback from whatever bytecode the merge
    loop happened to be on. Previous handlers are restored on exit.
    No-op outside the main thread (Python only delivers signals
    there), so daemon job threads can share the same code path.
    """
    if threading.current_thread() is not threading.main_thread():
        yield token
        return

    def _handler(signum, frame):
        """Turn the delivered signal into a token cancellation."""
        token.cancel(f"received {signal.Signals(signum).name}")

    previous = {}
    for sig in signals:
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            continue
    try:
        yield token
    finally:
        for sig, prev in previous.items():
            signal.signal(sig, prev)


class _RoundCancelled(Exception):
    """Internal: the current round observed a set CancelToken."""


def _wait_result(future, timeout: Optional[float], cancel: Optional[CancelToken]):
    """Await one future in short slices so cancellation stays live.

    ``future.result(timeout)`` would block the merge loop for the whole
    task timeout (possibly forever); polling in :data:`_POLL_S` slices
    lets a set token abort within ~100 ms while preserving the
    original semantics: ``timeout`` is still measured from this call.

    Raises:
        _RoundCancelled: the token was set while waiting.
        FutureTimeout: ``timeout`` elapsed without a result.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        if cancel is not None and cancel.cancelled():
            raise _RoundCancelled()
        slice_s = _POLL_S
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FutureTimeout()
            slice_s = min(slice_s, remaining)
        try:
            return future.result(timeout=slice_s)
        except FutureTimeout:
            continue


def plan_specs(experiment_names: Sequence[str]) -> Tuple[List[ConfigSpec], List[ConfigSpec]]:
    """The (run specs, error specs) a set of experiments will request.

    Read straight off each registered strategy's ``requires`` metadata
    (see :class:`repro.harness.strategy.Requirements`) — strategies
    that need no simulation (config-only analyses, snapshot studies)
    simply declare empty spec tuples. Deduped preserving first-seen
    order, so the shared baseline simulates once across the sweep.
    """
    from repro.harness.strategy import registry

    runs: List[ConfigSpec] = []
    errors: List[ConfigSpec] = []
    for name in experiment_names:
        requires = registry.get(name).requires
        runs += list(requires.run_specs)
        errors += list(requires.error_specs)
    # Dedupe, preserving first-seen order (dict keys are ordered).
    return list(dict.fromkeys(runs)), list(dict.fromkeys(errors))


def _run_task(task: dict):
    """Worker: simulate one workload under every requested config.

    Runs in a child process; builds a fresh context (observability
    disabled — sinks and registries don't cross process boundaries)
    and returns picklable records only. Specs arrive with their fault
    configs already resolved by the parent, so a worker's memo keys
    match the parent's exactly.

    When the parent attached a progress channel (``--progress``), the
    worker emits one heartbeat at task start, one after the trace is
    generated, and one per completed (workload, config) simulation /
    error evaluation — accesses/sec, slow-path fraction and RSS ride
    along so a thrashing worker is visible mid-run (see
    :mod:`repro.obs.livestream`).
    """
    from repro.obs.livestream import WorkerProgress

    ctx = ExperimentContext(
        seed=task["seed"],
        scale=task["scale"],
        workloads=[task["workload"]],
        engine=task["engine"],
    )
    name = task["workload"]
    run_specs = task["run_specs"]
    error_specs = task["error_specs"]
    progress = WorkerProgress(
        task.get("progress"), task.get("unit") or name
    )
    total = len(run_specs) + len(error_specs)
    done = 0
    progress.emit("start", workload=name, total=total)
    if run_specs or error_specs:
        ctx.trace(name)
        progress.emit("trace", workload=name, total=total)
    runs = []
    for spec in run_specs:
        record = ctx.run(name, spec)
        runs.append((spec, record))
        done += 1
        stats = record.engine_stats or {}
        progress.emit(
            "run", workload=name, config=spec.label(), done=done, total=total,
            accesses=record.accesses,
            accesses_per_sec=record.accesses_per_sec,
            slow_path_fraction=stats.get("slow_fraction"),
        )
    errors = {}
    for spec in error_specs:
        errors[spec] = ctx.error(name, spec)
        done += 1
        progress.emit(
            "error", workload=name, config=spec.label(), done=done, total=total
        )
    progress.emit("done", workload=name, done=done, total=total)
    return name, runs, errors


def _split_fan(task: dict, nchunks: int) -> List[dict]:
    """Split one workload task's config fan into ``nchunks`` units.

    Specs are dealt round-robin (``[k::nchunks]``) so heterogeneous
    per-config costs spread across chunks; empty chunks are dropped.
    Chunking never changes results — every (workload, spec) pair is
    simulated from the same fresh per-worker context regardless of
    which unit carries it, and the parent merges records into the same
    memo keys.
    """
    run_specs = task["run_specs"]
    error_specs = task["error_specs"]
    nchunks = max(1, min(nchunks, max(len(run_specs), len(error_specs), 1)))
    if nchunks == 1:
        return [task]
    units = []
    for k in range(nchunks):
        unit = dict(task)
        unit["run_specs"] = run_specs[k::nchunks]
        unit["error_specs"] = error_specs[k::nchunks]
        if unit["run_specs"] or unit["error_specs"]:
            units.append(unit)
    return units


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if its workers are wedged.

    ``shutdown(wait=True)`` would join workers that may never exit (the
    original hang this module had on a worker death); instead cancel
    queued work and terminate any process still alive. The process
    handles must be snapshotted first: ``shutdown`` drops the pool's
    ``_processes`` dict even with ``wait=False``.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=5)
        if proc.is_alive():  # ignored SIGTERM: escalate
            proc.kill()
            proc.join(timeout=5)


def _run_round(
    tasks: List[dict],
    workers: int,
    timeout: Optional[float],
    cancel: Optional[CancelToken] = None,
):
    """Run one batch of tasks; returns ``(completed, failed)``.

    ``completed`` holds ``(task, worker result)`` pairs; ``failed``
    holds ``(task, reason)`` pairs. A worker death, timeout or set
    ``cancel`` token aborts the round: results already finished are
    kept, everything else is reported failed so the caller can retry
    it in a fresh pool (or, on cancellation, raise
    :class:`~repro.errors.Cancelled` after merging what completed).
    """
    completed: List[Tuple[dict, tuple]] = []
    failed: List[Tuple[dict, str]] = []
    pool = ProcessPoolExecutor(max_workers=workers)
    futures = [(task, pool.submit(_run_task, task)) for task in tasks]
    abort: Optional[str] = None
    for task, future in futures:
        if abort is not None:
            # The pool is compromised; salvage finished futures only.
            if future.done() and not future.cancelled():
                try:
                    completed.append((task, future.result()))
                except Exception as exc:
                    failed.append((task, repr(exc)))
            else:
                failed.append((task, abort))
            continue
        try:
            completed.append((task, _wait_result(future, timeout, cancel)))
        except _RoundCancelled:
            failed.append((task, "cancelled"))
            abort = "pool torn down after cancellation"
        except FutureTimeout:
            failed.append(
                (task, f"worker exceeded the {timeout:g}s timeout")
            )
            abort = "pool torn down after a worker timeout"
        except BrokenProcessPool as exc:
            failed.append((task, f"worker process died ({exc})"))
            abort = "pool torn down after a worker death"
        except Exception as exc:
            # A deterministic in-task failure; the pool itself is fine.
            failed.append((task, repr(exc)))
    if abort is not None:
        _terminate_pool(pool)
    else:
        pool.shutdown()
    return completed, failed


def prefetch_runs(
    ctx: ExperimentContext,
    experiment_names: Sequence[str],
    jobs: int,
    run_specs: Optional[Sequence[ConfigSpec]] = None,
    error_specs: Optional[Sequence[ConfigSpec]] = None,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 1.0,
    journal=None,
    split_fans: bool = True,
    progress=None,
    cancel: Optional[CancelToken] = None,
) -> int:
    """Simulate everything ``experiment_names`` will need, in parallel.

    Fans one task per workload (covering all its configs) across
    ``jobs`` worker processes and merges the results into ``ctx``'s
    memo dictionaries. Pairs already memoized are skipped. Returns the
    number of (workload, config) simulations fetched.

    ``run_specs`` / ``error_specs`` override the experiment-derived
    plan (used by :func:`repro.api.simulate` callers and tests).

    Args:
        timeout: seconds allowed per workload task, measured from the
            completion of the previously merged task (None = wait
            forever). A timeout kills the pool and counts as a failure.
        retries: rounds to re-run failed tasks in a fresh pool.
        backoff: base delay before retry ``k``, growing as
            ``backoff * 2**(k-1)`` seconds.
        split_fans: when there are fewer workloads than ``jobs``, split
            each workload's config fan into (workload, config-chunk)
            units so every worker gets a slice (see :func:`_split_fan`;
            results are identical either way). False restores
            one-task-per-workload.
        journal: optional
            :class:`~repro.resilience.checkpoint.SweepJournal`; every
            merged record is journaled as it lands, so a killed sweep
            resumes from its last completed (workload, config).
        progress: optional
            :class:`~repro.obs.livestream.LiveProgressSink`; workers
            then emit heartbeats (unit, accesses/sec, slow-path
            fraction, RSS) over a manager queue that the sink drains
            live, so a stuck worker is visible mid-run.
        cancel: optional :class:`CancelToken` shared with another
            thread (the serve daemon's job queue). A fresh token is
            created when omitted; either way SIGINT/SIGTERM route onto
            it while the pool is live (main thread only).

    Raises:
        SimulationFault: tasks still failing after every retry; the
            message names each failed (workload, configs) pair.
        Cancelled: the token was set; completed records were merged
            (and journaled) before raising.
    """
    if run_specs is None or error_specs is None:
        planned_runs, planned_errors = plan_specs(experiment_names)
        run_specs = planned_runs if run_specs is None else list(run_specs)
        error_specs = planned_errors if error_specs is None else list(error_specs)
    # Resolve context-default faults up front so worker memo keys,
    # parent memo keys and checkpoint digests all agree.
    run_specs = list(dict.fromkeys(ctx.apply_faults(s) for s in run_specs))
    error_specs = list(dict.fromkeys(ctx.apply_faults(s) for s in error_specs))
    tasks = []
    for name in ctx.names:
        need_runs = [s for s in run_specs if (name, s) not in ctx._runs]
        need_errors = [
            s
            for s in error_specs
            if s.kind != "baseline" and (name, s) not in ctx._errors
        ]
        if need_runs or need_errors:
            tasks.append(
                {
                    "workload": name,
                    "seed": ctx.seed,
                    "scale": ctx.scale,
                    "engine": ctx.engine,
                    "run_specs": need_runs,
                    "error_specs": need_errors,
                }
            )
    if not tasks:
        return 0
    if split_fans and len(tasks) < int(jobs):
        want = -(-int(jobs) // len(tasks))  # ceil: chunks per workload
        units: List[dict] = []
        for task in tasks:
            units.extend(_split_fan(task, want))
        if len(units) > len(tasks):
            log.info(
                "splitting %d workload fans into %d (workload, "
                "config-chunk) units for %d workers",
                len(tasks), len(units), int(jobs),
            )
        tasks = units
    # Unit names for progress display/storage: the workload, suffixed
    # with #k when its config fan was split across several chunk units.
    per_workload: Dict[str, int] = {}
    for task in tasks:
        per_workload[task["workload"]] = per_workload.get(task["workload"], 0) + 1
    seen: Dict[str, int] = {}
    for task in tasks:
        name = task["workload"]
        if per_workload[name] > 1:
            task["unit"] = f"{name}#{seen.get(name, 0)}"
            seen[name] = seen.get(name, 0) + 1
        else:
            task["unit"] = name
    manager = None
    if progress is not None:
        import multiprocessing

        # A manager queue proxy is picklable under every start method,
        # unlike a raw mp.Queue, so it can ride inside the task dicts.
        manager = multiprocessing.Manager()
        channel = manager.Queue()
        for task in tasks:
            task["progress"] = channel
        progress.start(channel)
    fetched = 0
    workers = max(1, min(int(jobs), len(tasks)))
    log.info(
        "prefetching %d workload tasks across %d workers", len(tasks), workers
    )
    token = cancel if cancel is not None else CancelToken()
    try:
        with cancellation_signals(token):
            fetched = _prefetch_rounds(
                ctx, tasks, workers, timeout, retries, backoff, journal,
                cancel=token,
            )
    finally:
        if progress is not None:
            progress.stop()
        if manager is not None:
            manager.shutdown()
    return fetched


def prefetch_pairs(
    ctx: ExperimentContext,
    run_pairs: Sequence[Tuple[str, ConfigSpec]] = (),
    error_pairs: Sequence[Tuple[str, ConfigSpec]] = (),
    jobs: int = 1,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 1.0,
    journal=None,
    cancel: Optional[CancelToken] = None,
) -> int:
    """Fan explicit (workload, spec) pairs across worker processes.

    :func:`prefetch_runs` fans a *cartesian* plan — every workload
    under every spec. Adaptive strategies (the frontier controller's
    per-workload searches) need the transpose: each workload probes
    its own spec this round. This entry point takes the explicit pair
    lists, groups them into one task per workload and reuses the same
    retry/backoff/journal machinery, so independent searches advance
    in parallel with the full crash tolerance of the generic prefetch.

    Pairs already memoized in ``ctx`` are skipped; fault configs are
    resolved through :meth:`ExperimentContext.apply_faults` first so
    worker and parent memo keys agree. Returns the number of
    simulations fetched.

    Raises:
        SimulationFault: a task still failing after every retry.
        Cancelled: the ``cancel`` token (or a signal routed onto the
            per-call token) was set mid-round.
    """
    needs: Dict[str, Tuple[List[ConfigSpec], List[ConfigSpec]]] = {}

    def _need(name: str, spec: ConfigSpec, side: int, memo: dict) -> None:
        """Queue one unmemoized (workload, spec) pair for its task."""
        spec = ctx.apply_faults(spec)
        bucket = needs.setdefault(name, ([], []))[side]
        if (name, spec) not in memo and spec not in bucket:
            bucket.append(spec)

    for name, spec in run_pairs:
        _need(name, spec, 0, ctx._runs)
    for name, spec in error_pairs:
        if spec.kind != "baseline":  # baseline error is 0 by definition
            _need(name, spec, 1, ctx._errors)
    tasks = []
    for name in ctx.names:
        run_specs, error_specs = needs.get(name, ((), ()))
        if run_specs or error_specs:
            tasks.append(
                {
                    "workload": name,
                    "seed": ctx.seed,
                    "scale": ctx.scale,
                    "engine": ctx.engine,
                    "run_specs": list(run_specs),
                    "error_specs": list(error_specs),
                    "unit": name,
                }
            )
    if not tasks:
        return 0
    workers = max(1, min(int(jobs), len(tasks)))
    log.info(
        "prefetching %d pair tasks across %d workers", len(tasks), workers
    )
    token = cancel if cancel is not None else CancelToken()
    with cancellation_signals(token):
        return _prefetch_rounds(
            ctx, tasks, workers, timeout, retries, backoff, journal,
            cancel=token,
        )


def _prefetch_rounds(
    ctx: ExperimentContext,
    tasks: List[dict],
    workers: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    journal,
    cancel: Optional[CancelToken] = None,
) -> int:
    """Run the retry loop of :func:`prefetch_runs`; returns runs fetched.

    Raises :class:`~repro.errors.Cancelled` when ``cancel`` is set —
    *after* merging and journaling whatever the aborted round had
    already completed, so a resumed sweep keeps that work.
    """
    fetched = 0
    with ctx.obs.profiler.phase(f"parallel/jobs{workers}"):
        pending = tasks
        attempt = 0
        while True:
            completed, failed = _run_round(
                pending, max(1, min(workers, len(pending))), timeout, cancel
            )
            for task, (name, runs, errors) in completed:
                for spec, record in runs:
                    ctx._runs[(name, spec)] = record
                    fetched += 1
                    if journal is not None:
                        journal.record_run(name, spec, record)
                for spec, err in errors.items():
                    ctx._errors[(name, spec)] = err
                    if journal is not None:
                        journal.record_error(name, spec, err)
            if cancel is not None and cancel.cancelled():
                raise Cancelled(
                    f"sweep cancelled ({cancel.reason}); "
                    f"{fetched} completed simulation"
                    f"{'' if fetched == 1 else 's'} kept"
                )
            if not failed:
                break
            if attempt >= retries:
                detail = "; ".join(
                    "{} [{}]: {}".format(
                        task["workload"],
                        ", ".join(
                            s.label()
                            for s in task["run_specs"] + task["error_specs"]
                        ) or "no specs",
                        reason,
                    )
                    for task, reason in failed
                )
                raise SimulationFault(
                    f"parallel sweep failed after {attempt} retr"
                    f"{'y' if attempt == 1 else 'ies'} for: {detail}"
                )
            attempt += 1
            delay = backoff * (2 ** (attempt - 1))
            for task, reason in failed:
                log.warning(
                    "retrying %s (attempt %d/%d in %.1fs): %s",
                    task["workload"], attempt, retries, delay, reason,
                )
                ctx.obs.tracer.emit(
                    EVENT_WORKER_RETRY,
                    workload=task["workload"], attempt=attempt,
                    delay_s=delay, error=reason,
                )
            time.sleep(delay)
            pending = [task for task, _ in failed]
    return fetched


def merge_records(
    ctx: ExperimentContext, records: Dict[Tuple[str, ConfigSpec], RunRecord]
) -> None:
    """Adopt externally computed records into a context's memo."""
    ctx._runs.update(records)
