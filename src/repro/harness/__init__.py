"""Experiment harness: strategies, one per table/figure of the paper.

* :mod:`repro.harness.reporting` — plain-text table rendering shared
  by every experiment and the benchmark suite.
* :mod:`repro.harness.runner` — configuration specs, the simulation
  pipeline (trace → hierarchy → energy), and a cache so sweeps that
  share configurations (Figs. 9-12) simulate each one once.
* :mod:`repro.harness.strategy` — the
  :class:`~repro.harness.strategy.ExperimentStrategy` plugin API, the
  strategy registry (built-ins plus ``repro.experiments`` entry
  points) and the generic
  :func:`~repro.harness.strategy.run_strategies` driver.
* :mod:`repro.harness.experiments` — the paper's drivers and their
  strategy classes, returning
  :class:`~repro.harness.reporting.Table` objects.
"""

from repro.harness.reporting import Table
from repro.harness.runner import (
    ConfigSpec,
    ExperimentContext,
    RunRecord,
    baseline_spec,
    dopp_spec,
    uni_spec,
)
from repro.harness.strategy import (
    ExperimentStrategy,
    Requirements,
    StrategyRegistry,
    registry,
    run_strategies,
)
from repro.harness import experiments

__all__ = [
    "ConfigSpec",
    "ExperimentContext",
    "ExperimentStrategy",
    "Requirements",
    "RunRecord",
    "StrategyRegistry",
    "Table",
    "baseline_spec",
    "dopp_spec",
    "experiments",
    "registry",
    "run_strategies",
    "uni_spec",
]
