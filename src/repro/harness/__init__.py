"""Experiment harness: one driver per table/figure of the paper.

* :mod:`repro.harness.reporting` — plain-text table rendering shared
  by every experiment and the benchmark suite.
* :mod:`repro.harness.runner` — configuration specs, the simulation
  pipeline (trace → hierarchy → energy), and a cache so sweeps that
  share configurations (Figs. 9-12) simulate each one once.
* :mod:`repro.harness.experiments` — ``fig02`` ... ``fig14``,
  ``table2``, ``table3`` drivers returning
  :class:`~repro.harness.reporting.Table` objects.
"""

from repro.harness.reporting import Table
from repro.harness.runner import (
    ConfigSpec,
    ExperimentContext,
    RunRecord,
    baseline_spec,
    dopp_spec,
    uni_spec,
)
from repro.harness import experiments

__all__ = [
    "ConfigSpec",
    "ExperimentContext",
    "RunRecord",
    "Table",
    "baseline_spec",
    "dopp_spec",
    "experiments",
    "uni_spec",
]
