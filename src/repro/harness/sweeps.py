"""Multi-seed sweeps and table aggregation.

Single-seed results carry synthetic-data noise; this module reruns any
experiment driver across seeds and aggregates the tables
(mean ± standard deviation per numeric cell), giving the harness a
statistical-robustness mode::

    from repro.harness.sweeps import seed_sweep
    mean, std = seed_sweep(experiments.fig07_map_space_savings,
                           seeds=(1, 2, 3), scale=0.25)
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.reporting import Table
from repro.harness.runner import ExperimentContext

TableOrDict = Union[Table, Dict[str, Table]]


def aggregate_tables(tables: Sequence[Table]) -> Tuple[Table, Table]:
    """Aggregate same-shape tables into (mean, std) tables.

    Non-numeric cells (row labels, None) are taken from the first
    table; every table must have identical headers and row labels.
    """
    if not tables:
        raise ValueError("need at least one table")
    first = tables[0]
    for other in tables[1:]:
        if other.headers != first.headers:
            raise ValueError("tables have different headers")
        if len(other.rows) != len(first.rows):
            raise ValueError("tables have different row counts")
        labels = [row[0] for row in other.rows]
        if labels != [row[0] for row in first.rows]:
            raise ValueError("tables have different row labels")

    mean = Table(first.title + " (mean)", first.headers, first.precision)
    std = Table(first.title + " (std)", first.headers, max(first.precision, 3))
    for r in range(len(first.rows)):
        mean_row: List = [first.rows[r][0]]
        std_row: List = [first.rows[r][0]]
        for c in range(1, len(first.headers)):
            cells = [t.rows[r][c] for t in tables]
            numeric = [v for v in cells if isinstance(v, (int, float))]
            if len(numeric) == len(cells) and numeric:
                mu = sum(numeric) / len(numeric)
                var = sum((v - mu) ** 2 for v in numeric) / len(numeric)
                mean_row.append(mu)
                std_row.append(math.sqrt(var))
            else:
                mean_row.append(first.rows[r][c])
                std_row.append(None)
        mean.add_row(*mean_row)
        std.add_row(*std_row)
    mean.notes = list(first.notes)
    mean.add_note(f"mean of {len(tables)} seeds")
    return mean, std


def seed_sweep(
    driver: Callable[[ExperimentContext], TableOrDict],
    seeds: Sequence[int] = (3, 7, 11),
    scale: Optional[float] = None,
    workloads=None,
) -> Union[Tuple[Table, Table], Dict[str, Tuple[Table, Table]]]:
    """Run an experiment driver once per seed and aggregate.

    Each seed gets a fresh :class:`ExperimentContext` (fresh data and
    simulations). Returns ``(mean, std)`` — or a dict of those when the
    driver returns a dict of tables.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_seed: List[TableOrDict] = []
    for seed in seeds:
        ctx = ExperimentContext(seed=seed, scale=scale, workloads=workloads)
        per_seed.append(driver(ctx))

    if isinstance(per_seed[0], dict):
        out: Dict[str, Tuple[Table, Table]] = {}
        for key in per_seed[0]:
            out[key] = aggregate_tables([result[key] for result in per_seed])
        return out
    return aggregate_tables(per_seed)


def stability_report(
    driver: Callable[[ExperimentContext], Table],
    seeds: Sequence[int] = (3, 7, 11),
    scale: Optional[float] = None,
    workloads=None,
    tolerance: float = 0.15,
) -> Table:
    """Flag cells whose cross-seed spread exceeds ``tolerance``.

    Spread is the coefficient of variation (std/|mean|) per numeric
    cell; the report lists unstable cells so benches and EXPERIMENTS.md
    claims can be sanity-checked against data-generation noise.
    """
    mean, std = seed_sweep(driver, seeds, scale, workloads)
    report = Table(
        f"Stability: {mean.title}", ["row", "column", "mean", "std", "cv"],
    )
    for r, row in enumerate(mean.rows):
        for c in range(1, len(mean.headers)):
            mu = row[c]
            sigma = std.rows[r][c]
            if not isinstance(mu, (int, float)) or sigma is None:
                continue
            cv = sigma / abs(mu) if abs(mu) > 1e-12 else 0.0
            if cv > tolerance:
                report.add_row(row[0], mean.headers[c], mu, sigma, cv)
    report.add_note(
        f"cells with cross-seed coefficient of variation > {tolerance}"
    )
    return report
