"""Experiment drivers and strategies: one per table/figure of the paper.

Every driver takes an :class:`~repro.harness.runner.ExperimentContext`
(except the two config-only ones) and returns one or more
:class:`~repro.harness.reporting.Table` objects whose rows mirror the
paper's series. The benchmark suite in ``benchmarks/`` wraps each
driver, prints the tables and records timings; EXPERIMENTS.md records
the paper-vs-measured comparison.

Each driver is wrapped by an
:class:`~repro.harness.strategy.ExperimentStrategy` subclass declaring
its simulation requirements; the :data:`STRATEGIES` tuple (paper
order) is what the global strategy registry discovers from this
module, and the CLI, :func:`repro.run_experiment` and the ``--jobs``
prefetch planner all dispatch through that registry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.similarity import threshold_storage_savings
from repro.analysis.storage import (
    LLCSnapshot,
    bdi_savings,
    dedup_savings,
    doppelganger_bdi_savings,
    doppelganger_savings,
    snapshot_from_system,
    snapshot_from_workload,
)
from repro.core.maps import MapConfig
from repro.energy.cacti import CactiModel
from repro.energy.structures import (
    TABLE3_PUBLISHED,
    baseline_llc_structure,
    doppelganger_structures,
    unidoppelganger_structures,
)
from repro.harness.reporting import Table, arithmetic_mean, geometric_mean
from repro.harness.runner import (
    ConfigSpec,
    ExperimentContext,
    baseline_spec,
    dopp_spec,
    uni_spec,
)
from repro.harness.strategy import ExperimentStrategy, Requirements

#: Fig. 2's similarity thresholds, as fractions.
FIG2_THRESHOLDS = (0.0, 0.0001, 0.001, 0.01, 0.10)
#: Map-space sweep of Figs. 7 and 9.
MAP_BITS_SWEEP = (12, 13, 14)
#: Data-array sweep of Figs. 10-12 (fractions of the 16 K tag count).
DATA_FRACTIONS = (0.5, 0.25, 0.125)
#: uniDoppelgänger sweep of Figs. 13-14 (fractions of 32 K blocks).
UNI_FRACTIONS = (0.75, 0.5, 0.25)
#: Per-read fault probabilities of the resilience sweep. The zero rate
#: is deliberate: it normalizes to the fault-free spec, pinning the
#: "zero-rate == disabled" identity in every faultsweep run.
FAULT_RATE_SWEEP = (0.0, 1e-4, 1e-3, 1e-2)
#: Fault-stream seed of the sweep (fixed: the sweep varies rate only).
FAULT_SEED = 11


def fault_config(rate: float) -> "FaultConfig":
    """The sweep's fault model at one per-read rate.

    Two-bit transient flips on every read of the unprotected structures
    — the approximate data array and DRAM transfers of approximate
    lines (precise DRAM lines stay ECC-protected and only pay refetch
    latency).
    """
    from repro.resilience.faults import FaultConfig

    return FaultConfig(
        seed=FAULT_SEED, read_rate=rate, flip_bits=2,
        targets=("approx_data", "dram"),
    )


def faultsweep_specs() -> list:
    """The base Doppelgänger config under each sweep fault rate."""
    return [
        dopp_spec(14, 0.25).with_faults(fault_config(r))
        for r in FAULT_RATE_SWEEP
    ]


def _snapshot(ctx: ExperimentContext, name: str) -> LLCSnapshot:
    """Approximate-data snapshot for storage analyses (Figs. 2, 7, 8)."""
    return snapshot_from_workload(ctx.workload(name))


# --------------------------------------------------------------------- Fig 2


def fig02_threshold_similarity(
    ctx: ExperimentContext, max_blocks_per_region: int = 3072
) -> Table:
    """Fig. 2: storage savings vs element-wise similarity threshold T.

    The greedy leader clustering behind the pairwise-similarity measure
    is O(blocks x leaders); large regions are sampled evenly (at most
    ``max_blocks_per_region`` blocks), mirroring the paper's sampling
    of LLC-resident blocks.
    """
    headers = ["workload"] + [f"T={100 * t:g}%" for t in FIG2_THRESHOLDS]
    table = Table("Fig. 2: approx data storage savings vs similarity threshold", headers)
    for name in ctx.names:
        snapshot = _snapshot(ctx, name)
        groups = []
        for region, blocks in snapshot.groups():
            if len(blocks) > max_blocks_per_region:
                step = len(blocks) // max_blocks_per_region
                blocks = blocks[::step][:max_blocks_per_region]
            groups.append((region, blocks))
        row = [name]
        for t in FIG2_THRESHOLDS:
            savings = []
            for region, blocks in groups:
                value_range = region.vmax - region.vmin
                savings.append(
                    (len(blocks), threshold_storage_savings(blocks, t, value_range))
                )
            total = sum(n for n, _ in savings)
            row.append(sum(n * s for n, s in savings) / total if total else 0.0)
        table.add_row(*row)
    return table


# ------------------------------------------------------------------- Table 2


def table2_approx_footprint(ctx: ExperimentContext) -> Table:
    """Table 2: percentage of LLC blocks that are approximate.

    Measured over the baseline 2 MB LLC's resident blocks at the end
    of each workload's simulation, side by side with the paper's
    reported percentage.
    """
    table = Table(
        "Table 2: approximate fraction of LLC blocks",
        ["workload", "measured %", "paper %"],
        precision=1,
    )
    for name in ctx.names:
        record = ctx.run(name, baseline_spec())
        llc = record.llc
        trace = ctx.trace(name)
        total = 0
        approx = 0
        for addr in llc.cache.resident_addrs():
            total += 1
            region = trace.regions.find(addr)
            if region is not None and region.approx:
                approx += 1
        measured = 100.0 * approx / total if total else 0.0
        table.add_row(name, measured, ctx.workload(name).paper_approx_footprint)
    return table


# --------------------------------------------------------------------- Fig 7


def fig07_map_space_savings(
    ctx: ExperimentContext, bits_sweep: Sequence[int] = MAP_BITS_SWEEP
) -> Table:
    """Fig. 7: approximate-data storage savings vs map-space size."""
    headers = ["workload"] + [f"{b}-bit" for b in bits_sweep]
    table = Table("Fig. 7: approx data storage savings vs map space size", headers)
    per_bits = {b: [] for b in bits_sweep}
    for name in ctx.names:
        snapshot = _snapshot(ctx, name)
        row = [name]
        for b in bits_sweep:
            s = doppelganger_savings(snapshot, MapConfig(b))
            row.append(s)
            per_bits[b].append(s)
        table.add_row(*row)
    table.add_row("mean", *[arithmetic_mean(per_bits[b]) for b in bits_sweep])
    table.add_note("paper means: 65.2% (12-bit), ~50% (13-bit), 37.9% (14-bit)")
    return table


# --------------------------------------------------------------------- Fig 8


def fig08_compression_comparison(ctx: ExperimentContext) -> Table:
    """Fig. 8: Doppelgänger vs BΔI vs exact dedup (and Dopp+BΔI)."""
    table = Table(
        "Fig. 8: storage savings vs compression and deduplication",
        ["workload", "BdI", "exact dedup", "14-bit Dopp", "14-bit Dopp + BdI"],
    )
    cols = {k: [] for k in ("bdi", "dedup", "dopp", "both")}
    for name in ctx.names:
        snapshot = _snapshot(ctx, name)
        bdi = bdi_savings(snapshot)
        dedup = dedup_savings(snapshot)
        dopp = doppelganger_savings(snapshot, MapConfig(14))
        both = doppelganger_bdi_savings(snapshot, MapConfig(14))
        table.add_row(name, bdi, dedup, dopp, both)
        cols["bdi"].append(bdi)
        cols["dedup"].append(dedup)
        cols["dopp"].append(dopp)
        cols["both"].append(both)
    table.add_row(
        "mean",
        arithmetic_mean(cols["bdi"]),
        arithmetic_mean(cols["dedup"]),
        arithmetic_mean(cols["dopp"]),
        arithmetic_mean(cols["both"]),
    )
    table.add_note("paper means: BdI 20.9%, dedup 5.3%, Dopp 37.9%, Dopp+BdI 43.9%")
    return table


# --------------------------------------------------------------------- Fig 9


def fig09_map_space(ctx: ExperimentContext) -> Dict[str, Table]:
    """Fig. 9: output error (a) and normalized runtime (b) vs map bits."""
    specs = {b: dopp_spec(map_bits=b, data_fraction=0.25) for b in MAP_BITS_SWEEP}
    err = Table(
        "Fig. 9a: output error vs map space size",
        ["workload"] + [f"{b}-bit" for b in MAP_BITS_SWEEP],
    )
    run = Table(
        "Fig. 9b: normalized runtime vs map space size",
        ["workload"] + [f"{b}-bit" for b in MAP_BITS_SWEEP],
    )
    runtime_cols = {b: [] for b in MAP_BITS_SWEEP}
    for name in ctx.names:
        err.add_row(name, *[ctx.error(name, specs[b]) for b in MAP_BITS_SWEEP])
        runtimes = [ctx.normalized_runtime(name, specs[b]) for b in MAP_BITS_SWEEP]
        run.add_row(name, *runtimes)
        for b, r in zip(MAP_BITS_SWEEP, runtimes):
            runtime_cols[b].append(r)
    run.add_row("geomean", *[geometric_mean(runtime_cols[b]) for b in MAP_BITS_SWEEP])
    err.add_note("paper: error decreases with map bits; <=~10% except ferret/swaptions")
    run.add_note("paper: <1% average runtime delta between 12- and 14-bit")
    return {"error": err, "runtime": run}


# -------------------------------------------------------------------- Fig 10


def fig10_data_array(ctx: ExperimentContext) -> Dict[str, Table]:
    """Fig. 10: output error (a) and normalized runtime (b) vs data array."""
    specs = {f: dopp_spec(map_bits=14, data_fraction=f) for f in DATA_FRACTIONS}
    labels = ["1/2", "1/4", "1/8"]
    err = Table(
        "Fig. 10a: output error vs approximate data array size",
        ["workload"] + [f"{lab} data array" for lab in labels],
    )
    run = Table(
        "Fig. 10b: normalized runtime vs approximate data array size",
        ["workload"] + [f"{lab} data array" for lab in labels],
    )
    stats = Table(
        "Fig. 10 companion: Doppelgänger replacement statistics (1/4 array)",
        ["workload", "tags/entry (resident)", "tags/evicted entry",
         "dirty evictions %", "hit rate %"],
        precision=2,
    )
    runtime_cols = {f: [] for f in DATA_FRACTIONS}
    for name in ctx.names:
        err.add_row(name, *[ctx.error(name, specs[f]) for f in DATA_FRACTIONS])
        runtimes = [ctx.normalized_runtime(name, specs[f]) for f in DATA_FRACTIONS]
        run.add_row(name, *runtimes)
        for f, r in zip(DATA_FRACTIONS, runtimes):
            runtime_cols[f].append(r)
        dopp = ctx.run(name, specs[0.25]).llc.dopp
        d = dopp.stats
        stats.add_row(
            name,
            dopp.current_avg_tags_per_entry(),
            d.avg_tags_per_evicted_entry,
            100.0 * d.dirty_eviction_fraction,
            100.0 * d.hit_rate,
        )
    run.add_row("geomean", *[geometric_mean(runtime_cols[f]) for f in DATA_FRACTIONS])
    run.add_note("paper: 2.3% average runtime increase with the 1/4 data array")
    stats.add_note("paper: on average 4.4 tags per data entry; 5.1% dirty evictions")
    return {"error": err, "runtime": run, "stats": stats}


# -------------------------------------------------------------------- Fig 11


def fig11_energy_reduction(ctx: ExperimentContext) -> Dict[str, Table]:
    """Fig. 11: LLC dynamic (a) and leakage (b) energy reductions."""
    specs = {f: dopp_spec(map_bits=14, data_fraction=f) for f in DATA_FRACTIONS}
    labels = ["1/2", "1/4", "1/8"]
    dyn = Table(
        "Fig. 11a: LLC dynamic energy reduction (x)",
        ["workload"] + [f"{lab} data array" for lab in labels],
        precision=2,
    )
    leak = Table(
        "Fig. 11b: LLC leakage energy reduction (x)",
        ["workload"] + [f"{lab} data array" for lab in labels],
        precision=2,
    )
    dyn_cols = {f: [] for f in DATA_FRACTIONS}
    leak_cols = {f: [] for f in DATA_FRACTIONS}
    for name in ctx.names:
        dyn_vals = [ctx.dynamic_energy_reduction(name, specs[f]) for f in DATA_FRACTIONS]
        leak_vals = [ctx.leakage_energy_reduction(name, specs[f]) for f in DATA_FRACTIONS]
        dyn.add_row(name, *dyn_vals)
        leak.add_row(name, *leak_vals)
        for f, d, l in zip(DATA_FRACTIONS, dyn_vals, leak_vals):
            dyn_cols[f].append(d)
            leak_cols[f].append(l)
    dyn.add_row("geomean", *[geometric_mean(dyn_cols[f]) for f in DATA_FRACTIONS])
    leak.add_row("geomean", *[geometric_mean(leak_cols[f]) for f in DATA_FRACTIONS])
    dyn.add_note("paper: 2.55x dynamic energy reduction with the 1/4 data array")
    leak.add_note("paper: 1.41x leakage energy reduction with the 1/4 data array")
    return {"dynamic": dyn, "leakage": leak}


# -------------------------------------------------------------------- Fig 12


def fig12_offchip_traffic(ctx: ExperimentContext) -> Table:
    """Fig. 12: off-chip memory traffic normalized to baseline."""
    specs = {f: dopp_spec(map_bits=14, data_fraction=f) for f in DATA_FRACTIONS}
    labels = ["1/2", "1/4", "1/8"]
    table = Table(
        "Fig. 12: normalized off-chip memory traffic",
        ["workload"] + [f"{lab} data array" for lab in labels],
    )
    cols = {f: [] for f in DATA_FRACTIONS}
    for name in ctx.names:
        vals = [ctx.normalized_traffic(name, specs[f]) for f in DATA_FRACTIONS]
        table.add_row(name, *vals)
        for f, v in zip(DATA_FRACTIONS, vals):
            cols[f].append(v)
    table.add_row("geomean", *[geometric_mean(cols[f]) for f in DATA_FRACTIONS])
    table.add_note("paper: +1.1% (1/2) and +3.4% (1/4) average traffic")
    return table


# -------------------------------------------------------------------- Fig 13


def fig13_area_reduction(cacti: Optional[CactiModel] = None) -> Table:
    """Fig. 13: LLC area reduction across both designs (config-only)."""
    cacti = cacti or CactiModel()
    base_area = cacti.area_mm2(baseline_llc_structure())
    table = Table(
        "Fig. 13: LLC area reduction (x) relative to baseline 2MB",
        ["design", "data array", "area mm2", "reduction x"],
        precision=2,
    )
    for frac, label in zip(DATA_FRACTIONS, ("1/2", "1/4", "1/8")):
        structs = doppelganger_structures(data_fraction=frac)
        area = sum(cacti.area_mm2(s) for s in structs.values())
        table.add_row("Doppelganger", label, area, base_area / area)
    for frac, label in zip(UNI_FRACTIONS, ("3/4", "1/2", "1/4")):
        structs = unidoppelganger_structures(data_fraction=frac)
        area = sum(cacti.area_mm2(s) for s in structs.values())
        table.add_row("uniDoppelganger", label, area, base_area / area)
    table.add_note("paper: Dopp 1.36x/1.55x/1.70x; uniDopp 1/4 reaches 3.15x")
    return table


# -------------------------------------------------------------------- Fig 14


def fig14_unidoppelganger(ctx: ExperimentContext) -> Dict[str, Table]:
    """Fig. 14: uniDoppelgänger error, runtime, and dynamic energy."""
    specs = {f: uni_spec(map_bits=14, data_fraction=f) for f in UNI_FRACTIONS}
    labels = ["3/4", "1/2", "1/4"]
    err = Table(
        "Fig. 14a: uniDoppelganger output error",
        ["workload"] + [f"{lab} data array" for lab in labels],
    )
    run = Table(
        "Fig. 14b: uniDoppelganger normalized runtime",
        ["workload"] + [f"{lab} data array" for lab in labels],
    )
    dyn = Table(
        "Fig. 14c: uniDoppelganger LLC dynamic energy reduction (x)",
        ["workload"] + [f"{lab} data array" for lab in labels],
        precision=2,
    )
    run_cols = {f: [] for f in UNI_FRACTIONS}
    dyn_cols = {f: [] for f in UNI_FRACTIONS}
    for name in ctx.names:
        err.add_row(name, *[ctx.error(name, specs[f]) for f in UNI_FRACTIONS])
        runtimes = [ctx.normalized_runtime(name, specs[f]) for f in UNI_FRACTIONS]
        run.add_row(name, *runtimes)
        dyn_vals = [ctx.dynamic_energy_reduction(name, specs[f]) for f in UNI_FRACTIONS]
        dyn.add_row(name, *dyn_vals)
        for f, r, d in zip(UNI_FRACTIONS, runtimes, dyn_vals):
            run_cols[f].append(r)
            dyn_cols[f].append(d)
    run.add_row("geomean", *[geometric_mean(run_cols[f]) for f in UNI_FRACTIONS])
    dyn.add_row("geomean", *[geometric_mean(dyn_cols[f]) for f in UNI_FRACTIONS])
    dyn.add_note("paper: 2.45x dynamic energy reduction with the 1/4 (512KB) array")
    return {"error": err, "runtime": run, "dynamic": dyn}


# ------------------------------------------------------------------- Table 3


def table3_hardware_cost(cacti: Optional[CactiModel] = None) -> Table:
    """Table 3: per-structure size / area / latency / energy.

    Sizes are exact bit-level accounting (they match the paper's
    numbers identically); area/latency/energy come from the calibrated
    model, shown beside the published CACTI values.
    """
    cacti = cacti or CactiModel()
    structs = {"baseline_llc": baseline_llc_structure()}
    structs.update(doppelganger_structures())
    structs.update(unidoppelganger_structures())
    table = Table(
        "Table 3: hardware cost, access latency and energy",
        [
            "structure",
            "entries",
            "tag bits",
            "size KB",
            "paper KB",
            "area mm2",
            "paper mm2",
            "tag ns",
            "data ns",
            "tag pJ",
            "data pJ",
        ],
        precision=2,
    )
    for name, s in structs.items():
        published = TABLE3_PUBLISHED.get(name, (None, None, None, None, None, None))
        table.add_row(
            name,
            s.entries,
            s.tag_entry_bits,
            s.total_kb,
            published[0],
            cacti.area_mm2(s),
            published[1],
            cacti.tag_latency_ns(s),
            cacti.data_latency_ns(s) if s.has_data else None,
            cacti.tag_energy_pj(s),
            cacti.data_energy_pj(s) if s.has_data else None,
        )
    table.add_note("sizes and entry widths reproduce Table 3 exactly; "
                   "area/latency/energy from the calibrated CACTI-like model")
    return table


def summary_headline(ctx: ExperimentContext) -> Table:
    """The abstract's headline claims, measured.

    1.55x area, 2.55x dynamic energy, 1.41x leakage energy, +2.3%
    runtime for the base (14-bit, 1/4) configuration.
    """
    spec = dopp_spec(14, 0.25)
    cacti = ctx.energy_model.cacti
    base_area = cacti.area_mm2(baseline_llc_structure())
    dopp_area = sum(
        cacti.area_mm2(s) for s in doppelganger_structures(data_fraction=0.25).values()
    )
    runtimes = [ctx.normalized_runtime(name, spec) for name in ctx.names]
    dyn = [ctx.dynamic_energy_reduction(name, spec) for name in ctx.names]
    leak = [ctx.leakage_energy_reduction(name, spec) for name in ctx.names]
    table = Table(
        "Headline claims (base 14-bit, 1/4 data array)",
        ["metric", "measured", "paper"],
        precision=2,
    )
    table.add_row("LLC area reduction (x)", base_area / dopp_area, 1.55)
    table.add_row("LLC dynamic energy reduction (x, geomean)", geometric_mean(dyn), 2.55)
    table.add_row("LLC leakage energy reduction (x, geomean)", geometric_mean(leak), 1.41)
    table.add_row(
        "runtime increase (%, geomean)", 100.0 * (geometric_mean(runtimes) - 1.0), 2.3
    )
    return table


# --------------------------------------------------------------- faultsweep


def faultsweep_resilience(ctx: ExperimentContext) -> Dict[str, Table]:
    """Resilience sweep: output quality and cost vs injected fault rate.

    The base (14-bit, 1/4 data array) Doppelgänger runs with seeded
    transient bit flips injected into its unprotected structures (the
    approximate data array and approximate DRAM transfers) at the
    rates of :data:`FAULT_RATE_SWEEP`. Three views:

    * ``error`` — application output error per rate (the quality cost
      of running approximate storage without ECC);
    * ``runtime`` — runtime normalized to the fault-free baseline LLC
      (detected faults on precise DRAM lines refetch, so the timing
      cost also grows with rate);
    * ``injected`` — silent faults the timing simulation counted, the
      determinism anchor: same seed, same counts, every run.
    """
    rates = FAULT_RATE_SWEEP
    specs = {r: spec for r, spec in zip(rates, faultsweep_specs())}
    cols = [f"rate {r:g}" for r in rates]
    err = Table(
        "Faultsweep: output error vs per-read fault rate (14-bit, 1/4 array)",
        ["workload"] + cols,
    )
    run = Table(
        "Faultsweep: normalized runtime vs per-read fault rate",
        ["workload"] + cols,
    )
    injected = Table(
        "Faultsweep: silent faults injected (timing simulation)",
        ["workload"] + cols,
        precision=0,
    )
    runtime_cols = {r: [] for r in rates}
    for name in ctx.names:
        err.add_row(name, *[ctx.error(name, specs[r]) for r in rates])
        runtimes = [ctx.normalized_runtime(name, specs[r]) for r in rates]
        run.add_row(name, *runtimes)
        for r, v in zip(rates, runtimes):
            runtime_cols[r].append(v)
        counts = []
        for r in rates:
            rec = ctx.run(name, specs[r])
            counts.append(
                sum(s["faults"] for s in rec.faults["sites"].values())
                if rec.faults is not None
                else 0
            )
        injected.add_row(name, *counts)
    run.add_row("geomean", *[geometric_mean(runtime_cols[r]) for r in rates])
    err.add_note("rate 0 is the fault-free config (zero-rate == disabled)")
    injected.add_note("counts are deterministic in (seed, rate): see "
                      "docs/robustness.md")
    return {"error": err, "runtime": run, "injected": injected}


# ---------------------------------------------------------------- strategies
#
# Each table/figure is an ExperimentStrategy wrapping its driver
# function (the functions stay public: the benchmark suite and the
# seed-sweep harness call them directly). The ``requires`` metadata is
# the single source of truth for what a --jobs prefetch must simulate;
# see docs/experiments.md for the plugin contract.


class Fig02Strategy(ExperimentStrategy):
    """Fig. 2: storage savings vs similarity threshold (snapshot only)."""

    name = "fig02"
    description = "storage savings vs element-wise similarity threshold"

    def execute(self, ctx):
        """Delegate to :func:`fig02_threshold_similarity`."""
        return fig02_threshold_similarity(ctx)


class Table2Strategy(ExperimentStrategy):
    """Table 2: approximate fraction of baseline LLC blocks."""

    name = "table2"
    description = "approximate fraction of LLC blocks vs paper"
    requires = Requirements(run_specs=(baseline_spec(),))

    def execute(self, ctx):
        """Delegate to :func:`table2_approx_footprint`."""
        return table2_approx_footprint(ctx)


class Fig07Strategy(ExperimentStrategy):
    """Fig. 7: storage savings vs map-space size (snapshot only)."""

    name = "fig07"
    description = "approx data storage savings vs map space size"

    def execute(self, ctx):
        """Delegate to :func:`fig07_map_space_savings`."""
        return fig07_map_space_savings(ctx)


class Fig08Strategy(ExperimentStrategy):
    """Fig. 8: Doppelgänger vs BΔI vs dedup (snapshot only)."""

    name = "fig08"
    description = "storage savings vs compression and deduplication"

    def execute(self, ctx):
        """Delegate to :func:`fig08_compression_comparison`."""
        return fig08_compression_comparison(ctx)


class Fig09Strategy(ExperimentStrategy):
    """Fig. 9: error and runtime across the map-bits sweep."""

    name = "fig09"
    description = "output error and normalized runtime vs map bits"
    requires = Requirements(
        run_specs=(baseline_spec(),)
        + tuple(dopp_spec(b, 0.25) for b in MAP_BITS_SWEEP),
        error_specs=tuple(dopp_spec(b, 0.25) for b in MAP_BITS_SWEEP),
    )

    def execute(self, ctx):
        """Delegate to :func:`fig09_map_space`."""
        return fig09_map_space(ctx)


class Fig10Strategy(ExperimentStrategy):
    """Fig. 10: error, runtime and replacement stats vs data array."""

    name = "fig10"
    description = "output error and normalized runtime vs data array size"
    requires = Requirements(
        run_specs=(baseline_spec(),)
        + tuple(dopp_spec(14, f) for f in DATA_FRACTIONS),
        error_specs=tuple(dopp_spec(14, f) for f in DATA_FRACTIONS),
    )

    def execute(self, ctx):
        """Delegate to :func:`fig10_data_array`."""
        return fig10_data_array(ctx)


class Fig11Strategy(ExperimentStrategy):
    """Fig. 11: LLC dynamic and leakage energy reductions."""

    name = "fig11"
    description = "LLC dynamic and leakage energy reduction"
    requires = Requirements(
        run_specs=(baseline_spec(),)
        + tuple(dopp_spec(14, f) for f in DATA_FRACTIONS),
    )

    def execute(self, ctx):
        """Delegate to :func:`fig11_energy_reduction`."""
        return fig11_energy_reduction(ctx)


class Fig12Strategy(ExperimentStrategy):
    """Fig. 12: off-chip traffic across the data-array sweep."""

    name = "fig12"
    description = "normalized off-chip memory traffic"
    requires = Requirements(
        run_specs=(baseline_spec(),)
        + tuple(dopp_spec(14, f) for f in DATA_FRACTIONS),
    )

    def execute(self, ctx):
        """Delegate to :func:`fig12_offchip_traffic`."""
        return fig12_offchip_traffic(ctx)


class Fig13Strategy(ExperimentStrategy):
    """Fig. 13: LLC area reduction (config-only, no simulation)."""

    name = "fig13"
    description = "LLC area reduction across both designs"
    requires = Requirements(context=False)

    def execute(self, ctx):
        """Delegate to :func:`fig13_area_reduction` (ignores ``ctx``)."""
        return fig13_area_reduction()


class Fig14Strategy(ExperimentStrategy):
    """Fig. 14: uniDoppelgänger error, runtime and dynamic energy."""

    name = "fig14"
    description = "uniDoppelganger error, runtime and dynamic energy"
    requires = Requirements(
        run_specs=(baseline_spec(),)
        + tuple(uni_spec(14, f) for f in UNI_FRACTIONS),
        error_specs=tuple(uni_spec(14, f) for f in UNI_FRACTIONS),
    )

    def execute(self, ctx):
        """Delegate to :func:`fig14_unidoppelganger`."""
        return fig14_unidoppelganger(ctx)


class Table3Strategy(ExperimentStrategy):
    """Table 3: hardware cost model (config-only, no simulation)."""

    name = "table3"
    description = "per-structure size, area, latency and energy"
    requires = Requirements(context=False)

    def execute(self, ctx):
        """Delegate to :func:`table3_hardware_cost` (ignores ``ctx``)."""
        return table3_hardware_cost()


class HeadlineStrategy(ExperimentStrategy):
    """The abstract's headline claims under the base configuration."""

    name = "headline"
    description = "the abstract's headline claims, measured"
    requires = Requirements(run_specs=(baseline_spec(), dopp_spec(14, 0.25)))

    def execute(self, ctx):
        """Delegate to :func:`summary_headline`."""
        return summary_headline(ctx)


class FaultsweepStrategy(ExperimentStrategy):
    """Resilience sweep: quality and cost vs injected fault rate."""

    name = "faultsweep"
    description = "output quality and cost vs injected fault rate"

    @property
    def requires(self):
        """Sweep specs built lazily (they pull in the fault model)."""
        sweep = tuple(faultsweep_specs())
        return Requirements(
            run_specs=(baseline_spec(),) + sweep, error_specs=sweep
        )

    def execute(self, ctx):
        """Delegate to :func:`faultsweep_resilience`."""
        return faultsweep_resilience(ctx)


#: The built-in strategies, in paper order — what the global
#: :data:`repro.harness.strategy.registry` discovers from this module.
STRATEGIES = (
    Fig02Strategy,
    Table2Strategy,
    Fig07Strategy,
    Fig08Strategy,
    Fig09Strategy,
    Fig10Strategy,
    Fig11Strategy,
    Fig12Strategy,
    Fig13Strategy,
    Fig14Strategy,
    Table3Strategy,
    HeadlineStrategy,
    FaultsweepStrategy,
)


def experiment_names() -> list:
    """All registered experiment names, in registry order.

    Built-ins come first in paper (declaration) order, followed by any
    ``repro.experiments`` entry-point plugins sorted by name — see
    :class:`repro.harness.strategy.StrategyRegistry`.
    """
    from repro.harness.strategy import registry

    return registry.names()
