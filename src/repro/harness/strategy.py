"""Experiment strategies: the plugin API behind every harness run.

Every experiment of the paper's evaluation — and every scenario added
since — is an :class:`ExperimentStrategy`: a named object that
declares what it needs (:class:`Requirements`), produces its tables in
``execute()``, and is discovered through a :class:`StrategyRegistry`
rather than hard-coded CLI branches. The harness machinery that used
to be special-cased per experiment (``--jobs`` fan-splitting,
checkpoint/resume journaling, retries, engine fallback, observability
phases, history-store recording) lives once in :func:`run_strategies`
and is driven purely by registry metadata, so a new experiment — in
this package or a third-party distribution — is a ~100-line class, not
a harness fork.

Discovery has two sources, in a deterministic, documented order:

1. **Built-ins** — the classes listed in each registered builtin
   module's ``STRATEGIES`` tuple (paper/declaration order).
2. **Entry points** — distributions advertising the
   ``repro.experiments`` group, appended sorted by entry-point name.
   A plugin that fails to import is skipped with a warning (a broken
   third-party package must never take the CLI down), and an entry
   point whose name collides with an already-registered strategy is
   ignored (built-ins win).

Writing a plugin (see ``docs/experiments.md`` for the full guide)::

    from repro.harness.strategy import ExperimentStrategy, Requirements
    from repro.harness.reporting import Table
    from repro.harness.runner import baseline_spec, dopp_spec

    class MySweep(ExperimentStrategy):
        name = "mysweep"
        description = "my custom design-point sweep"
        requires = Requirements(
            context=True,
            run_specs=(baseline_spec(), dopp_spec(14, 0.25)),
        )

        def execute(self, ctx):
            table = Table("My sweep", ["workload", "cycles"])
            for name in ctx.names:
                table.add_row(name, ctx.run(name, dopp_spec(14, 0.25)).cycles)
            return {"": table}

    # pyproject.toml of the plugin distribution:
    # [project.entry-points."repro.experiments"]
    # mysweep = "myplugin:MySweep"

Once installed, ``repro experiments mysweep --jobs 2`` runs it with
prefetching, checkpointing and history recording — no harness changes.
"""

from __future__ import annotations

import os
import sys
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import Cancelled, ConfigError, UnknownExperimentError
from repro.harness.reporting import Table
from repro.harness.runner import ConfigSpec, ExperimentContext
from repro.obs import Observability

#: Entry-point group third-party distributions register strategies in.
ENTRY_POINT_GROUP = "repro.experiments"

#: What ``execute`` returns: sub-table key -> Table (``""`` = main).
Tables = Dict[str, Table]


@dataclass(frozen=True)
class Requirements:
    """What a strategy needs from the harness, as inert metadata.

    The generic driver (:func:`run_strategies`) and the parallel
    prefetcher (:func:`repro.harness.parallel.plan_specs`) consume
    this instead of switching on experiment names.

    Attributes:
        context: whether the strategy needs an
            :class:`~repro.harness.runner.ExperimentContext` (workload
            instances, traces, the memoized run pipeline). Config-only
            analyses set this False and receive ``ctx=None``.
        run_specs: the :class:`~repro.harness.runner.ConfigSpec` set
            the strategy will simulate per workload — exactly what a
            ``--jobs N`` prefetch fans across workers.
        error_specs: the specs whose functional output error the
            strategy will evaluate (also prefetched).
        engines: engine names the strategy supports; the default is
            every engine (both are bit-identical).
    """

    context: bool = True
    run_specs: Tuple[ConfigSpec, ...] = ()
    error_specs: Tuple[ConfigSpec, ...] = ()
    engines: Tuple[str, ...] = ("batched", "reference")

    def summary(self) -> str:
        """One-cell human summary for the registry table."""
        if not self.context:
            return "config-only"
        parts = ["context"]
        if self.run_specs:
            parts.append(f"{len(self.run_specs)} sim configs")
        if self.error_specs:
            parts.append(f"{len(self.error_specs)} error configs")
        return ", ".join(parts)


class ExperimentStrategy(ABC):
    """Base class every experiment implements.

    Lifecycle per invocation: ``setup(ctx)`` once, ``execute(ctx)``
    once (returning the tables), ``teardown(ctx)`` always — even when
    ``execute`` raised. ``ctx`` is the shared
    :class:`~repro.harness.runner.ExperimentContext` (or ``None`` for
    strategies whose :attr:`requires` declare ``context=False``).

    Class attributes:
        name: registry key, CLI name and JSON filename stem.
        description: one line for ``repro experiments --list``.
        requires: :class:`Requirements` metadata; override the class
            attribute, or redefine it as a property when the spec list
            is expensive to build.
    """

    name: str = ""
    description: str = ""
    requires: Requirements = Requirements()

    def setup(self, ctx: Optional[ExperimentContext]) -> None:
        """One-time preparation before :meth:`execute` (default no-op)."""

    @abstractmethod
    def execute(self, ctx: Optional[ExperimentContext]) -> Tables:
        """Produce the experiment's tables.

        Returns:
            Mapping of sub-table key to
            :class:`~repro.harness.reporting.Table`; single-table
            strategies may also return the bare ``Table``.
        """

    def teardown(self, ctx: Optional[ExperimentContext]) -> None:
        """Cleanup after :meth:`execute`, even on failure (default no-op)."""

    def declare_metrics(self) -> Tuple[str, ...]:
        """Custom metric names this strategy publishes while running.

        The driver pre-registers each as a gauge named
        ``experiment.<strategy>.<metric>`` in the run's metrics
        registry (when observability is enabled), so strategies can
        ``ctx.obs.registry.gauge(...)`` during :meth:`execute` and the
        values land in ``--metrics-out`` snapshots.
        """
        return ()

    def label(self) -> str:
        """Display name (the registry key)."""
        return self.name or type(self).__name__


class StrategyRegistry:
    """Discovers and resolves :class:`ExperimentStrategy` instances.

    Iteration order is deterministic and documented: builtin modules'
    ``STRATEGIES`` tuples in declaration order, then entry-point
    strategies sorted by entry-point name. Lookups of unknown names
    raise :class:`~repro.errors.UnknownExperimentError` (exit code 2
    through the CLI), never a raw ``KeyError``.

    Args:
        builtin_modules: modules whose ``STRATEGIES`` tuple is
            registered on first use.
        entry_point_group: importlib.metadata group scanned for
            third-party strategies (``None`` disables scanning).
    """

    def __init__(
        self,
        builtin_modules: Sequence[str] = (),
        entry_point_group: Optional[str] = None,
    ):
        """Create an empty registry (see class docstring)."""
        self._builtin_modules = tuple(builtin_modules)
        self._entry_point_group = entry_point_group
        self._strategies: Dict[str, ExperimentStrategy] = {}
        self._discovered = False

    # ---------------------------------------------------------- registration

    def register(self, strategy):
        """Register a strategy class or instance; usable as a decorator.

        Returns the argument unchanged so ``@registry.register`` works
        on class definitions. Raises
        :class:`~repro.errors.ConfigError` on an empty or duplicate
        name.
        """
        instance = strategy() if isinstance(strategy, type) else strategy
        if not isinstance(instance, ExperimentStrategy):
            raise ConfigError(
                f"{strategy!r} is not an ExperimentStrategy subclass or "
                "instance",
                field="strategy",
            )
        name = instance.name
        if not name:
            raise ConfigError(
                f"strategy {type(instance).__name__} has no name",
                field="strategy.name",
            )
        if name in self._strategies:
            raise ConfigError(
                f"experiment {name!r} is already registered",
                field="strategy.name",
            )
        self._strategies[name] = instance
        return strategy

    def unregister(self, name: str) -> None:
        """Remove one strategy (primarily for tests)."""
        self._strategies.pop(name, None)

    def _discover(self) -> None:
        """Load built-ins, then entry points (idempotent)."""
        if self._discovered:
            return
        self._discovered = True
        import importlib

        for module_name in self._builtin_modules:
            module = importlib.import_module(module_name)
            for cls in getattr(module, "STRATEGIES", ()):
                self.register(cls)
        if self._entry_point_group:
            self._discover_entry_points()

    def _discover_entry_points(self) -> None:
        """Append entry-point strategies, sorted by entry-point name.

        A plugin that fails to load — or whose name collides with an
        already-registered strategy — is skipped with a warning; a
        broken third-party distribution must never break the harness.
        """
        from importlib import metadata

        try:
            points = metadata.entry_points(group=self._entry_point_group)
        except TypeError:  # Python 3.9: entry_points() returns a dict
            points = metadata.entry_points().get(self._entry_point_group, ())
        for point in sorted(points, key=lambda p: p.name):
            try:
                loaded = point.load()
                instance = loaded() if isinstance(loaded, type) else loaded
            except Exception as exc:
                warnings.warn(
                    f"experiment plugin {point.name!r} "
                    f"({point.value}) failed to load: {exc!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(instance, ExperimentStrategy):
                warnings.warn(
                    f"experiment plugin {point.name!r} ({point.value}) is "
                    "not an ExperimentStrategy; skipped",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if instance.name in self._strategies:
                warnings.warn(
                    f"experiment plugin {point.name!r} shadows registered "
                    f"experiment {instance.name!r}; skipped",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            self._strategies[instance.name] = instance

    # --------------------------------------------------------------- lookups

    def get(self, name: str) -> ExperimentStrategy:
        """The strategy registered as ``name``.

        Raises:
            UnknownExperimentError: no such experiment (the error lists
                every known name; exit code 2 through the CLI).
        """
        self._discover()
        try:
            return self._strategies[name]
        except KeyError:
            raise UnknownExperimentError(name, self.names()) from None

    def resolve(self, item) -> ExperimentStrategy:
        """Coerce a name, class or instance into a strategy instance."""
        if isinstance(item, str):
            return self.get(item)
        if isinstance(item, type) and issubclass(item, ExperimentStrategy):
            return item()
        if isinstance(item, ExperimentStrategy):
            return item
        raise ConfigError(
            f"expected an experiment name or ExperimentStrategy, got "
            f"{type(item).__name__}",
            field="experiment",
        )

    def names(self) -> List[str]:
        """Every registered name, in documented deterministic order."""
        self._discover()
        return list(self._strategies)

    def __contains__(self, name: str) -> bool:
        self._discover()
        return name in self._strategies

    def __iter__(self) -> Iterator[ExperimentStrategy]:
        self._discover()
        return iter(self._strategies.values())

    def __len__(self) -> int:
        self._discover()
        return len(self._strategies)

    def table(self) -> Table:
        """The registry rendered as the shared plain-text Table."""
        table = Table(
            "Registered experiments",
            ["name", "description", "requirements"],
        )
        for strategy in self:
            table.add_row(
                strategy.name,
                strategy.description or type(strategy).__name__,
                strategy.requires.summary(),
            )
        table.add_note(
            "built-ins in declaration (paper) order, then "
            f"{ENTRY_POINT_GROUP!r} entry points sorted by name"
        )
        return table


#: The process-wide registry: built-in paper experiments plus
#: ``repro.experiments`` entry points.
registry = StrategyRegistry(
    builtin_modules=("repro.harness.experiments", "repro.harness.frontier"),
    entry_point_group=ENTRY_POINT_GROUP,
)


def experiment_names() -> List[str]:
    """Every registered experiment name, in registry order."""
    return registry.names()


# ------------------------------------------------------------------- driver


@dataclass
class StrategyOutcome:
    """One executed strategy: its tables and wall time."""

    name: str
    tables: Tables
    wall_s: float


@dataclass
class StrategyRunResult:
    """What :func:`run_strategies` hands back to its caller."""

    #: Per-strategy outcome, in execution order.
    outcomes: List[StrategyOutcome] = field(default_factory=list)
    #: The shared context (None when no strategy required one).
    ctx: Optional[ExperimentContext] = None
    #: History-store run id when ``record_history`` landed one (the
    #: serve daemon links jobs to ``repro history`` rows through this).
    run_id: Optional[int] = None

    @property
    def tables(self) -> Dict[str, Tables]:
        """Strategy name -> its tables."""
        return {o.name: o.tables for o in self.outcomes}

    @property
    def walls(self) -> Dict[str, float]:
        """Strategy name -> wall seconds."""
        return {o.name: o.wall_s for o in self.outcomes}


def _normalize_tables(name: str, result) -> Tables:
    """Coerce an ``execute`` return value into ``{key: Table}``."""
    if isinstance(result, Table):
        return {"": result}
    if isinstance(result, dict):
        return result
    raise ConfigError(
        f"experiment {name!r} returned {type(result).__name__}; expected a "
        "Table or a dict of Tables",
        field="experiment",
    )


def _cpu_seconds(start) -> float:
    """CPU seconds (self + children) since an ``os.times()`` snapshot."""
    end = os.times()
    return sum(end[:4]) - sum(start[:4])


def _plan_from(strategies: Sequence[ExperimentStrategy]):
    """Union of the strategies' spec requirements, first-seen order."""
    runs = [s for strat in strategies for s in strat.requires.run_specs]
    errors = [s for strat in strategies for s in strat.requires.error_specs]
    return list(dict.fromkeys(runs)), list(dict.fromkeys(errors))


def _start_history_run(store_path, argv, names, options) -> tuple:
    """Open the history store and insert this invocation's run row.

    Returns ``(store, run_id)``, or ``(None, None)`` when the store
    cannot be opened — the harness never fails because telemetry did,
    but the warning names the path so a deliberate store choice points
    somewhere debuggable.
    """
    from repro.obs.store import (
        RunStore,
        config_digest,
        default_store_path,
        git_sha,
    )

    path = store_path or default_store_path(options.get("json_dir") or None)
    faults = options.get("faults")
    try:
        store = RunStore(path)
        run_id = store.start_run(
            experiments=names,
            workloads=options.get("workloads"),
            engine=options.get("engine") or "batched",
            seed=options.get("seed"),
            scale=options.get("scale"),
            jobs=options.get("jobs", 1),
            argv=list(argv or []),
            sha=git_sha(),
            config_hash=config_digest(
                {
                    "experiments": list(names),
                    "seed": options.get("seed"),
                    "scale": options.get("scale"),
                    "workloads": options.get("workloads"),
                    "engine": options.get("engine"),
                    "faults": faults.to_dict() if faults is not None else None,
                }
            ),
        )
    except Exception as exc:
        print(f"[history store {path} unavailable: {exc}]", file=sys.stderr)
        return None, None
    return store, run_id


def _record_history_run(
    store, run_id, ctx, progress, *, wall_s, cpu_s, experiments, echo
):
    """Land results, heartbeats and final timings in the history store."""
    try:
        if ctx is not None:
            records = ctx.run_records()
            for row in ctx.run_summaries():
                store.add_result(
                    run_id,
                    row,
                    records.get((row["workload"], row["config"])),
                )
        if progress is not None:
            store.add_events(run_id, progress.events_for_store())
        if ctx is not None and getattr(ctx, "pending_events", None):
            store.add_events(run_id, ctx.pending_events)
        store.finish_run(
            run_id,
            wall_s=wall_s,
            cpu_s=cpu_s,
            experiments=experiments,
            context=ctx.context_summary() if ctx is not None else None,
        )
        if echo:
            echo(f"[run {run_id} recorded in {store.path}]")
    finally:
        store.close()


def _abort_history_run(store, run_id, ctx, reason: str) -> None:
    """Mark a cancelled run in the history store, without finishing it.

    Completed (workload, config) results are landed so the partial
    sweep stays queryable, a ``run_cancelled`` event records why, and
    the row keeps ``finished = 0`` — ``repro history list`` shows the
    run as unfinished, which it is. Telemetry failures are swallowed
    like everywhere else in the recording path.
    """
    try:
        if ctx is not None:
            records = ctx.run_records()
            for row in ctx.run_summaries():
                store.add_result(
                    run_id,
                    row,
                    records.get((row["workload"], row["config"])),
                )
        store.add_event(run_id, "run_cancelled", payload={"reason": reason})
    except Exception:  # pragma: no cover - telemetry must not mask Cancelled
        pass
    finally:
        store.close()


def _execute_one(
    strategy: ExperimentStrategy,
    ctx: Optional[ExperimentContext],
    obs: Observability,
    *,
    out: Optional[str],
    json_dir: Optional[str],
    echo: Optional[Callable[[str], None]],
) -> StrategyOutcome:
    """Run one strategy's lifecycle; print, save and serialize tables."""
    name = strategy.label()
    if obs.enabled:
        for metric in strategy.declare_metrics():
            obs.registry.gauge(f"experiment.{name}.{metric}")
    start_ns = perf_counter_ns()
    with obs.profiler.phase(f"experiment/{name}"):
        strategy.setup(ctx if strategy.requires.context else None)
        try:
            result = strategy.execute(ctx if strategy.requires.context else None)
        finally:
            strategy.teardown(ctx if strategy.requires.context else None)
    tables = _normalize_tables(name, result)
    for key, table in tables.items():
        if echo:
            echo("")
            echo(table.render())
        if out:
            filename = f"{name}_{key}.txt" if key else f"{name}.txt"
            table.save(directory=out, filename=filename)
    wall_s = (perf_counter_ns() - start_ns) / 1e9
    if json_dir:
        from repro.obs.output import save_experiment_json, update_bench_summary

        save_experiment_json(name, tables, json_dir)
        update_bench_summary(
            json_dir,
            experiments={
                name: {"wall_s": wall_s, "tables": [k or "main" for k in tables]}
            },
        )
    if echo:
        echo(f"\n[{name} done in {wall_s:.1f}s]")
    return StrategyOutcome(name=name, tables=tables, wall_s=wall_s)


def run_strategies(
    experiments: Sequence[Union[str, ExperimentStrategy]],
    *,
    strategy_registry: Optional[StrategyRegistry] = None,
    ctx: Optional[ExperimentContext] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    workloads: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
    faults=None,
    jobs: int = 1,
    split_fans: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    obs: Optional[Observability] = None,
    progress=None,
    out: Optional[str] = None,
    json_dir: Optional[str] = None,
    echo: Optional[Callable[[str], None]] = None,
    store_path: Optional[str] = None,
    record_history: bool = False,
    argv: Optional[Sequence[str]] = None,
    strategy_options: Optional[dict] = None,
    cancel=None,
) -> StrategyRunResult:
    """Run a batch of strategies through the one generic pipeline.

    This is the driver both the CLI and :func:`repro.run_experiment`
    dispatch through. Everything that used to be per-experiment
    special-casing is here once, keyed on registry metadata:

    * **context** — built only when some strategy requires one;
    * **prefetch** — with ``jobs > 1``, the union of the strategies'
      ``requires.run_specs`` / ``error_specs`` fans across a process
      pool (config fans split across idle workers unless
      ``split_fans=False``), with ``timeout``/``retries`` resilience;
    * **checkpointing** — ``checkpoint_dir`` journals every completed
      (workload, config); ``resume`` loads finished pairs first;
    * **observability** — each strategy runs in its own profiler
      phase, and declared metrics are pre-registered;
    * **history** — with ``record_history``, the invocation lands in
      the sqlite run store exactly as the CLI records it.

    Args:
        experiments: registered names and/or strategy instances, in
            execution order.
        strategy_registry: registry names resolve against (the global
            :data:`registry` by default).
        ctx: reuse an existing context; otherwise one is built from
            ``seed`` / ``scale`` / ``workloads`` / ``engine`` /
            ``faults`` when any strategy requires it.
        progress: optional
            :class:`~repro.obs.livestream.LiveProgressSink` receiving
            worker heartbeats during the prefetch.
        out: directory for plain-text table files (None = don't save).
        json_dir: directory for ``<name>.json`` tables and the
            ``BENCH_obs.json`` summary (None = no JSON output).
        echo: line printer for human output (``print`` on the CLI);
            None keeps the run silent, as library callers expect.
        store_path: history database path (None = the default store
            resolution) — only consulted when ``record_history``.
        argv: CLI argv recorded alongside the history run.
        strategy_options: free-form options mapping published on the
            context as ``ctx.strategy_options`` — how strategy-specific
            CLI knobs (``--error-budget``, ``--voltage-steps``) reach
            the strategies without per-experiment driver branches.
        cancel: optional
            :class:`~repro.harness.parallel.CancelToken` another thread
            may set (the serve daemon's ``DELETE /jobs/<id>``). Checked
            between strategies and polled continuously during the
            parallel prefetch; also published as ``ctx.cancel`` so
            long-running strategies can poll it themselves.

    Returns:
        :class:`StrategyRunResult` with per-strategy tables/wall times,
        the shared context, and the history run id (when recorded).

    Raises:
        UnknownExperimentError: an experiment name is not registered.
        SimulationFault: the parallel prefetch exhausted its retries.
        Cancelled: the ``cancel`` token was set (or a signal arrived
            during the prefetch); a recorded history run keeps its
            completed results plus a ``run_cancelled`` event, without
            being marked finished.
    """
    reg = strategy_registry if strategy_registry is not None else registry
    resolved = [reg.resolve(item) for item in experiments]
    obs = obs or Observability.disabled()
    start_ns = perf_counter_ns()
    cpu_start = os.times()
    names = [s.label() for s in resolved]
    store = run_id = None
    if record_history:
        store, run_id = _start_history_run(
            store_path,
            argv,
            names,
            {
                "json_dir": json_dir,
                "workloads": list(workloads) if workloads else None,
                "engine": engine,
                "seed": seed,
                "scale": scale,
                "jobs": jobs,
                "faults": faults,
            },
        )

    if ctx is None and any(s.requires.context for s in resolved):
        ctx = ExperimentContext(
            seed=seed,
            scale=scale,
            workloads=workloads,
            obs=obs,
            engine=engine,
            faults=faults,
        )
    journal = None
    if checkpoint_dir and ctx is not None:
        from repro.resilience.checkpoint import open_journal

        journal = open_journal(checkpoint_dir, ctx)
        if resume:
            runs, errors = journal.load_into(ctx)
            if echo:
                echo(
                    f"[resumed {runs} runs and {errors} errors from "
                    f"{checkpoint_dir}]"
                )
    if ctx is not None:
        # Publish the harness execution knobs so strategies that
        # orchestrate their own fan-out (e.g. frontier's adaptive
        # search) reuse the same jobs/journal/resilience settings.
        ctx.jobs = jobs
        ctx.timeout = timeout
        ctx.retries = retries
        ctx.journal = journal
        ctx.checkpoint_dir = checkpoint_dir
        ctx.strategy_options = dict(strategy_options or {})
        ctx.cancel = cancel
    result = StrategyRunResult(ctx=ctx, run_id=run_id)
    try:
        if jobs > 1 and ctx is not None:
            run_specs, error_specs = _plan_from(resolved)
            if run_specs or error_specs:
                from repro.harness.parallel import prefetch_runs

                if obs.enabled and echo:
                    echo(
                        "[note: --jobs simulates in worker processes; "
                        "per-access traces/metrics are not captured for "
                        "prefetched runs]"
                    )
                fetched = prefetch_runs(
                    ctx,
                    [],
                    jobs,
                    run_specs=run_specs,
                    error_specs=error_specs,
                    timeout=timeout,
                    retries=retries,
                    journal=journal,
                    split_fans=split_fans,
                    progress=progress,
                    cancel=cancel,
                )
                if progress is not None and echo:
                    beat = progress.summary()
                    echo(
                        f"[progress: {beat['heartbeats']} heartbeats from "
                        f"{beat['units']} work units]"
                    )
                if fetched and echo:
                    echo(f"[prefetched {fetched} runs across {jobs} jobs]")

        for strategy in resolved:
            if cancel is not None and cancel.cancelled():
                raise Cancelled(
                    f"run cancelled ({cancel.reason}) before experiment "
                    f"{strategy.label()!r}"
                )
            result.outcomes.append(
                _execute_one(
                    strategy, ctx, obs, out=out, json_dir=json_dir, echo=echo
                )
            )
    except Cancelled as exc:
        if store is not None:
            _abort_history_run(store, run_id, ctx, str(exc))
        exc.run_id = run_id  # let callers (the serve daemon) link the run
        raise

    if ctx is not None and json_dir:
        from repro.obs.output import update_bench_summary

        update_bench_summary(
            json_dir,
            runs=ctx.run_summaries(),
            context=ctx.context_summary(),
        )
    if store is not None:
        _record_history_run(
            store,
            run_id,
            ctx,
            progress,
            wall_s=(perf_counter_ns() - start_ns) / 1e9,
            cpu_s=_cpu_seconds(cpu_start),
            experiments={o.name: {"wall_s": o.wall_s} for o in result.outcomes},
            echo=echo,
        )
    return result
