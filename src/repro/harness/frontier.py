"""The ``frontier`` experiment: closed-loop energy/fault Pareto search.

Where ``faultsweep`` measures fixed fault rates open-loop, this
strategy closes the loop: an
:class:`~repro.resilience.controller.ErrorBudgetController` per
workload searches the voltage ladder of
:mod:`repro.resilience.energy` for the most aggressive operating point
whose output error still fits the declared budget, degrading
gracefully (voltage stepped back up, or full precise fallback) when a
probe blows it. The result is the paper-level Pareto frontier: energy
saved vs. output error vs. survivable fault rate, per workload.

Workload searches are independent, so with ``--jobs N`` each round's
probes fan across worker processes
(:func:`~repro.harness.parallel.prefetch_pairs`); with a
``--checkpoint-dir`` every probe's simulation lands in the sweep
journal and every controller decision in an atomic per-workload state
file, so a SIGKILL'd search resumes mid-bracket with byte-identical
results. Controller decisions are traced as ``controller_step`` /
``controller_degrade`` / ``controller_converged`` events and the
frontier lands in per-workload gauges.

Tune with ``--error-budget`` / ``--voltage-steps`` on the CLI (they
arrive here through ``ctx.strategy_options``); see
``docs/robustness.md`` for the full algorithm.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.reporting import Table
from repro.harness.runner import (
    ConfigSpec,
    ExperimentContext,
    baseline_spec,
    dopp_spec,
)
from repro.harness.strategy import ExperimentStrategy, Requirements
from repro.resilience.controller import (
    ErrorBudgetController,
    FrontierOptions,
    FrontierResult,
    controller_state_dir,
)
from repro.resilience.energy import (
    VoltageStep,
    energy_saved_fraction,
    voltage_ladder,
)

#: The base Doppelgänger design point the frontier degrades (the
#: paper's 14-bit, quarter-data-array configuration).
BASE_MAP_BITS = 14
BASE_DATA_FRACTION = 0.25


def frontier_base_spec() -> ConfigSpec:
    """The fault-free design point every voltage step derives from."""
    return dopp_spec(BASE_MAP_BITS, BASE_DATA_FRACTION)


def _step_spec(step: VoltageStep, options: FrontierOptions) -> ConfigSpec:
    """The config probing one voltage step (nominal → fault-free)."""
    return frontier_base_spec().with_faults(
        step.fault_config(options.fault_seed, options.targets)
    )


def _build_controllers(
    ctx: ExperimentContext, options: FrontierOptions, ladder
) -> Dict[str, ErrorBudgetController]:
    """One controller per workload, resuming checkpointed searches."""
    from repro.resilience.checkpoint import context_fingerprint

    state_dir = controller_state_dir(getattr(ctx, "checkpoint_dir", None))
    return {
        name: ErrorBudgetController(
            name,
            ladder,
            options,
            state_dir=state_dir,
            context_meta=context_fingerprint(ctx),
            tracer=ctx.obs.tracer,
            event_log=getattr(ctx, "pending_events", None),
        )
        for name in ctx.names
    }


def _run_search(
    ctx: ExperimentContext, options: FrontierOptions, ladder
) -> List[FrontierResult]:
    """Drive every workload's search to completion, in lockstep rounds.

    Each round collects the pending probe of every unfinished
    controller; with ``ctx.jobs > 1`` the round's (workload, spec)
    pairs fan across worker processes before the controllers observe
    the results sequentially (deterministic order: ``ctx.names``).
    """
    controllers = _build_controllers(ctx, options, ladder)
    journal = getattr(ctx, "journal", None)
    while True:
        pending = [
            (name, step)
            for name in ctx.names
            if (step := controllers[name].pending_step()) is not None
        ]
        if not pending:
            break
        jobs = getattr(ctx, "jobs", 1)
        if jobs > 1:
            from repro.harness.parallel import prefetch_pairs

            pairs = [(name, _step_spec(step, options)) for name, step in pending]
            prefetch_pairs(
                ctx,
                run_pairs=pairs,
                error_pairs=pairs,
                jobs=jobs,
                timeout=getattr(ctx, "timeout", None),
                retries=getattr(ctx, "retries", 0),
                journal=journal,
            )
        for name, step in pending:
            spec = ctx.apply_faults(_step_spec(step, options))
            fresh_run = (name, spec) not in ctx._runs
            fresh_error = (name, spec) not in ctx._errors
            error = ctx.error(name, spec)
            record = ctx.run(name, spec)
            # The prefetch journals worker-computed pairs; journal the
            # sequentially-computed ones too so a killed single-job
            # search also resumes without re-simulating.
            if journal is not None and fresh_run:
                journal.record_run(name, spec, record)
            if journal is not None and fresh_error:
                journal.record_error(name, spec, error)
            controllers[name].observe(
                step.index,
                error=error,
                energy_saved=energy_saved_fraction(
                    record, step, ctx.energy_model
                ),
            )
    return [controllers[name].result() for name in ctx.names]


def frontier_pareto(ctx: ExperimentContext) -> Dict[str, Table]:
    """Run the frontier search and render its Pareto tables.

    The main table has one row per workload — the converged operating
    point (budget, frontier voltage, survivable fault rate, observed
    error, energy credit, recommended post-hysteresis voltage, search
    cost, outcome). The ``points`` sub-table lists every evaluated
    (workload, step) sample — the full Pareto point cloud behind the
    frontier rows.
    """
    options = FrontierOptions.from_mapping(
        getattr(ctx, "strategy_options", None)
    )
    ladder = voltage_ladder(options.voltage_steps, options.v_nom, options.v_min)
    results = _run_search(ctx, options, ladder)

    table = Table(
        "Frontier: max survivable fault rate within the error budget",
        [
            "workload", "budget", "frontier_vdd", "survivable_rate",
            "output_error", "energy_saved_%", "operating_vdd", "evals",
            "status",
        ],
    )
    for res in results:
        frontier_step = res.step(res.frontier)
        operating_step = res.step(res.operating)
        table.add_row(
            res.workload,
            options.error_budget,
            frontier_step.vdd if frontier_step is not None else None,
            f"{res.survivable_rate:.3g}",
            res.frontier_error,
            100.0 * res.frontier_energy_saved,
            operating_step.vdd if operating_step is not None else None,
            len(res.evals),
            res.status,
        )
    table.add_note(
        f"ladder: {len(ladder)} steps, "
        f"{ladder[0].vdd:g} V down to {ladder[-1].vdd:g} V; "
        f"hysteresis {options.hysteresis} step(s); "
        f"max {options.max_evals} evals/workload"
    )
    table.add_note(
        "status precise = even the fault-free approximate config "
        "missed the budget; the workload runs fully precise"
    )

    points = Table(
        "Frontier: evaluated Pareto points (energy saved vs output error)",
        [
            "workload", "step", "vdd", "read_rate", "output_error",
            "energy_saved_%", "verdict",
        ],
    )
    for res in results:
        for entry in sorted(res.evals, key=lambda e: e["step"]):
            step = res.ladder[entry["step"]]
            points.add_row(
                res.workload,
                step.index,
                step.vdd,
                f"{step.read_rate:.3g}",
                entry["error"],
                100.0 * entry["energy_saved"],
                entry["verdict"],
            )

    if ctx.obs.enabled:
        reg = ctx.obs.registry
        reg.gauge("experiment.frontier.workloads_converged").set(
            sum(1 for r in results if r.converged)
        )
        reg.gauge("experiment.frontier.evals_total").set(
            sum(len(r.evals) for r in results)
        )
        for res in results:
            prefix = f"experiment.frontier.{res.workload}"
            reg.gauge(f"{prefix}.survivable_rate").set(res.survivable_rate)
            reg.gauge(f"{prefix}.output_error").set(res.frontier_error)
            reg.gauge(f"{prefix}.energy_saved").set(res.frontier_energy_saved)

    return {"": table, "points": points}


class FrontierStrategy(ExperimentStrategy):
    """Closed-loop energy/fault frontier under an error budget."""

    name = "frontier"
    description = "closed-loop max survivable fault rate per error budget"
    requires = Requirements(
        run_specs=(baseline_spec(), frontier_base_spec()),
        error_specs=(frontier_base_spec(),),
    )

    def declare_metrics(self):
        """Gauges the driver pre-registers for this strategy."""
        return ("workloads_converged", "evals_total")

    def execute(self, ctx):
        """Delegate to :func:`frontier_pareto`."""
        return frontier_pareto(ctx)


#: What the global strategy registry discovers from this module.
STRATEGIES = (FrontierStrategy,)
