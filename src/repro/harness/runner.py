"""Simulation pipeline and result cache for the experiment drivers.

A :class:`ConfigSpec` names one LLC organization of the paper's sweeps
(baseline / split Doppelgänger / uniDoppelgänger with given map bits
and data-array fraction). :class:`ExperimentContext` owns the
workloads (instantiated once), their traces (generated once), and a
memoized ``run()`` so experiments that share configurations — e.g.
Fig. 10's runtime and Fig. 11's energy both need the 1/4-data-array
runs — simulate each (workload, config) pair exactly once.

Dataset scale and seed honour the ``REPRO_SCALE`` / ``REPRO_SEED``
environment variables so the benchmark suite can be sped up without
touching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from time import perf_counter_ns
from typing import Dict, List, Optional, Tuple

from repro.core.config import DoppelgangerConfig, UniDoppelgangerConfig
from repro.core.functional import BlockApproximator
from repro.core.maps import MapConfig
from repro.energy.accounting import EnergyModel, EnergyReport
from repro.errors import SimulationFault
from repro.hierarchy.llc import BaselineLLC, SplitDoppelgangerLLC, UnifiedDoppelgangerLLC
from repro.hierarchy.system import System, SystemConfig, SystemResult
from repro.obs import EVENT_ENGINE_FALLBACK, Observability, get_logger
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.workloads.registry import get_workload, workload_names


def _scaled_bytes(base: int, factor) -> int:
    """Scale a capacity, keeping at least 64 KB and power-of-two-ness."""
    return max(int(base * factor), 64 * 1024)


def _scaled_entries(base: int, factor) -> int:
    """Scale an entry count, keeping at least 1 K entries."""
    return max(int(base * factor), 1024)


def snap_pow2(scale: float) -> float:
    """Nearest power-of-two factor for a dataset scale (min 1/16)."""
    import math

    if scale >= 1.0:
        return 1.0
    return 2.0 ** max(round(math.log2(scale)), -4)


@dataclass(frozen=True)
class ConfigSpec:
    """One LLC organization in the design space.

    Attributes:
        kind: ``baseline``, ``dopp`` (split) or ``uni``.
        map_bits: map-space size M (ignored by the baseline).
        data_fraction: Doppelgänger data-array fraction — of the tag
            count for the split design, of the baseline block count for
            the unified design.
        faults: optional deterministic fault injection
            (:class:`~repro.resilience.faults.FaultConfig`); ``None``
            simulates fault-free hardware. Always set through
            :meth:`with_faults`, which drops configs that can never
            fault so a zero-rate sweep memoizes and labels exactly
            like a fault-free one.
    """

    kind: str = "baseline"
    map_bits: int = 14
    data_fraction: float = 0.25
    faults: Optional[FaultConfig] = None

    def with_faults(self, faults: Optional[FaultConfig]) -> "ConfigSpec":
        """Copy of this spec under ``faults``.

        An inactive config (every rate zero, no stuck bits, or no
        targets) normalizes to ``None`` — the acceptance criterion
        that a zero-rate fault sweep is bit-identical to one with
        faults disabled falls out of the resulting specs being equal.
        """
        if faults is not None and not faults.active:
            faults = None
        if faults == self.faults:
            return self
        return replace(self, faults=faults)

    def label(self) -> str:
        """Human-readable config name."""
        if self.kind == "baseline":
            base = "baseline-2MB"
        else:
            frac = f"1/{round(1 / self.data_fraction)}" if self.data_fraction <= 0.5 else "3/4"
            base = f"{self.kind}-{self.map_bits}bit-{frac}"
        if self.faults is not None:
            base += "+" + self.faults.label()
        return base

    def to_dict(self) -> dict:
        """JSON-friendly form (see ``docs/api.md``)."""
        out = {
            "kind": self.kind,
            "map_bits": self.map_bits,
            "data_fraction": self.data_fraction,
            "label": self.label(),
        }
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out

    def build_llc(self, regions, size_factor: int = 1):
        """Instantiate the LLC adapter for this spec.

        ``size_factor`` scales every structure (a power-of-two
        fraction/multiple of Table 1's sizes) so that reduced-scale
        datasets exercise the same capacity regimes.
        """
        if self.kind == "baseline":
            return BaselineLLC(
                size_bytes=_scaled_bytes(2 * 1024 * 1024, size_factor), regions=regions
            )
        if self.kind == "dopp":
            cfg = DoppelgangerConfig(
                tag_entries=_scaled_entries(16 * 1024, size_factor),
                data_fraction=self.data_fraction,
                map=MapConfig(self.map_bits),
            )
            return SplitDoppelgangerLLC(
                cfg,
                precise_bytes=_scaled_bytes(1024 * 1024, size_factor),
                regions=regions,
            )
        if self.kind == "uni":
            cfg = UniDoppelgangerConfig(
                tag_entries=_scaled_entries(32 * 1024, size_factor),
                data_fraction=self.data_fraction,
                map=MapConfig(self.map_bits),
            )
            return UnifiedDoppelgangerLLC(cfg, regions=regions)
        raise ValueError(f"unknown config kind {self.kind!r}")

    def approximator(self, size_factor: int = 1) -> Optional[BlockApproximator]:
        """Functional approximator matching this spec (None = precise).

        When the spec carries a fault config, the approximator gets its
        own :class:`~repro.resilience.faults.FaultInjector` so silent
        faults corrupt the values the application actually consumes
        (the output-error consequence of running approximate storage
        unprotected).
        """
        if self.kind == "baseline":
            return None
        if self.kind == "dopp":
            entries = int(_scaled_entries(16 * 1024, size_factor) * self.data_fraction)
        else:
            entries = int(_scaled_entries(32 * 1024, size_factor) * self.data_fraction)
        entries = max(entries, 256)
        faults = FaultInjector(self.faults) if self.faults is not None else None
        return BlockApproximator(
            MapConfig(self.map_bits), data_entries=entries, faults=faults
        )


def baseline_spec() -> ConfigSpec:
    """The conventional 2 MB LLC."""
    return ConfigSpec("baseline")


def dopp_spec(map_bits: int = 14, data_fraction: float = 0.25) -> ConfigSpec:
    """A split Doppelgänger configuration."""
    return ConfigSpec("dopp", map_bits, data_fraction)


def uni_spec(map_bits: int = 14, data_fraction: float = 0.5) -> ConfigSpec:
    """A unified Doppelgänger configuration."""
    return ConfigSpec("uni", map_bits, data_fraction)


@dataclass
class RunRecord:
    """One simulated (workload, config) result."""

    spec: ConfigSpec
    system: SystemResult
    energy: EnergyReport
    llc: object
    #: Simulation wall time (ns, ``perf_counter_ns``) and trace length,
    #: recorded so the BENCH summary can chart accesses/second.
    wall_ns: int = 0
    accesses: int = 0
    #: Fault-injection report (``FaultInjector.summary()``) when the
    #: spec carried a fault config, else None.
    faults: Optional[dict] = None
    #: Engine that produced the result when it differs from the one
    #: requested (the batched engine degraded to the reference).
    engine_used: Optional[str] = None
    #: Per-class fast/slow-path tallies published by the engine
    #: (``system.engine_stats``; see ``docs/engine.md``). None for
    #: records produced before this field existed (old checkpoints).
    engine_stats: Optional[dict] = None

    @property
    def cycles(self) -> int:
        """Runtime in cycles."""
        return self.system.cycles

    @property
    def accesses_per_sec(self) -> float:
        """Simulated trace accesses per wall-clock second."""
        return self.accesses / (self.wall_ns / 1e9) if self.wall_ns else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly form, nesting the unified result schemas.

        ``config``/``system``/``energy`` serialize through
        :meth:`ConfigSpec.to_dict`, ``SystemResult.to_dict`` and
        ``EnergyReport.to_dict`` respectively (see ``docs/api.md``).
        """
        out = {
            "config": self.spec.to_dict(),
            "system": self.system.to_dict(),
            "energy": self.energy.to_dict(),
            "sim_wall_s": self.wall_ns / 1e9,
            "accesses": self.accesses,
            "accesses_per_sec": self.accesses_per_sec,
        }
        if self.faults is not None:
            out["faults"] = self.faults
        if self.engine_used is not None:
            out["engine_used"] = self.engine_used
        # getattr: records unpickled from pre-engine_stats checkpoint
        # journals lack the attribute entirely.
        engine_stats = getattr(self, "engine_stats", None)
        if engine_stats is not None:
            out["engine_stats"] = engine_stats
        return out

    def summary_row(self, workload: str, error: Optional[float] = None) -> dict:
        """Flat BENCH run row for this record (one dict per run).

        The single serialization the ``BENCH_obs.json`` summary, the
        ``compare`` gate and the run-history store
        (:mod:`repro.obs.store`) all consume, so a row diffed from a
        file and one exported from the store are field-identical.
        """
        sysres = self.system
        row = {
            "workload": workload,
            "config": self.spec.label(),
            "sim_wall_s": self.wall_ns / 1e9,
            "accesses": self.accesses,
            "accesses_per_sec": self.accesses_per_sec,
            "cycles": sysres.cycles,
            "instructions": sysres.instructions,
            "llc_miss_rate": sysres.llc_miss_rate,
            "l1_hit_rate": sysres.l1_stats.hit_rate,
            "l2_hit_rate": sysres.l2_stats.hit_rate,
            "back_invalidations": sysres.back_invalidations,
            "coherence_invalidations": sysres.coherence_invalidations,
            "wb_stall_cycles": sysres.wb_stall_cycles,
            "traffic_bytes": sysres.traffic_bytes,
            "error": error,
        }
        if self.faults is not None:
            row["faults"] = self.faults
        if self.engine_used is not None:
            row["engine_used"] = self.engine_used
        # getattr: records resumed from pre-engine_stats checkpoint
        # journals lack the attribute entirely.
        engine_stats = getattr(self, "engine_stats", None)
        if engine_stats is not None:
            row["slow_path_fraction"] = engine_stats.get("slow_fraction")
            row["engine_stats"] = engine_stats
        return row


def run_trace(
    trace,
    spec: Optional[ConfigSpec] = None,
    *,
    engine: Optional[str] = None,
    size_factor: float = 1.0,
    energy_model: Optional[EnergyModel] = None,
    obs: Optional[Observability] = None,
) -> RunRecord:
    """Simulate a standalone trace (no workload registry entry).

    The front door for imported traces (:mod:`repro.ingest`) and traces
    loaded via :func:`repro.trace.io.load_trace`: builds the spec's LLC
    over the trace's own regions, runs the full system under the chosen
    engine, and returns the same :class:`RunRecord` shape the memoized
    workload pipeline produces — so replayed results serialize, compare
    and report identically.

    Raises:
        SimulationFault: the simulation failed (no cross-engine
            fallback here — callers replaying a trace pick the engine
            deliberately).
    """
    spec = spec if spec is not None else baseline_spec()
    obs = obs or Observability.disabled()
    llc = spec.build_llc(trace.regions, size_factor)
    injector = FaultInjector(spec.faults) if spec.faults is not None else None
    system = System(llc, tracer=obs.tracer, faults=injector)
    start_ns = perf_counter_ns()
    try:
        result = system.run(trace, engine=engine)
    except Exception as exc:
        raise SimulationFault(
            f"replay of trace {trace.name!r} failed under {spec.label()}: {exc}"
        ) from exc
    wall_ns = perf_counter_ns() - start_ns
    energy = (energy_model or EnergyModel()).dynamic_energy(
        llc, cycles=result.cycles
    )
    return RunRecord(
        spec=spec, system=result, energy=energy, llc=llc,
        wall_ns=wall_ns, accesses=len(trace),
        faults=injector.summary() if injector is not None else None,
        engine_stats=getattr(system, "engine_stats", None),
    )


def env_scale(default: float = 1.0) -> float:
    """Dataset scale from ``REPRO_SCALE`` (default 1.0)."""
    return float(os.environ.get("REPRO_SCALE", default))


def env_seed(default: int = 7) -> int:
    """Seed from ``REPRO_SEED``."""
    return int(os.environ.get("REPRO_SEED", default))


class ExperimentContext:
    """Shared state for a suite of experiments.

    Args:
        seed: data-generation seed.
        scale: dataset scale (``REPRO_SCALE`` overrides the default).
        workloads: benchmark subset (all nine by default).
        obs: optional :class:`~repro.obs.Observability` bundle; when
            given, every pipeline stage is phase-profiled, structure
            counters are published into its metrics registry, and
            protocol events flow to its tracer. Defaults to the inert
            bundle.
        engine: simulation engine name threaded into every
            :meth:`run` (``"batched"``, ``"reference"`` or ``None``
            for the :func:`repro.engine.get_engine` default).
        faults: context-wide default fault config, applied (via
            :meth:`apply_faults`) to every spec that does not already
            carry one. Inactive configs normalize to ``None``.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        workloads=None,
        obs: Optional[Observability] = None,
        engine: Optional[str] = None,
        faults: Optional[FaultConfig] = None,
    ):
        self.obs = obs or Observability.disabled()
        self.log = get_logger("harness.runner")
        self.engine = engine
        self.faults = faults if faults is not None and faults.active else None
        self.seed = env_seed() if seed is None else seed
        self.scale = env_scale() if scale is None else scale
        #: Structure sizes scale with the dataset (power-of-two snap)
        #: so reduced-scale runs exercise the same capacity regimes.
        self.size_factor = snap_pow2(self.scale)
        self.names = list(workloads) if workloads else workload_names()
        self._workloads: Dict[str, object] = {}
        self._traces: Dict[str, object] = {}
        self._runs: Dict[Tuple[str, ConfigSpec], RunRecord] = {}
        self._errors: Dict[Tuple[str, ConfigSpec], float] = {}
        self._precise_outputs: Dict[str, object] = {}
        self.energy_model = EnergyModel()
        #: Harness execution knobs the generic driver
        #: (:func:`repro.harness.strategy.run_strategies`) publishes so
        #: strategies that orchestrate their own fan-out (e.g. the
        #: frontier search) reuse them. Defaults describe a
        #: sequential, checkpoint-free, option-free run.
        self.jobs = 1
        self.timeout: Optional[float] = None
        self.retries = 0
        self.journal = None
        self.checkpoint_dir: Optional[str] = None
        self.strategy_options: Dict[str, object] = {}
        #: Optional :class:`~repro.harness.parallel.CancelToken` the
        #: driver publishes; long-running strategies should poll
        #: ``ctx.cancel.cancelled()`` to honour job cancellation.
        self.cancel = None
        #: Event dicts (each with a ``kind``) strategies queue for the
        #: run-history store — how controller decisions become
        #: queryable ``repro history`` rows even when live tracing is
        #: disabled. Flushed by the driver after the strategies run.
        self.pending_events: List[dict] = []

    # -------------------------------------------------------------- builders

    def workload(self, name: str):
        """Workload instance (built once)."""
        if name not in self._workloads:
            with self.obs.profiler.phase(f"workload/{name}"):
                self._workloads[name] = get_workload(
                    name, seed=self.seed, scale=self.scale
                )
        return self._workloads[name]

    def trace(self, name: str):
        """Workload trace (generated once)."""
        if name not in self._traces:
            self.log.info("generating trace for %s (scale %s)", name, self.scale)
            with self.obs.profiler.phase(f"trace/{name}"):
                self._traces[name] = self.workload(name).build_trace()
        return self._traces[name]

    def _system_config(self) -> SystemConfig:
        """Table 1 system with L2 capacity scaled alongside the LLC."""
        from repro.hierarchy.system import KB

        if self.size_factor >= 1.0:
            return SystemConfig()
        return SystemConfig(
            l2_bytes=max(int(128 * KB * self.size_factor), 32 * KB)
        )

    # ------------------------------------------------------------------ runs

    def apply_faults(self, spec: ConfigSpec) -> ConfigSpec:
        """Resolve the fault config a spec runs under.

        A spec that already carries faults keeps them; otherwise the
        context-wide default (``--faults`` on the CLI) applies. Called
        at the top of :meth:`run`/:meth:`error` so memo keys, labels
        and checkpoint digests all agree on the resolved spec.
        """
        if spec.faults is None and self.faults is not None:
            return spec.with_faults(self.faults)
        return spec

    def _simulate(self, name: str, spec: ConfigSpec, trace):
        """Build and run one system, degrading to the reference engine.

        Returns ``(result, llc, injector, engine_used, engine_stats)``.
        A batched
        failure rebuilds the hierarchy (the failed run mutated it) and
        replays under the reference interpreter, logged and traced as
        an ``engine_fallback`` event; if the reference fails too — or
        was the engine asked for — the error surfaces as a
        :class:`~repro.errors.SimulationFault` naming the (workload,
        config) pair.
        """
        label = spec.label()

        def build():
            """Assemble a fresh System around this spec's LLC."""
            llc = spec.build_llc(trace.regions, self.size_factor)
            injector = (
                FaultInjector(spec.faults) if spec.faults is not None else None
            )
            system = System(
                llc, config=self._system_config(), tracer=self.obs.tracer,
                faults=injector,
            )
            if self.obs.enabled:
                system.publish_metrics(self.obs.registry, f"sim.{name}.{label}")
            return llc, injector, system

        llc, injector, system = build()
        try:
            result = system.run(trace, engine=self.engine)
            return (
                result, llc, injector, None,
                getattr(system, "engine_stats", None),
            )
        except Exception as exc:
            if self.engine == "reference":
                raise SimulationFault(
                    f"reference engine failed for {name}/{label}: {exc}"
                ) from exc
            self.log.warning(
                "batched engine failed for %s/%s (%s); retrying with the "
                "reference engine", name, label, exc,
            )
            self.obs.tracer.emit(
                EVENT_ENGINE_FALLBACK,
                engine=self.engine or "batched", error=repr(exc),
                workload=name, config=label,
            )
        # The failed run left the hierarchy partially mutated: rebuild
        # from scratch (metrics sources re-register over the old ones).
        llc, injector, system = build()
        try:
            result = system.run(trace, engine="reference")
        except Exception as exc:
            raise SimulationFault(
                f"simulation failed under both engines for {name}/{label}: "
                f"{exc}"
            ) from exc
        return (
            result, llc, injector, "reference",
            getattr(system, "engine_stats", None),
        )

    def run(self, name: str, spec: ConfigSpec) -> RunRecord:
        """Simulate one (workload, config); memoized."""
        spec = self.apply_faults(spec)
        key = (name, spec)
        if key not in self._runs:
            trace = self.trace(name)
            label = spec.label()
            self.log.info("simulating %s under %s", name, label)
            with self.obs.profiler.phase(f"sim/{name}/{label}"):
                start_ns = perf_counter_ns()
                result, llc, injector, engine_used, engine_stats = (
                    self._simulate(name, spec, trace)
                )
                wall_ns = perf_counter_ns() - start_ns
            with self.obs.profiler.phase(f"energy/{name}/{label}"):
                energy = self.energy_model.dynamic_energy(llc, cycles=result.cycles)
            self._runs[key] = RunRecord(
                spec=spec, system=result, energy=energy, llc=llc,
                wall_ns=wall_ns, accesses=len(trace),
                faults=injector.summary() if injector is not None else None,
                engine_used=engine_used,
                engine_stats=engine_stats,
            )
        return self._runs[key]

    def error(self, name: str, spec: ConfigSpec) -> float:
        """Application output error under a config; memoized.

        Uses the functional Pin-style methodology: the full application
        runs with its approximate arrays routed through the functional
        Doppelgänger of the spec. The baseline error is 0 by
        definition (its hardware is fully ECC-protected, so even an
        injected fault never corrupts an output).
        """
        if spec.kind == "baseline":
            return 0.0
        spec = self.apply_faults(spec)
        key = (name, spec)
        if key not in self._errors:
            workload = self.workload(name)
            if name not in self._precise_outputs:
                # Evaluate against the canonical mid-run state: output
                # regions populated (idempotent — build_trace does the
                # same). Without this, the error depended on whether the
                # trace had been generated yet, and a --jobs prefetch
                # (trace first, in the worker) disagreed with the
                # sequential drivers (error table first).
                workload.refresh_outputs()
                with self.obs.profiler.phase(f"error/{name}/precise"):
                    self._precise_outputs[name] = workload.run(None)
            approximator = spec.approximator(self.size_factor)
            with self.obs.profiler.phase(f"error/{name}/{spec.label()}"):
                approx_out = workload.run(approximator)
            self._errors[key] = workload.error(self._precise_outputs[name], approx_out)
        return self._errors[key]

    def normalized_runtime(self, name: str, spec: ConfigSpec) -> float:
        """Runtime relative to the baseline LLC (Figs. 9b, 10b, 14b)."""
        base = self.run(name, baseline_spec()).cycles
        this = self.run(name, spec).cycles
        return this / base if base else 0.0

    def normalized_traffic(self, name: str, spec: ConfigSpec) -> float:
        """Off-chip traffic relative to the baseline LLC (Fig. 12)."""
        base = self.run(name, baseline_spec()).system.traffic_bytes
        this = self.run(name, spec).system.traffic_bytes
        return this / base if base else 0.0

    def dynamic_energy_reduction(self, name: str, spec: ConfigSpec) -> float:
        """Baseline LLC dynamic energy over this config's (Figs. 11a, 14c)."""
        base = self.run(name, baseline_spec()).energy.dynamic_pj
        this = self.run(name, spec).energy.dynamic_pj
        return base / this if this else 0.0

    def leakage_energy_reduction(self, name: str, spec: ConfigSpec) -> float:
        """Baseline LLC leakage energy over this config's (Fig. 11b).

        Leakage energy = leakage power x runtime, so the ratio folds in
        both area and the (small) runtime change.
        """
        base_rec = self.run(name, baseline_spec())
        this_rec = self.run(name, spec)
        base = base_rec.energy.leakage_mw * base_rec.cycles
        this = this_rec.energy.leakage_mw * this_rec.cycles
        return base / this if this else 0.0

    # ----------------------------------------------------------- summaries

    def run_summaries(self) -> List[dict]:
        """One BENCH-summary dict per simulated (workload, config).

        Feeds ``results/json/BENCH_obs.json`` so the performance
        trajectory (sim wall time, accesses/sec, hit rates, error)
        is chartable across PRs. Rows are sorted by (workload, config)
        so a parallel ``--jobs`` prefetch and a sequential run emit
        byte-identical summaries.
        """
        items = sorted(
            self._runs.items(), key=lambda kv: (kv[0][0], kv[0][1].label())
        )
        return [
            rec.summary_row(name, error=self._errors.get((name, spec)))
            for (name, spec), rec in items
        ]

    def run_records(self) -> Dict[Tuple[str, str], dict]:
        """Full nested ``RunRecord.to_dict()`` per (workload, config label).

        The run-history store (:mod:`repro.obs.store`) persists these
        alongside the flat summary rows so ``history export`` can
        reconstruct everything a run knew, not just the BENCH columns.
        """
        return {
            (name, spec.label()): rec.to_dict()
            for (name, spec), rec in self._runs.items()
        }

    def context_summary(self) -> dict:
        """The knobs that shaped this context (for the BENCH summary)."""
        return {
            "seed": self.seed,
            "scale": self.scale,
            "size_factor": self.size_factor,
            "workloads": list(self.names),
            "engine": self.engine or "batched",
            "faults": self.faults.to_dict() if self.faults is not None else None,
        }
