"""Plain-text tables for experiment output.

Every experiment driver returns a :class:`Table`; the benchmark suite
prints it (so ``pytest benchmarks/ -s`` regenerates the paper's rows)
and writes it under ``results/``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


class Table:
    """A titled table with aligned text rendering.

    Args:
        title: table caption (e.g. ``"Fig. 9a: output error"``).
        headers: column names; the first column is left-aligned.
        precision: decimal places for float cells.
    """

    def __init__(self, title: str, headers: Sequence[str], precision: int = 3):
        self.title = title
        self.headers = list(headers)
        self.precision = precision
        self.rows: List[List[Cell]] = []
        self.notes: List[str] = []

    def add_row(self, *cells: Cell) -> None:
        """Append one row; cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote line."""
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        """All values of a named column."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def row_map(self, key_column: int = 0) -> dict:
        """Rows keyed by one column's value."""
        return {row[key_column]: row for row in self.rows}

    def render(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[_format_cell(c, self.precision) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(parts: Iterable[str]) -> str:
            """Pad one row: first column left-aligned, the rest right."""
            out = []
            for i, part in enumerate(parts):
                if i == 0:
                    out.append(part.ljust(widths[i]))
                else:
                    out.append(part.rjust(widths[i]))
            return "  ".join(out)

        lines = [self.title, "=" * len(self.title)]
        lines.append(fmt_row(self.headers))
        lines.append(fmt_row("-" * w for w in widths))
        lines.extend(fmt_row(row) for row in cells)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_bars(self, width: int = 44, max_value: Optional[float] = None) -> str:
        """ASCII grouped-bar rendering — the paper's figures as text.

        Each row becomes a group; each numeric column a bar scaled to
        the table's maximum (or ``max_value``).
        """
        numeric_cols = [
            i
            for i in range(1, len(self.headers))
            if any(isinstance(row[i], (int, float)) for row in self.rows)
        ]
        if not numeric_cols:
            return self.render()
        peak = max_value
        if peak is None:
            peak = max(
                (abs(row[i]) for row in self.rows for i in numeric_cols
                 if isinstance(row[i], (int, float))),
                default=1.0,
            )
        peak = peak or 1.0
        label_w = max(
            [len(str(row[0])) for row in self.rows]
            + [len(self.headers[i]) for i in numeric_cols]
        )
        lines = [self.title, "=" * len(self.title)]
        for row in self.rows:
            lines.append(str(row[0]))
            for i in numeric_cols:
                cell = row[i]
                if not isinstance(cell, (int, float)):
                    continue
                filled = int(round(abs(cell) / peak * width))
                bar = "#" * filled
                lines.append(
                    f"  {self.headers[i]:>{label_w}} |{bar:<{width}}| "
                    f"{_format_cell(cell, self.precision)}"
                )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-friendly representation (round-trips via :meth:`from_dict`)."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "precision": self.precision,
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    #: Unified serialization name shared with ``SystemResult``,
    #: ``EnergyReport``, ``ConfigSpec`` and ``RunRecord`` (docs/api.md).
    to_dict = as_dict

    @classmethod
    def from_dict(cls, data: dict) -> "Table":
        """Rebuild a table serialized by :meth:`as_dict`."""
        table = cls(data["title"], data["headers"], data.get("precision", 3))
        for row in data.get("rows", []):
            table.add_row(*row)
        for note in data.get("notes", []):
            table.add_note(note)
        return table

    def save_json(self, directory: str = "results/json", filename: Optional[str] = None) -> str:
        """Write :meth:`as_dict` as JSON under ``directory``; returns path."""
        os.makedirs(directory, exist_ok=True)
        if filename is None:
            slug = "".join(
                ch if ch.isalnum() else "_" for ch in self.title.lower()
            ).strip("_")
            filename = f"{slug[:60]}.json"
        path = os.path.join(directory, filename)
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, default=str)
            fh.write("\n")
        return path

    def save(self, directory: str = "results", filename: Optional[str] = None) -> str:
        """Write the rendering to ``directory/filename``; returns path."""
        os.makedirs(directory, exist_ok=True)
        if filename is None:
            slug = "".join(
                ch if ch.isalnum() else "_" for ch in self.title.lower()
            ).strip("_")
            filename = f"{slug[:60]}.txt"
        path = os.path.join(directory, filename)
        with open(path, "w") as fh:
            fh.write(self.render() + "\n")
        return path

    def __str__(self) -> str:
        return self.render()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate for ratios)."""
    vals = [v for v in values if v is not None]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    log_sum = sum(math.log(v) for v in vals)
    return math.exp(log_sum / len(vals))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average, ignoring missing cells."""
    vals = [v for v in values if v is not None]
    return sum(vals) / len(vals) if vals else 0.0
