"""Event-based energy accounting for a simulated run.

Combines the structural model (:mod:`repro.energy.cacti`) with the
event counts an LLC adapter reports via ``energy_events()``:

* **Dynamic energy** = Σ over structures of (tag accesses × tag energy
  + data accesses × data energy) + map generations × 168 pJ.
* **Leakage energy** = leakage power × runtime. Because every
  comparison in the paper is a *reduction ratio* at equal wall-clock
  baselines, reductions are computed from leakage power and the two
  runs' cycle counts.

The map-generation energy follows Sec. 5.6 exactly: 21 floating-point
multiply-add operations at 8 pJ each (Galal et al. FPU generator), so
168 pJ per generated map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.energy.cacti import CactiModel
from repro.energy.structures import (
    CacheStructure,
    baseline_llc_structure,
    doppelganger_structures,
    l1_structure,
    l2_structure,
    unidoppelganger_structures,
)

#: Sec. 5.6: 21 FP multiply-add ops x 8 pJ per op.
MAP_GENERATION_PJ = 21 * 8.0


@dataclass
class EnergyReport:
    """Energy summary of one simulated run.

    Attributes:
        dynamic_pj: total LLC dynamic energy in picojoules.
        leakage_mw: LLC leakage power in milliwatts.
        area_mm2: total LLC area.
        breakdown: per-(structure, port) dynamic energy in pJ.
        cycles: runtime used for leakage energy.
    """

    dynamic_pj: float
    leakage_mw: float
    area_mm2: float
    breakdown: Dict[tuple, float]
    cycles: int = 0
    frequency_ghz: float = 1.0

    @property
    def leakage_energy_pj(self) -> float:
        """Leakage energy over the run (power x time)."""
        seconds = self.cycles / (self.frequency_ghz * 1e9)
        return self.leakage_mw * 1e-3 * seconds * 1e12

    @property
    def total_pj(self) -> float:
        """Dynamic plus leakage energy."""
        return self.dynamic_pj + self.leakage_energy_pj

    def to_dict(self) -> dict:
        """JSON-friendly form (the ``energy`` object of ``docs/api.md``)."""
        return {
            "dynamic_pj": self.dynamic_pj,
            "leakage_mw": self.leakage_mw,
            "leakage_energy_pj": self.leakage_energy_pj,
            "total_pj": self.total_pj,
            "area_mm2": self.area_mm2,
            "cycles": self.cycles,
            "frequency_ghz": self.frequency_ghz,
            "breakdown": {
                "/".join(map(str, key)): round(val, 3)
                for key, val in sorted(self.breakdown.items())
            },
        }


class EnergyModel:
    """Maps LLC event counts to energy and area.

    Args:
        cacti: structural model (a fresh calibrated model by default).
    """

    def __init__(self, cacti: Optional[CactiModel] = None):
        self.cacti = cacti or CactiModel()

    # -------------------------------------------------------- configurations

    def structures_for(self, llc) -> Dict[str, CacheStructure]:
        """Physical structures of an LLC adapter instance."""
        name = getattr(llc, "name", "baseline")
        if name == "baseline":
            from repro.energy.structures import conventional_structure

            size = getattr(getattr(llc, "cache", None), "size_bytes", 2 * 1024 * 1024)
            return {"baseline_llc": conventional_structure("baseline_llc", size)}
        if name == "doppelganger":
            cfg = llc.config
            return doppelganger_structures(
                tag_entries=cfg.tag_entries,
                data_fraction=cfg.data_fraction,
                ways=cfg.data_ways,
                map_bits=cfg.map.bits,
                precise_bytes=llc.precise.size_bytes,
            )
        if name == "unidoppelganger":
            cfg = llc.config
            return unidoppelganger_structures(
                tag_entries=cfg.tag_entries,
                data_fraction=cfg.data_fraction,
                ways=cfg.data_ways,
                map_bits=cfg.map.bits,
            )
        raise ValueError(f"unknown LLC organization {name!r}")

    # ------------------------------------------------------------- accounting

    def dynamic_energy(self, llc, cycles: int = 0) -> EnergyReport:
        """Energy report for a finished run of ``llc``."""
        structures = self.structures_for(llc)
        events = llc.energy_events()
        breakdown: Dict[tuple, float] = {}
        total = 0.0
        for (struct_name, port), count in events.items():
            if struct_name == "map_generation":
                energy = count * MAP_GENERATION_PJ
            else:
                structure = structures[struct_name]
                if port == "tag":
                    energy = count * self.cacti.tag_energy_pj(structure)
                elif port == "data":
                    energy = count * self.cacti.data_energy_pj(structure)
                else:
                    raise ValueError(f"unknown port {port!r}")
            breakdown[(struct_name, port)] = energy
            total += energy
        area = sum(self.cacti.area_mm2(s) for s in structures.values())
        leakage = self.cacti.leakage_mw_total(structures.values())
        return EnergyReport(
            dynamic_pj=total,
            leakage_mw=leakage,
            area_mm2=area,
            breakdown=breakdown,
            cycles=cycles,
        )

    def llc_area_mm2(self, llc) -> float:
        """Total LLC area of an adapter's configuration."""
        return sum(self.cacti.area_mm2(s) for s in self.structures_for(llc).values())

    def hierarchy_area_mm2(self, llc, num_cores: int = 4) -> float:
        """LLC area plus the private L1/L2 areas of ``num_cores`` cores."""
        private = num_cores * (
            self.cacti.area_mm2(l1_structure()) + self.cacti.area_mm2(l2_structure())
        )
        return self.llc_area_mm2(llc) + private

    def private_dynamic_pj(self, l1_stats, l2_stats) -> float:
        """Dynamic energy of the private caches (for hierarchy totals)."""
        l1 = l1_structure()
        l2 = l2_structure()
        e = l1_stats.tag_lookups * self.cacti.tag_energy_pj(l1)
        e += (l1_stats.data_reads + l1_stats.data_writes) * self.cacti.data_energy_pj(l1)
        e += l2_stats.tag_lookups * self.cacti.tag_energy_pj(l2)
        e += (l2_stats.data_reads + l2_stats.data_writes) * self.cacti.data_energy_pj(l2)
        return e
