"""Analytical CACTI-like model calibrated against Table 3.

CACTI 5.1 itself is a large C++ tool; the paper publishes its outputs
for the six structures of interest (Table 3), which we use as
calibration points. The model fits log-log power laws:

* data access energy / latency vs. data capacity (the published points
  are within a few percent of a clean power law);
* tag access energy / latency vs. total tag-array bits (width × ways ×
  sets) — the Doppelgänger tag array is small but *wide* (77-bit
  entries, 16 ways read in parallel), which is why its access energy
  exceeds the baseline's, and the total-bits predictor captures that;
* area vs. total storage bits;
* leakage power vs. area, with a fixed periphery offset chosen to
  bracket the paper's leakage-reduction results.

Fits happen once at import time from ``TABLE3_PUBLISHED``; tests
validate every published point against the model within tolerance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.energy.structures import (
    CacheStructure,
    TABLE3_PUBLISHED,
    baseline_llc_structure,
    doppelganger_structures,
    unidoppelganger_structures,
)


def _power_fit(xs, ys) -> Tuple[float, float]:
    """Least-squares fit of ``y = a * x**b`` in log space."""
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    b, log_a = np.polyfit(lx, ly, 1)
    return float(np.exp(log_a)), float(b)


def _calibration_structures() -> dict:
    structs = {"baseline_llc": baseline_llc_structure()}
    structs.update(doppelganger_structures())
    structs.update(unidoppelganger_structures())
    return structs


class CactiModel:
    """Power-law area/latency/energy model at the paper's 32 nm node.

    All public methods take a :class:`CacheStructure`. Quantities:

    * :meth:`area_mm2` — silicon area.
    * :meth:`tag_energy_pj` / :meth:`tag_latency_ns` — one tag-array
      access (all ways in parallel).
    * :meth:`data_energy_pj` / :meth:`data_latency_ns` — one data-array
      access (one block read/write); None-equivalent 0.0 for tag-only
      structures.
    * :meth:`leakage_mw` — static power, linear in area plus a fixed
      periphery term.
    """

    #: Periphery offset (mm^2-equivalent) for the leakage model. Chosen
    #: between the two constraints the paper's results imply (see
    #: DESIGN.md): the split design's 1.41x and the unified design's
    #: 2.60x leakage reductions bracket offsets of ~1.2 and ~0.45.
    LEAKAGE_AREA_OFFSET_MM2 = 0.8
    #: Leakage power per mm^2 at 32 nm (typical SRAM figure ~50-100
    #: mW/mm^2; the constant cancels in every reduction ratio).
    LEAKAGE_MW_PER_MM2 = 60.0

    def __init__(self):
        structs = _calibration_structures()
        tag_bits, tag_pj, tag_ns = [], [], []
        data_kb, data_pj, data_ns = [], [], []
        total_kb, area = [], []
        for name, (kb, mm2, t_ns, d_ns, t_pj, d_pj) in TABLE3_PUBLISHED.items():
            s = structs[name]
            total_kb.append(s.total_kb)
            area.append(mm2)
            tag_bits.append(s.tag_bits_total)
            tag_pj.append(t_pj)
            tag_ns.append(t_ns)
            if d_pj is not None:
                data_kb.append(s.data_kb)
                data_pj.append(d_pj)
                data_ns.append(d_ns)
        self._area_fit = _power_fit(total_kb, area)
        self._tag_e_fit = _power_fit(tag_bits, tag_pj)
        self._tag_l_fit = _power_fit(tag_bits, tag_ns)
        self._data_e_fit = _power_fit(data_kb, data_pj)
        self._data_l_fit = _power_fit(data_kb, data_ns)

    @staticmethod
    def _eval(fit: Tuple[float, float], x: float) -> float:
        a, b = fit
        return a * x**b

    # -------------------------------------------------------------- queries

    def area_mm2(self, structure: CacheStructure) -> float:
        """Silicon area of the structure."""
        return self._eval(self._area_fit, structure.total_kb)

    def tag_energy_pj(self, structure: CacheStructure) -> float:
        """Energy of one tag-array access."""
        return self._eval(self._tag_e_fit, structure.tag_bits_total)

    def tag_latency_ns(self, structure: CacheStructure) -> float:
        """Latency of one tag-array access."""
        return self._eval(self._tag_l_fit, structure.tag_bits_total)

    def data_energy_pj(self, structure: CacheStructure) -> float:
        """Energy of one data-array access (0 for tag-only arrays)."""
        if not structure.has_data:
            return 0.0
        return self._eval(self._data_e_fit, structure.data_kb)

    def data_latency_ns(self, structure: CacheStructure) -> float:
        """Latency of one data-array access (0 for tag-only arrays)."""
        if not structure.has_data:
            return 0.0
        return self._eval(self._data_l_fit, structure.data_kb)

    def leakage_mw(self, structure: CacheStructure) -> float:
        """Static leakage power of the structure."""
        return self.LEAKAGE_MW_PER_MM2 * (
            self.area_mm2(structure) + self.LEAKAGE_AREA_OFFSET_MM2
        )

    def leakage_mw_total(self, structures) -> float:
        """Leakage of a set of structures sharing one periphery."""
        area = sum(self.area_mm2(s) for s in structures)
        return self.LEAKAGE_MW_PER_MM2 * (area + self.LEAKAGE_AREA_OFFSET_MM2)

    # ----------------------------------------------------------- validation

    def published(self, name: str) -> Optional[tuple]:
        """Published Table 3 row for a structure name, if any."""
        return TABLE3_PUBLISHED.get(name)
