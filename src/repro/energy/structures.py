"""Physical cache structures and their Table 3 bit-level accounting.

Every structure in the evaluated systems is described by a
:class:`CacheStructure`: its geometry, the width of one tag entry
broken into the same fields Table 3 lists (tag, coherence, full-map
vector, replacement, tag pointers, map, precise bit), and its data
entry width. Total sizes in KB follow directly and match the published
table bit-for-bit; area/latency/energy come from the calibrated
:class:`~repro.energy.cacti.CactiModel`.

Address-space assumptions follow Sec. 5.6: 32-bit physical addresses,
64-byte blocks, 16-way arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

ADDRESS_BITS = 32
BLOCK_BITS = 512
COHERENCE_BITS = 4
FULLMAP_BITS = 4
REPLACEMENT_BITS = 4


def _log2(n: int) -> int:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"expected a positive power of two, got {n}")
    return n.bit_length() - 1


@dataclass(frozen=True)
class CacheStructure:
    """One physical array (tag or tag+data) of the LLC.

    Attributes:
        name: identifier used by the energy accounting.
        sets / ways: geometry.
        tag_entry_bits: width of one tag (or MTag) entry.
        data_entry_bits: width of one data entry (0 for tag-only
            arrays such as the Doppelgänger tag array).
        fields: named breakdown of the tag entry, as in Table 3.
    """

    name: str
    sets: int
    ways: int
    tag_entry_bits: int
    data_entry_bits: int = 0
    fields: Dict[str, int] = field(default_factory=dict)

    @property
    def entries(self) -> int:
        """Total entries."""
        return self.sets * self.ways

    @property
    def tag_bits_total(self) -> int:
        """Total tag-array bits."""
        return self.entries * self.tag_entry_bits

    @property
    def data_bits_total(self) -> int:
        """Total data-array bits."""
        return self.entries * self.data_entry_bits

    @property
    def total_kb(self) -> float:
        """Total storage in KB (tag + data), as Table 3 reports."""
        return (self.tag_bits_total + self.data_bits_total) / 8 / 1024

    @property
    def data_kb(self) -> float:
        """Data storage alone in KB."""
        return self.data_bits_total / 8 / 1024

    @property
    def has_data(self) -> bool:
        """Whether the structure includes a data array."""
        return self.data_entry_bits > 0


def _addr_tag_bits(sets: int, block_size: int = 64) -> int:
    """Address tag width for a conventional array."""
    return ADDRESS_BITS - _log2(sets) - _log2(block_size)


def conventional_structure(name: str, size_bytes: int, ways: int = 16) -> CacheStructure:
    """A conventional cache: tag + state + data per entry."""
    entries = size_bytes // 64
    sets = entries // ways
    tag = _addr_tag_bits(sets)
    fields = {
        "tag": tag,
        "coherence": COHERENCE_BITS,
        "full_map_vector": FULLMAP_BITS,
        "replacement": REPLACEMENT_BITS,
    }
    return CacheStructure(
        name=name,
        sets=sets,
        ways=ways,
        tag_entry_bits=sum(fields.values()),
        data_entry_bits=BLOCK_BITS,
        fields=fields,
    )


def baseline_llc_structure() -> CacheStructure:
    """The 2 MB baseline LLC (Table 3 column 1: 27-bit tag entries)."""
    return conventional_structure("baseline_llc", 2 * 1024 * 1024)


def precise_structure(size_bytes: int = 1024 * 1024) -> CacheStructure:
    """The split design's precise cache (28-bit tag entries at 1 MB)."""
    return conventional_structure("precise_1mb", size_bytes)


def l1_structure() -> CacheStructure:
    """Private L1 (16 KB, 4-way)."""
    return conventional_structure("l1", 16 * 1024, ways=4)


def l2_structure() -> CacheStructure:
    """Private L2 (128 KB, 8-way)."""
    return conventional_structure("l2", 128 * 1024, ways=8)


def doppelganger_structures(
    tag_entries: int = 16 * 1024,
    data_fraction: float = 0.25,
    ways: int = 16,
    map_bits: int = 14,
    precise_bytes: int = 1024 * 1024,
) -> Dict[str, CacheStructure]:
    """The three structures of the split design (Table 3 columns 2-4).

    Returns precise cache, Doppelgänger tag array and Doppelgänger
    MTag+data array, with the exact Table 3 field widths: the tag entry
    carries two tag pointers of ``log2(tag_entries)`` bits and a map of
    ``map_bits + ceil(map_bits/2)`` bits; the MTag entry carries the
    map tag, replacement bits and one tag pointer.
    """
    tag_sets = tag_entries // ways
    data_entries = int(tag_entries * data_fraction)
    data_sets = data_entries // ways
    ptr_bits = _log2(tag_entries)
    map_total = map_bits + math.ceil(map_bits / 2)

    tag_fields = {
        "tag": _addr_tag_bits(tag_sets),
        "coherence": COHERENCE_BITS,
        "full_map_vector": FULLMAP_BITS,
        "replacement": REPLACEMENT_BITS,
        "tag_pointers": 2 * ptr_bits,
        "map": map_total,
    }
    # Map tag: Table 3 charges the MTag with the full two-hash map
    # (2M bits: average + range) minus the data-array index bits —
    # 20 bits for the base 14-bit map and 256-set data array.
    map_tag_bits = max(2 * map_bits - _log2(data_sets), 1)
    mtag_fields = {
        "tag": map_tag_bits,
        "replacement": REPLACEMENT_BITS,
        "tag_pointers": ptr_bits,
    }
    return {
        "precise_1mb": precise_structure(precise_bytes),
        "dopp_tag": CacheStructure(
            name="dopp_tag",
            sets=tag_sets,
            ways=ways,
            tag_entry_bits=sum(tag_fields.values()),
            data_entry_bits=0,
            fields=tag_fields,
        ),
        "dopp_data": CacheStructure(
            name="dopp_data",
            sets=data_sets,
            ways=ways,
            tag_entry_bits=sum(mtag_fields.values()),
            data_entry_bits=BLOCK_BITS,
            fields=mtag_fields,
        ),
    }


def unidoppelganger_structures(
    tag_entries: int = 32 * 1024,
    data_fraction: float = 0.5,
    ways: int = 16,
    map_bits: int = 14,
) -> Dict[str, CacheStructure]:
    """The two structures of the unified design (Table 3 columns 5-6)."""
    tag_sets = tag_entries // ways
    data_entries = int(tag_entries * data_fraction)
    data_sets = data_entries // ways
    ptr_bits = _log2(tag_entries)
    map_total = map_bits + math.ceil(map_bits / 2)

    tag_fields = {
        "tag": _addr_tag_bits(tag_sets),
        "coherence": COHERENCE_BITS,
        "full_map_vector": FULLMAP_BITS,
        "replacement": REPLACEMENT_BITS,
        "tag_pointers": 2 * ptr_bits,
        "map": map_total,
        "precise": 1,
    }
    # Power-of-two guard: the 3/4 data array has a non-pow2 set count;
    # use the next lower power of two for index-bit accounting only.
    index_bits = max(data_sets.bit_length() - 1, 1)
    mtag_fields = {
        "tag": max(2 * map_bits - index_bits, 1),
        "replacement": REPLACEMENT_BITS,
        "tag_pointers": ptr_bits,
        "precise": 1,
    }
    return {
        "uni_tag": CacheStructure(
            name="uni_tag",
            sets=tag_sets,
            ways=ways,
            tag_entry_bits=sum(tag_fields.values()),
            data_entry_bits=0,
            fields=tag_fields,
        ),
        "uni_data": CacheStructure(
            name="uni_data",
            sets=data_sets,
            ways=ways,
            tag_entry_bits=sum(mtag_fields.values()),
            data_entry_bits=BLOCK_BITS,
            fields=mtag_fields,
        ),
    }


#: Published Table 3 values for validating the analytical model:
#: name -> (total KB, area mm^2, tag ns, data ns, tag pJ, data pJ).
TABLE3_PUBLISHED = {
    "baseline_llc": (2156.0, 4.12, 0.61, 1.27, 24.8, 667.4),
    "precise_1mb": (1080.0, 1.91, 0.45, 1.07, 13.5, 322.7),
    "dopp_tag": (154.0, 0.19, 0.48, None, 30.8, None),
    "dopp_data": (275.0, 0.47, 0.30, 0.67, 6.3, 80.3),
    "uni_tag": (316.0, 0.40, 0.74, None, 61.3, None),
    "uni_data": (1100.0, 1.95, 0.51, 1.07, 18.7, 322.7),
}

BASELINE_LLC = baseline_llc_structure()
