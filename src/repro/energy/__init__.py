"""Area, latency and energy modelling (the CACTI substitute).

The paper uses CACTI 5.1 at 32 nm for all area/latency/energy numbers
and publishes its outputs for six structures in Table 3. We reproduce
that table exactly where the bit-level accounting is deterministic
(entry widths, total sizes) and provide an analytical model —
calibrated against the published CACTI outputs — for the quantities
CACTI computes (area, access latency, access energy, leakage) at
configurations the paper does not publish (e.g. the 1/2 and 1/8 data
arrays of the sweeps).

Map generation energy follows Sec. 5.6: 21 floating-point multiply-add
operations at 8 pJ each = 168 pJ per map.
"""

from repro.energy.cacti import CactiModel
from repro.energy.structures import (
    BASELINE_LLC,
    CacheStructure,
    TABLE3_PUBLISHED,
    baseline_llc_structure,
    doppelganger_structures,
    l1_structure,
    l2_structure,
    unidoppelganger_structures,
)
from repro.energy.accounting import EnergyModel, EnergyReport, MAP_GENERATION_PJ

__all__ = [
    "BASELINE_LLC",
    "CacheStructure",
    "CactiModel",
    "EnergyModel",
    "EnergyReport",
    "MAP_GENERATION_PJ",
    "TABLE3_PUBLISHED",
    "baseline_llc_structure",
    "doppelganger_structures",
    "l1_structure",
    "l2_structure",
    "unidoppelganger_structures",
]
