"""Statistics collected by every cache model.

One :class:`CacheStats` instance is attached to each cache structure.
Counters are plain integers; derived ratios are provided as properties so
that harness code never divides by zero by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CacheStats:
    """Event counters for a single cache structure.

    Attributes follow conventional simulator naming. ``tag_lookups`` and
    ``data_accesses`` are tracked separately because the energy model
    (Table 3) charges tag-array and data-array accesses differently, and
    the Doppelgänger lookup performs *two* tag lookups (tag array then
    MTag array) per hit.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills: int = 0
    invalidations: int = 0
    back_invalidations: int = 0
    tag_lookups: int = 0
    data_reads: int = 0
    data_writes: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Hits over accesses; 0.0 when the cache was never touched."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses over accesses; 0.0 when the cache was never touched."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new stats object with counters summed element-wise."""
        merged = CacheStats()
        for f in fields(CacheStats):
            if f.name == "extra":
                continue
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0) + other.extra.get(key, 0)
        return merged

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(CacheStats):
            if f.name == "extra":
                continue
            setattr(self, f.name, 0)
        self.extra.clear()

    def as_dict(self) -> dict:
        """Counters as a plain dict (for reporting)."""
        out = {f.name: getattr(self, f.name) for f in fields(CacheStats) if f.name != "extra"}
        out.update(self.extra)
        return out

    def publish(self, registry, prefix: str) -> None:
        """Register these counters as a lazily-collected metrics source.

        The registry re-reads ``as_dict()`` at collection time, so
        publishing costs nothing during simulation (see
        :mod:`repro.obs.metrics`).
        """
        registry.register_source(prefix, self.as_dict)
