"""Replacement policies for set-associative structures.

The paper uses LRU in every array (Sec. 3.5) but explicitly calls the
study of specialized replacement a future-work item, so the substrate
ships several policies; the ablation bench
``benchmarks/test_ablation_replacement.py`` exercises them.

A policy instance manages a single cache *set* of ``ways`` ways. The
cache tells the policy when a way is touched, filled or invalidated, and
asks it for a victim way when the set is full.
"""

from __future__ import annotations

import random
from typing import Optional


class ReplacementPolicy:
    """Interface for per-set replacement bookkeeping.

    Ways are identified by their index in ``range(ways)``. The owning
    cache guarantees that :meth:`victim` is only called when no invalid
    way exists (callers prefer invalid ways as fill targets).
    """

    name = "base"

    def __init__(self, ways: int):
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways

    def on_access(self, way: int) -> None:
        """A hit touched ``way``."""
        raise NotImplementedError

    def on_fill(self, way: int) -> None:
        """A new block was installed in ``way``."""
        raise NotImplementedError

    def on_invalidate(self, way: int) -> None:
        """``way`` was invalidated and is now free."""

    def victim(self) -> int:
        """Pick the way to evict from a full set."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used order, the paper's policy for all arrays."""

    name = "lru"

    def __init__(self, ways: int):
        super().__init__(ways)
        # Insertion-ordered dict, most-recent last: re-inserting a key
        # moves it to the end in O(1), where a list's remove() walks the
        # set. Starts in way order so that victims of a never-touched
        # set are deterministic.
        self._order = dict.fromkeys(range(ways))

    def on_access(self, way: int) -> None:
        order = self._order
        del order[way]
        order[way] = None

    def on_fill(self, way: int) -> None:
        order = self._order
        del order[way]
        order[way] = None

    def victim(self) -> int:
        return next(iter(self._order))

    def recency_order(self) -> list:
        """Ways ordered least- to most-recently used (for tests)."""
        return list(self._order)


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: eviction order follows fill order."""

    name = "fifo"

    def __init__(self, ways: int):
        super().__init__(ways)
        self._queue = dict.fromkeys(range(ways))

    def on_access(self, way: int) -> None:
        # FIFO ignores hits.
        pass

    def on_fill(self, way: int) -> None:
        queue = self._queue
        queue.pop(way, None)
        queue[way] = None

    def victim(self) -> int:
        return next(iter(self._queue))


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    name = "random"

    def __init__(self, ways: int, seed: int = 0):
        super().__init__(ways)
        self._rng = random.Random(seed)

    def on_access(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.ways)


class PLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU.

    Classic binary-tree PLRU: each internal node holds one bit pointing
    toward the pseudo-least-recently-used half. Requires a power-of-two
    way count; for other counts callers should use :class:`LRUPolicy`.
    """

    name = "plru"

    def __init__(self, ways: int):
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError(f"PLRU requires power-of-two ways, got {ways}")
        self._bits = [0] * max(ways - 1, 1)

    def _touch(self, way: int) -> None:
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point away: right half is colder
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # point away: left half is colder
                node = 2 * node + 2
                lo = mid
        del node

    def on_access(self, way: int) -> None:
        self._touch(way)

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def victim(self) -> int:
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node]:  # cold half is the right one
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": PLRUPolicy,
}


def make_policy(name: str, ways: int, seed: Optional[int] = None) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Args:
        name: one of ``lru``, ``fifo``, ``random``, ``plru``.
        ways: set associativity.
        seed: RNG seed, honoured by the random policy only.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(ways, seed=0 if seed is None else seed)
    return cls(ways)


def policy_names() -> list:
    """All registered policy names, sorted."""
    return sorted(_POLICIES)
