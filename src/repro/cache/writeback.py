"""Writeback buffer model.

Sec. 3.5 of the paper: evicting a Doppelgänger data block can invalidate
many tags at once, and every dirty tag generates a writeback that must be
queued into the LLC's writeback buffer before the data block is released.
This module models that buffer as a bounded FIFO that drains to memory at
a configurable rate, so the timing model can charge stall cycles when a
burst of multi-tag evictions fills it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class WritebackBuffer:
    """Bounded FIFO of pending writebacks draining to main memory.

    Args:
        capacity: maximum queued entries before enqueues stall.
        drain_interval: cycles between successive drains to memory.
    """

    def __init__(self, capacity: int = 16, drain_interval: int = 20):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if drain_interval <= 0:
            raise ValueError(f"drain_interval must be positive, got {drain_interval}")
        self.capacity = capacity
        self.drain_interval = drain_interval
        self._queue: Deque[Tuple[int, int]] = deque()  # (addr, ready_cycle)
        self.enqueued = 0
        self.drained = 0
        self.stall_cycles = 0
        self._last_drain = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """Whether an enqueue would stall."""
        return len(self._queue) >= self.capacity

    def tick(self, now: int) -> int:
        """Drain entries whose turn has come by cycle ``now``.

        Returns the number of entries drained to memory.
        """
        drained = 0
        while self._queue and now - self._last_drain >= self.drain_interval:
            self._queue.popleft()
            self._last_drain += self.drain_interval
            drained += 1
        if not self._queue:
            self._last_drain = max(self._last_drain, now)
        self.drained += drained
        return drained

    def enqueue(self, addr: int, now: int) -> int:
        """Queue a writeback at cycle ``now``.

        Returns the number of stall cycles incurred waiting for space
        (zero when the buffer had room).
        """
        self.tick(now)
        stall = 0
        while self.full:
            # Wait until the next drain slot frees an entry.
            wait = self.drain_interval - (now + stall - self._last_drain)
            wait = max(wait, 1)
            stall += wait
            self.tick(now + stall)
        self._queue.append((addr, now + stall))
        self.enqueued += 1
        self.stall_cycles += stall
        return stall

    def as_dict(self) -> dict:
        """Counters as a plain dict (for metrics collection)."""
        return {
            "enqueued": self.enqueued,
            "drained": self.drained,
            "stall_cycles": self.stall_cycles,
            "occupancy": len(self._queue),
            "capacity": self.capacity,
        }

    def publish(self, registry, prefix: str = "wb_buffer") -> None:
        """Register the buffer as a lazily-collected metrics source."""
        registry.register_source(prefix, self.as_dict)
