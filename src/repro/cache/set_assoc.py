"""Conventional set-associative cache model.

This is the workhorse structure of the reproduction: it models the
private L1/L2 caches, the baseline 2 MB LLC and the precise half of the
split Doppelgänger LLC. It is a *functional + event* model: it tracks
resident blocks, replacement state and statistics, and reports evictions
and writebacks to the caller; timing and energy are accounted separately
from the recorded events.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.cache.block import BlockState, CacheBlock
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats


class AccessResult(NamedTuple):
    """Outcome of a cache access.

    Attributes:
        hit: whether the address was resident.
        block: the resident block after the access completes.
        evicted_addr: block address of the victim, if a fill evicted one.
        evicted_block: the victim block itself (carries dirty/state).
        writeback: whether the victim required a writeback.
    """

    hit: bool
    block: CacheBlock
    evicted_addr: Optional[int] = None
    evicted_block: Optional[CacheBlock] = None
    writeback: bool = False


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class SetAssociativeCache:
    """A set-associative, write-back, write-allocate cache.

    Args:
        size_bytes: total data capacity.
        ways: associativity.
        block_size: line size in bytes (64 in the paper's system).
        policy: replacement policy name (``lru`` by default, as the paper).
        name: label used in reports.
        level: informational level tag (e.g. ``"L1"``), used by reports.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        block_size: int = 64,
        policy: str = "lru",
        name: str = "cache",
        level: str = "",
        policy_seed: Optional[int] = None,
    ):
        if size_bytes <= 0 or size_bytes % (ways * block_size):
            raise ValueError(
                f"size {size_bytes} not divisible into {ways}-way sets of "
                f"{block_size}B blocks"
            )
        if not _is_pow2(block_size):
            raise ValueError(f"block_size must be a power of two, got {block_size}")
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_size = block_size
        self.num_sets = size_bytes // (ways * block_size)
        if not _is_pow2(self.num_sets):
            raise ValueError(
                f"derived set count {self.num_sets} is not a power of two"
            )
        self.name = name
        self.level = level
        self.policy_name = policy
        self._policy_seed = policy_seed
        self.stats = CacheStats()
        # Per set: way -> CacheBlock, plus a tag -> way map for O(1) probes.
        self._ways: List[Dict[int, CacheBlock]] = [dict() for _ in range(self.num_sets)]
        self._tag_to_way: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(policy, ways, seed=policy_seed) for _ in range(self.num_sets)
        ]

    # ---------------------------------------------------------------- addressing

    def block_addr(self, addr: int) -> int:
        """Strip the offset bits from a byte address."""
        return addr // self.block_size

    def set_index(self, addr: int) -> int:
        """Set index for a byte address."""
        return self.block_addr(addr) % self.num_sets

    def addr_tag(self, addr: int) -> int:
        """Address tag for a byte address."""
        return self.block_addr(addr) // self.num_sets

    def _compose_addr(self, set_idx: int, tag: int) -> int:
        """Reconstruct a byte (block-aligned) address from set and tag."""
        return (tag * self.num_sets + set_idx) * self.block_size

    # ---------------------------------------------------------------- queries

    def probe(self, addr: int) -> Optional[CacheBlock]:
        """Look up ``addr`` without touching replacement state or stats."""
        set_idx = self.set_index(addr)
        way = self._tag_to_way[set_idx].get(self.addr_tag(addr))
        if way is None:
            return None
        return self._ways[set_idx][way]

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` is resident (any valid state)."""
        return self.probe(addr) is not None

    def resident_addrs(self) -> Iterator[int]:
        """Iterate over the byte addresses of every resident block."""
        for set_idx, tag_map in enumerate(self._tag_to_way):
            for tag in tag_map:
                yield self._compose_addr(set_idx, tag)

    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(m) for m in self._tag_to_way)

    # ---------------------------------------------------------------- access

    def access(
        self,
        addr: int,
        is_write: bool = False,
        value_id: int = -1,
        fill_on_miss: bool = True,
    ) -> AccessResult:
        """Perform a read or write access.

        On a miss with ``fill_on_miss`` the block is installed
        (write-allocate), evicting the replacement victim if the set is
        full. The evicted block and whether it needs a writeback are
        reported in the result; the caller (hierarchy) is responsible for
        actually propagating the writeback.

        Args:
            addr: byte address.
            is_write: store (sets the dirty bit) vs load.
            value_id: optional value-table index carried by functional
                simulations; ``-1`` leaves the resident value unchanged
                on reads and updates it on writes only when ``>= 0``.
            fill_on_miss: install the block on a miss.
        """
        stats = self.stats
        stats.accesses += 1
        stats.tag_lookups += 1
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1

        block_no = addr // self.block_size
        set_idx = block_no % self.num_sets
        tag = block_no // self.num_sets
        way = self._tag_to_way[set_idx].get(tag)
        if way is not None:
            block = self._ways[set_idx][way]
            stats.hits += 1
            if is_write:
                block.dirty = True
                block.state = BlockState.MODIFIED
                stats.data_writes += 1
                if value_id >= 0:
                    block.value_id = value_id
            else:
                stats.data_reads += 1
            self._policies[set_idx].on_access(way)
            return AccessResult(hit=True, block=block)

        stats.misses += 1
        if not fill_on_miss:
            return AccessResult(hit=False, block=CacheBlock(tag, BlockState.INVALID))
        return self._fill(addr, is_write, value_id)

    def _fill(self, addr: int, is_write: bool, value_id: int) -> AccessResult:
        """Install ``addr``, evicting a victim when the set is full."""
        stats = self.stats
        num_sets = self.num_sets
        block_no = addr // self.block_size
        set_idx = block_no % num_sets
        tag = block_no // num_sets
        evicted_addr = None
        evicted_block = None
        writeback = False

        ways_map = self._ways[set_idx]
        if len(ways_map) < self.ways:
            for way in range(self.ways):
                if way not in ways_map:
                    break
        else:
            way = self._policies[set_idx].victim()
            evicted_block = ways_map[way]
            evicted_addr = (evicted_block.tag * num_sets + set_idx) * self.block_size
            writeback = evicted_block.dirty
            stats.evictions += 1
            if writeback:
                stats.writebacks += 1
            del self._tag_to_way[set_idx][evicted_block.tag]

        block = CacheBlock(
            tag,
            state=BlockState.MODIFIED if is_write else BlockState.SHARED,
            dirty=is_write,
            value_id=value_id,
        )
        ways_map[way] = block
        self._tag_to_way[set_idx][tag] = way
        self._policies[set_idx].on_fill(way)
        stats.fills += 1
        if is_write:
            stats.data_writes += 1
        else:
            stats.data_reads += 1
        return AccessResult(
            hit=False,
            block=block,
            evicted_addr=evicted_addr,
            evicted_block=evicted_block,
            writeback=writeback,
        )

    def install(self, addr: int, dirty: bool = False, value_id: int = -1) -> AccessResult:
        """Install a block without counting a demand access.

        Used by LLC adapters for the fill that follows a (separately
        counted) demand miss; fills/evictions/writebacks are still
        recorded. Raises if the address is already resident.
        """
        block_no = addr // self.block_size
        if block_no // self.num_sets in self._tag_to_way[block_no % self.num_sets]:
            raise ValueError(f"install of resident address {addr:#x}")
        return self._fill(addr, dirty, value_id)

    # ---------------------------------------------------------------- maintenance

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        """Remove ``addr`` if resident; return the removed block.

        The caller decides what to do with a dirty victim (the private
        caches write it back toward the LLC; the LLC writes to memory).
        """
        block_no = addr // self.block_size
        set_idx = block_no % self.num_sets
        way = self._tag_to_way[set_idx].pop(block_no // self.num_sets, None)
        if way is None:
            return None
        block = self._ways[set_idx].pop(way)
        self._policies[set_idx].on_invalidate(way)
        self.stats.invalidations += 1
        return block

    def flush(self) -> List[Tuple[int, CacheBlock]]:
        """Invalidate everything; return ``(addr, block)`` for dirty blocks."""
        dirty = []
        for addr in list(self.resident_addrs()):
            block = self.invalidate(addr)
            if block is not None and block.dirty:
                dirty.append((addr, block))
        return dirty

    def for_each_block(self, fn: Callable[[int, CacheBlock], None]) -> None:
        """Apply ``fn(addr, block)`` to every resident block."""
        for set_idx, ways_map in enumerate(self._ways):
            for block in ways_map.values():
                fn(self._compose_addr(set_idx, block.tag), block)

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"ways={self.ways}, sets={self.num_sets}, policy={self.policy_name!r})"
        )
