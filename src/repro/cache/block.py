"""Cache block representation and coherence state.

A :class:`CacheBlock` is the unit stored by every cache model in the
reproduction. Blocks are identified by their *block address* (the byte
address with the offset bits stripped) and carry an MSI coherence state
plus a dirty bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BlockState(enum.Enum):
    """MSI coherence state of a cache block.

    The simulated system (Table 1 of the paper) maintains coherence with
    an MSI protocol and a directory at the LLC; this enum is shared by the
    private caches, the conventional LLC, and the per-tag state of the
    Doppelgänger cache (Sec. 3.6: state is per *tag*, not per data entry).
    """

    INVALID = 0
    SHARED = 1
    MODIFIED = 2

    @property
    def is_valid(self) -> bool:
        """Whether the block holds usable data."""
        return self is not BlockState.INVALID


@dataclass
class CacheBlock:
    """One resident block in a set-associative cache.

    Attributes:
        tag: the address tag (block address >> set-index bits).
        state: MSI coherence state.
        dirty: whether the block must be written back on eviction.
        sharers: directory full-map bit vector (used only at the LLC).
        value_id: index of the block's current data values in the trace's
            value table (``-1`` when the simulation is not tracking values).
    """

    tag: int
    state: BlockState = BlockState.SHARED
    dirty: bool = False
    sharers: int = 0
    value_id: int = -1

    def add_sharer(self, core: int) -> None:
        """Record ``core`` in the directory sharer vector."""
        self.sharers |= 1 << core

    def remove_sharer(self, core: int) -> None:
        """Remove ``core`` from the directory sharer vector."""
        self.sharers &= ~(1 << core)

    def has_sharer(self, core: int) -> bool:
        """Whether ``core`` currently holds a copy."""
        return bool(self.sharers & (1 << core))

    def sharer_list(self) -> list:
        """All cores recorded in the sharer vector, ascending."""
        cores = []
        vec = self.sharers
        core = 0
        while vec:
            if vec & 1:
                cores.append(core)
            vec >>= 1
            core += 1
        return cores
