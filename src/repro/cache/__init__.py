"""Generic set-associative cache substrate.

This package provides the building blocks shared by every cache model in
the reproduction: cache blocks and their coherence state, replacement
policies, a conventional set-associative cache, a writeback buffer and a
statistics container. The Doppelgänger structures in :mod:`repro.core`
and the hierarchy in :mod:`repro.hierarchy` are built on top of these.
"""

from repro.cache.block import BlockState, CacheBlock
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.set_assoc import AccessResult, SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.writeback import WritebackBuffer

__all__ = [
    "AccessResult",
    "BlockState",
    "CacheBlock",
    "CacheStats",
    "FIFOPolicy",
    "LRUPolicy",
    "PLRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "WritebackBuffer",
    "make_policy",
]
