"""Reproduction of *Doppelgänger: A Cache for Approximate Computing*.

San Miguel, Albericio, Moshovos, Enright Jerger — MICRO-48, 2015.

The package is organized as a set of substrates (a generic set-associative
cache simulator, a coherent multi-level hierarchy, a CACTI-like energy/area
model, trace infrastructure and nine annotated workloads) plus the paper's
contribution (the Doppelgänger and uniDoppelgänger caches) and an
experiment harness that regenerates every table and figure of the paper's
evaluation section.

The stable public API (see ``docs/api.md``)::

    import repro

    record = repro.simulate("jpeg", "dopp", scale=0.25)
    tables = repro.run_experiment("table2", scale=0.25)

See ``examples/quickstart.py`` for a complete runnable tour.
"""

from typing import TYPE_CHECKING

__version__ = "1.2.0"

#: Lazily resolved exports (PEP 562): attribute -> defining module.
#: Keeps ``import repro`` light — the simulator only loads when used.
_LAZY_EXPORTS = {
    "simulate": "repro.api",
    "run_experiment": "repro.api",
    "as_spec": "repro.api",
    "ConfigSpec": "repro.harness.runner",
    "ExperimentContext": "repro.harness.runner",
    "RunRecord": "repro.harness.runner",
    "baseline_spec": "repro.harness.runner",
    "dopp_spec": "repro.harness.runner",
    "uni_spec": "repro.harness.runner",
    "run_trace": "repro.harness.runner",
    "experiment_names": "repro.harness.strategy",
    "ExperimentStrategy": "repro.harness.strategy",
    "Requirements": "repro.harness.strategy",
    "StrategyRegistry": "repro.harness.strategy",
    "run_strategies": "repro.harness.strategy",
    "ingest_trace": "repro.ingest",
    "IngestOptions": "repro.ingest",
    "SystemResult": "repro.hierarchy.system",
    "System": "repro.hierarchy.system",
    "engine_names": "repro.engine",
    "get_engine": "repro.engine",
    "FaultConfig": "repro.resilience.faults",
    "FaultInjector": "repro.resilience.faults",
    "ServeClient": "repro.client",
    "ReproError": "repro.errors",
    "Cancelled": "repro.errors",
    "ConfigError": "repro.errors",
    "TraceFormatError": "repro.errors",
    "SimulationFault": "repro.errors",
    "UnknownExperimentError": "repro.errors",
}

__all__ = ["__version__"] + sorted(_LAZY_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.api import as_spec, run_experiment, simulate  # noqa: F401
    from repro.engine import engine_names, get_engine  # noqa: F401
    from repro.client import ServeClient  # noqa: F401
    from repro.errors import (  # noqa: F401
        Cancelled,
        ConfigError,
        ReproError,
        SimulationFault,
        TraceFormatError,
        UnknownExperimentError,
    )
    from repro.resilience.faults import FaultConfig, FaultInjector  # noqa: F401
    from repro.harness.strategy import (  # noqa: F401
        ExperimentStrategy,
        Requirements,
        StrategyRegistry,
        experiment_names,
        run_strategies,
    )
    from repro.harness.runner import (  # noqa: F401
        ConfigSpec,
        ExperimentContext,
        RunRecord,
        baseline_spec,
        dopp_spec,
        run_trace,
        uni_spec,
    )
    from repro.ingest import IngestOptions, ingest_trace  # noqa: F401
    from repro.hierarchy.system import System, SystemResult  # noqa: F401


def __getattr__(name: str):
    """Resolve a public export on first access (PEP 562)."""
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
