"""Reproduction of *Doppelgänger: A Cache for Approximate Computing*.

San Miguel, Albericio, Moshovos, Enright Jerger — MICRO-48, 2015.

The package is organized as a set of substrates (a generic set-associative
cache simulator, a coherent multi-level hierarchy, a CACTI-like energy/area
model, trace infrastructure and nine annotated workloads) plus the paper's
contribution (the Doppelgänger and uniDoppelgänger caches) and an
experiment harness that regenerates every table and figure of the paper's
evaluation section.

Quick start::

    from repro.core import DoppelgangerCache, DoppelgangerConfig
    from repro.workloads import get_workload

    workload = get_workload("jpeg", seed=7)
    cache = DoppelgangerCache(DoppelgangerConfig())
    ...

See ``examples/quickstart.py`` for a complete runnable tour.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
