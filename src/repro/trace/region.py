"""Annotated address-space regions.

A :class:`Region` corresponds to one programmer annotation from Sec. 4.1
of the paper: a contiguous range of the address space holding elements
of a single data type, marked precise or approximate, with the expected
``[vmin, vmax]`` value range for approximate data. Runtime values
outside the declared range are clamped by the map generator, exactly as
the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.trace.record import DTYPE_INFO, DType, elements_per_block


@dataclass(frozen=True)
class Region:
    """One annotated region of the address space.

    Attributes:
        name: human-readable label (e.g. ``"prices"``).
        base: starting byte address (must be block aligned).
        size: length in bytes.
        dtype: element data type.
        approx: whether the region is annotated approximate.
        vmin: declared minimum element value (approximate regions).
        vmax: declared maximum element value (approximate regions).
    """

    name: str
    base: int
    size: int
    dtype: DType
    approx: bool = False
    vmin: float = 0.0
    vmax: float = 0.0

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"region {self.name!r}: size must be positive")
        if self.base < 0:
            raise ValueError(f"region {self.name!r}: negative base address")
        if self.approx and not self.vmax > self.vmin:
            raise ValueError(
                f"approximate region {self.name!r} needs vmax > vmin, got "
                f"[{self.vmin}, {self.vmax}]"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    @property
    def elem_bytes(self) -> int:
        """Size of one element in bytes."""
        return DTYPE_INFO[self.dtype].bits // 8

    @property
    def num_elements(self) -> int:
        """Number of elements the region holds."""
        return self.size // self.elem_bytes

    def elements_per_block(self, block_size: int = 64) -> int:
        """Elements per cache block for this region's data type."""
        return elements_per_block(self.dtype, block_size)

    def num_blocks(self, block_size: int = 64) -> int:
        """Number of cache blocks the region spans (base is aligned)."""
        return (self.size + block_size - 1) // block_size

    def block_addrs(self, block_size: int = 64) -> range:
        """Byte addresses of each block in the region."""
        return range(self.base, self.base + self.num_blocks(block_size) * block_size, block_size)

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside the region."""
        return self.base <= addr < self.end


class RegionMap:
    """Ordered collection of non-overlapping regions with address lookup.

    Regions are laid out by the workloads; this container validates that
    they do not overlap and answers "which region does this address
    belong to" queries for the simulators.
    """

    def __init__(self, regions: Optional[List[Region]] = None):
        self._regions: List[Region] = []
        for region in regions or []:
            self.add(region)

    def add(self, region: Region) -> int:
        """Add a region; returns its region id. Raises on overlap."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name!r} [{region.base:#x}, {region.end:#x}) "
                    f"overlaps {existing.name!r} [{existing.base:#x}, {existing.end:#x})"
                )
        self._regions.append(region)
        return len(self._regions) - 1

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)

    def __getitem__(self, region_id: int) -> Region:
        return self._regions[region_id]

    def find(self, addr: int) -> Optional[Region]:
        """Region containing ``addr``, or None."""
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def find_id(self, addr: int) -> int:
        """Region id containing ``addr``, or -1."""
        for region_id, region in enumerate(self._regions):
            if region.contains(addr):
                return region_id
        return -1

    def approx_regions(self) -> List[Region]:
        """All approximate regions."""
        return [r for r in self._regions if r.approx]

    def approx_bytes(self) -> int:
        """Total bytes of approximate data."""
        return sum(r.size for r in self._regions if r.approx)

    def total_bytes(self) -> int:
        """Total bytes across all regions."""
        return sum(r.size for r in self._regions)

    def approx_fraction(self) -> float:
        """Fraction of annotated bytes that are approximate."""
        total = self.total_bytes()
        return self.approx_bytes() / total if total else 0.0
