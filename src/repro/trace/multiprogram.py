"""Multiprogrammed workload support (Sec. 4.1).

The paper: "Doppelgänger can be used with multiprogrammed workloads by
storing this [range] information per application; this would require a
small set of registers with negligible energy and area overhead."

This module builds a multiprogrammed trace from several workload
traces: each program gets a disjoint slice of the physical address
space and a subset of the cores; their access streams are interleaved
in fine-grained round-robin chunks (concurrent execution). Region
annotations — including each program's declared value ranges — carry
over per region, which is exactly the per-application range-register
model: the Doppelgänger map registry already resolves ranges per
region, so two co-running programs with different ranges coexist
naturally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.trace.region import Region, RegionMap
from repro.trace.trace import Trace

#: Address-space stride between co-scheduled programs (1 GB).
PROGRAM_STRIDE = 1 << 30


def merge_traces(
    traces: Sequence[Trace],
    core_groups: Optional[Sequence[Sequence[int]]] = None,
    chunk: int = 64,
    name: str = "multiprogram",
) -> Trace:
    """Merge program traces into one multiprogrammed trace.

    Args:
        traces: one trace per program.
        core_groups: cores assigned to each program (defaults to an
            even split of cores 0-3, e.g. two programs get {0,1} and
            {2,3}).
        chunk: accesses taken from each program per round-robin turn
            (the granularity of simulated concurrency).
        name: merged trace name.

    Returns:
        A single :class:`~repro.trace.trace.Trace` whose regions,
        value table and initial image combine all programs at disjoint
        address offsets.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if core_groups is None:
        num = len(traces)
        per = max(4 // num, 1)
        core_groups = [
            [(i * per + j) % 4 for j in range(per)] for i in range(num)
        ]
    if len(core_groups) != len(traces):
        raise ValueError("one core group per trace required")

    merged_regions = RegionMap()
    region_id_offsets: List[int] = []
    value_id_offsets: List[int] = []
    values: List[np.ndarray] = []
    initial_image: dict = {}

    for prog, trace in enumerate(traces):
        addr_off = prog * PROGRAM_STRIDE
        region_id_offsets.append(len(merged_regions))
        for region in trace.regions:
            merged_regions.add(
                Region(
                    f"p{prog}:{region.name}",
                    region.base + addr_off,
                    region.size,
                    region.dtype,
                    approx=region.approx,
                    vmin=region.vmin,
                    vmax=region.vmax,
                )
            )
        value_id_offsets.append(len(values))
        values.extend(trace.values)
        for addr, vid in trace.initial_image.items():
            initial_image[addr + addr_off] = vid + value_id_offsets[prog]

    # Remap per-program columns.
    remapped = []
    for prog, trace in enumerate(traces):
        group = np.asarray(core_groups[prog], dtype=np.int8)
        cores = group[trace.cores.astype(np.int64) % len(group)]
        addrs = trace.addrs + prog * PROGRAM_STRIDE
        region_ids = trace.region_ids + region_id_offsets[prog]
        value_ids = np.where(
            trace.value_ids >= 0, trace.value_ids + value_id_offsets[prog], -1
        )
        remapped.append(
            (cores, addrs, trace.is_write, trace.approx, region_ids, value_ids, trace.gaps)
        )

    # Round-robin chunk interleave.
    positions = [0] * len(traces)
    lengths = [len(t) for t in traces]
    order: List[tuple] = []
    while any(positions[i] < lengths[i] for i in range(len(traces))):
        for i in range(len(traces)):
            if positions[i] < lengths[i]:
                start = positions[i]
                stop = min(start + chunk, lengths[i])
                order.append((i, start, stop))
                positions[i] = stop

    def gather(col_idx, dtype):
        parts = [remapped[i][col_idx][start:stop] for i, start, stop in order]
        return (
            np.concatenate(parts).astype(dtype)
            if parts
            else np.empty(0, dtype=dtype)
        )

    return Trace(
        name,
        merged_regions,
        gather(0, np.int8),
        gather(1, np.int64),
        gather(2, bool),
        gather(3, bool),
        gather(4, np.int32),
        gather(5, np.int64),
        gather(6, np.int32),
        values,
        initial_image,
        traces[0].block_size,
    )
