"""Trace serialization.

Traces are expensive to regenerate (the workloads compute real kernels
to populate their output regions), so the harness and downstream users
can persist them: :func:`save_trace` writes a single compressed
``.npz`` file; :func:`load_trace` restores a fully equivalent
:class:`~repro.trace.trace.Trace`.

The ragged value table is stored as one concatenated float64 array plus
offsets; regions are stored column-wise with their annotations.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import Trace

_FORMAT_VERSION = 1

#: Arrays every v1 trace file must contain.
_REQUIRED_FIELDS = (
    "format_version", "name", "block_size", "cores", "addrs", "is_write",
    "approx", "region_ids", "value_ids", "gaps", "values_flat",
    "value_offsets", "image_addrs", "image_vids", "region_names",
    "region_base", "region_size", "region_dtype", "region_approx",
    "region_vmin", "region_vmax",
)


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` (.npz, compressed)."""
    values_flat = (
        np.concatenate([np.asarray(v, dtype=np.float64) for v in trace.values])
        if trace.values
        else np.empty(0, dtype=np.float64)
    )
    offsets = np.zeros(len(trace.values) + 1, dtype=np.int64)
    for i, v in enumerate(trace.values):
        offsets[i + 1] = offsets[i] + len(v)

    image_addrs = np.array(sorted(trace.initial_image), dtype=np.int64)
    image_vids = np.array(
        [trace.initial_image[a] for a in image_addrs], dtype=np.int64
    )

    regions = list(trace.regions)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        name=np.bytes_(trace.name.encode()),
        block_size=np.int64(trace.block_size),
        cores=trace.cores,
        addrs=trace.addrs,
        is_write=trace.is_write,
        approx=trace.approx,
        region_ids=trace.region_ids,
        value_ids=trace.value_ids,
        gaps=trace.gaps,
        values_flat=values_flat,
        value_offsets=offsets,
        image_addrs=image_addrs,
        image_vids=image_vids,
        region_names=np.array([r.name for r in regions], dtype=object),
        region_base=np.array([r.base for r in regions], dtype=np.int64),
        region_size=np.array([r.size for r in regions], dtype=np.int64),
        region_dtype=np.array([int(r.dtype) for r in regions], dtype=np.int64),
        region_approx=np.array([r.approx for r in regions], dtype=bool),
        region_vmin=np.array([r.vmin for r in regions], dtype=np.float64),
        region_vmax=np.array([r.vmax for r in regions], dtype=np.float64),
        allow_pickle=True,
    )


def load_trace(path: str) -> Trace:
    """Restore a trace written by :func:`save_trace`.

    Raises:
        TraceFormatError: the file is missing, not a trace archive, has
            an unsupported format version, or lacks a required array —
            always with the file path (and offending field) attached.
    """
    if not os.path.exists(path):
        raise TraceFormatError("no such trace file", path=path)
    try:
        archive = np.load(path, allow_pickle=True)
    except Exception as exc:
        raise TraceFormatError(
            f"not a readable .npz trace archive ({exc})", path=path
        ) from exc
    with archive as data:
        present = set(data.files)
        for name in _REQUIRED_FIELDS:
            if name not in present:
                raise TraceFormatError(
                    "required array missing from trace archive",
                    path=path, field=name,
                )
        try:
            version = int(data["format_version"])
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                "format_version is not an integer",
                path=path, field="format_version",
            ) from exc
        if version != _FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version} "
                f"(this build reads version {_FORMAT_VERSION})",
                path=path, field="format_version",
            )
        n = len(data["addrs"])
        for name in ("is_write", "approx", "region_ids", "value_ids", "gaps",
                     "cores"):
            if len(data[name]) != n:
                raise TraceFormatError(
                    f"column length {len(data[name])} != {n} (addrs)",
                    path=path, field=name,
                )

        regions = RegionMap()
        names = data["region_names"]
        for i in range(len(names)):
            try:
                regions.add(
                    Region(
                        str(names[i]),
                        int(data["region_base"][i]),
                        int(data["region_size"][i]),
                        DType(int(data["region_dtype"][i])),
                        approx=bool(data["region_approx"][i]),
                        vmin=float(data["region_vmin"][i]),
                        vmax=float(data["region_vmax"][i]),
                    )
                )
            except (TypeError, ValueError, IndexError) as exc:
                raise TraceFormatError(
                    f"invalid region record {i}: {exc}",
                    path=path, line=i, field="region_*",
                ) from exc

        offsets = data["value_offsets"]
        flat = data["values_flat"]
        values = [
            flat[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)
        ]
        initial_image = dict(
            zip(data["image_addrs"].tolist(), data["image_vids"].tolist())
        )
        return Trace(
            data["name"].item().decode(),
            regions,
            data["cores"],
            data["addrs"],
            data["is_write"],
            data["approx"],
            data["region_ids"],
            data["value_ids"],
            data["gaps"],
            values,
            initial_image,
            int(data["block_size"]),
        )
