"""Synthetic access-pattern generators.

Reusable address-stream shapes from which the workload trace generators
compose their reference behaviour: sequential scans (streaming kernels
like blackscholes), strided walks (structure-of-arrays layouts), uniform
random references (canneal's netlist swaps — the paper singles canneal
out as the most miss-sensitive benchmark at 12.2 MPKI), and Zipf-skewed
reuse (ferret's database lookups).

All generators return *block indices* into a region; the
:class:`~repro.trace.trace.TraceBuilder` converts them to addresses.
"""

from __future__ import annotations

import numpy as np


def sequential_pattern(num_blocks: int, repeats: int = 1) -> np.ndarray:
    """Blocks 0..num_blocks-1 scanned in order, ``repeats`` times."""
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    return np.tile(np.arange(num_blocks, dtype=np.int64), repeats)


def strided_pattern(num_blocks: int, stride: int, count: int) -> np.ndarray:
    """``count`` accesses walking the region with ``stride`` blocks."""
    if num_blocks <= 0 or stride <= 0 or count <= 0:
        raise ValueError("num_blocks, stride and count must be positive")
    return (np.arange(count, dtype=np.int64) * stride) % num_blocks


def random_pattern(num_blocks: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """``count`` uniformly random block indices."""
    if num_blocks <= 0 or count <= 0:
        raise ValueError("num_blocks and count must be positive")
    return rng.integers(0, num_blocks, size=count, dtype=np.int64)


def zipf_pattern(
    num_blocks: int, count: int, rng: np.random.Generator, alpha: float = 1.2
) -> np.ndarray:
    """``count`` Zipf-skewed block indices (hot blocks reused often).

    Block popularity follows rank^(-alpha) over a random permutation of
    the region so that hot blocks are scattered in the address space.
    """
    if num_blocks <= 0 or count <= 0:
        raise ValueError("num_blocks and count must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    ranks = np.arange(1, num_blocks + 1, dtype=np.float64)
    probs = ranks ** (-alpha)
    probs /= probs.sum()
    perm = rng.permutation(num_blocks)
    picks = rng.choice(num_blocks, size=count, p=probs)
    return perm[picks].astype(np.int64)


def interleave_streams(streams) -> tuple:
    """Interleave per-core access streams round-robin.

    Models the cores executing *simultaneously*: access ``j`` of every
    core lands before access ``j + 1`` of any core, which is what
    creates real contention in the shared LLC (trace order is the
    simulator's notion of time).

    Args:
        streams: one int64 array of block indices per core.

    Returns:
        ``(indices, cores)`` parallel arrays covering every stream.
    """
    if not streams:
        raise ValueError("need at least one stream")
    num_cores = len(streams)
    longest = max(len(s) for s in streams)
    padded = np.full((num_cores, longest), -1, dtype=np.int64)
    for c, stream in enumerate(streams):
        padded[c, : len(stream)] = stream
    flat = padded.T.reshape(-1)
    core_grid = np.tile(np.arange(num_cores, dtype=np.int8), longest)
    keep = flat >= 0
    return flat[keep], core_grid[keep]


def partition_blocks(num_blocks: int, num_cores: int = 4):
    """Split ``range(num_blocks)`` into contiguous per-core chunks."""
    bounds = np.linspace(0, num_blocks, num_cores + 1).astype(np.int64)
    return [np.arange(bounds[c], bounds[c + 1], dtype=np.int64) for c in range(num_cores)]


def interleave_cores(n: int, num_cores: int = 4, mode: str = "block") -> np.ndarray:
    """Assign ``n`` accesses to cores.

    ``block`` mode splits the stream into contiguous per-core chunks and
    interleaves them round-robin (data-parallel loop chunking, the way
    PARSEC partitions work); ``roundrobin`` alternates every access.
    """
    if mode == "roundrobin":
        return (np.arange(n, dtype=np.int8) % num_cores).astype(np.int8)
    if mode == "block":
        chunk = (n + num_cores - 1) // num_cores
        return (np.arange(n, dtype=np.int64) // chunk).astype(np.int8)
    raise ValueError(f"unknown interleave mode {mode!r}")
