"""Access records and element data types.

The paper assumes ISA support (Sec. 4.1, citing EnerJ/Truffle-style
annotations) that tags each load/store with whether it targets
approximate data and with the element data type; the declared
``min``/``max`` range is registered at the LLC once at program start.
:class:`Access` carries exactly that information per trace record.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

import numpy as np


class DType(enum.IntEnum):
    """Element data types supported by the annotations."""

    U8 = 0
    I16 = 1
    I32 = 2
    F32 = 3
    F64 = 4


class _DTypeInfo(NamedTuple):
    """Static properties of an element data type."""

    bits: int
    is_integer: bool
    numpy_dtype: np.dtype


DTYPE_INFO = {
    DType.U8: _DTypeInfo(8, True, np.dtype(np.uint8)),
    DType.I16: _DTypeInfo(16, True, np.dtype(np.int16)),
    DType.I32: _DTypeInfo(32, True, np.dtype(np.int32)),
    DType.F32: _DTypeInfo(32, False, np.dtype(np.float32)),
    DType.F64: _DTypeInfo(64, False, np.dtype(np.float64)),
}


def elements_per_block(dtype: DType, block_size: int = 64) -> int:
    """How many elements of ``dtype`` fit in one cache block."""
    return block_size * 8 // DTYPE_INFO[dtype].bits


class Access(NamedTuple):
    """One memory reference in a trace.

    Attributes:
        core: issuing core id (0-3 in the paper's 4-core CMP).
        addr: byte address (block aligned by the generators).
        is_write: store vs load.
        approx: targets programmer-annotated approximate data.
        region_id: index into the trace's region list (-1 for precise
            data outside any annotated region).
        value_id: index into the trace's value table giving the block's
            contents after this access (-1 when the access does not
            change or need values).
        gap: number of non-memory instructions the core executed since
            its previous memory reference (drives the timing model).
    """

    core: int
    addr: int
    is_write: bool
    approx: bool
    region_id: int
    value_id: int
    gap: int
