"""Memory-trace infrastructure.

The reproduction is trace-driven: each workload in
:mod:`repro.workloads` emits a block-granularity, multi-core memory
trace annotated with the information the paper assumes the ISA provides
(Sec. 4.1): whether an access touches approximate data, the element data
type, and the programmer-declared value range. Traces also carry the
block *values* needed by the Doppelgänger map computation, stored once
in a value table and referenced by index.
"""

from repro.trace.record import Access, DTYPE_INFO, DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import Trace, TraceBuilder
from repro.trace.io import load_trace, save_trace
from repro.trace.multiprogram import merge_traces
from repro.trace.synth import (
    random_pattern,
    sequential_pattern,
    strided_pattern,
    zipf_pattern,
)

__all__ = [
    "Access",
    "DType",
    "DTYPE_INFO",
    "Region",
    "RegionMap",
    "Trace",
    "TraceBuilder",
    "load_trace",
    "merge_traces",
    "random_pattern",
    "save_trace",
    "sequential_pattern",
    "strided_pattern",
    "zipf_pattern",
]
