"""Trace container and builder.

A :class:`Trace` stores a multi-core memory reference stream
column-wise in numpy arrays (compact, fast to build) together with:

* the :class:`~repro.trace.region.RegionMap` of programmer annotations,
* a *value table*: for every distinct block content that appears during
  the run, one numpy array of element values. Access records reference
  the table by ``value_id`` so repeated touches of the same block don't
  duplicate values. The Doppelgänger map computation reads block values
  from here.
* the initial memory image (block address → value id).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.trace.record import Access
from repro.trace.region import Region, RegionMap

BLOCK_SIZE = 64


class Trace:
    """An immutable multi-core memory trace.

    Build via :class:`TraceBuilder`. Iterating yields
    :class:`~repro.trace.record.Access` records in program order
    (already interleaved across cores by the generator).
    """

    def __init__(
        self,
        name: str,
        regions: RegionMap,
        cores: np.ndarray,
        addrs: np.ndarray,
        is_write: np.ndarray,
        approx: np.ndarray,
        region_ids: np.ndarray,
        value_ids: np.ndarray,
        gaps: np.ndarray,
        values: List[np.ndarray],
        initial_image: dict,
        block_size: int = BLOCK_SIZE,
    ):
        n = len(addrs)
        for col in (cores, is_write, approx, region_ids, value_ids, gaps):
            if len(col) != n:
                raise ValueError("trace columns have inconsistent lengths")
        self.name = name
        self.regions = regions
        self.cores = cores
        self.addrs = addrs
        self.is_write = is_write
        self.approx = approx
        self.region_ids = region_ids
        self.value_ids = value_ids
        self.gaps = gaps
        self.values = values
        self.initial_image = initial_image
        self.block_size = block_size

    def __len__(self) -> int:
        return len(self.addrs)

    def __iter__(self) -> Iterator[Access]:
        cores = self.cores
        addrs = self.addrs
        writes = self.is_write
        approx = self.approx
        region_ids = self.region_ids
        value_ids = self.value_ids
        gaps = self.gaps
        for i in range(len(addrs)):
            yield Access(
                int(cores[i]),
                int(addrs[i]),
                bool(writes[i]),
                bool(approx[i]),
                int(region_ids[i]),
                int(value_ids[i]),
                int(gaps[i]),
            )

    # ------------------------------------------------------------- statistics

    @property
    def instruction_count(self) -> int:
        """Total instructions implied by the trace (memory ops + gaps)."""
        return int(self.gaps.sum()) + len(self)

    def write_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        return float(self.is_write.mean()) if len(self) else 0.0

    def approx_access_fraction(self) -> float:
        """Fraction of accesses that touch approximate data."""
        return float(self.approx.mean()) if len(self) else 0.0

    def unique_blocks(self) -> int:
        """Number of distinct blocks referenced."""
        return len(np.unique(self.addrs // self.block_size))

    def footprint_bytes(self) -> int:
        """Referenced footprint in bytes."""
        return self.unique_blocks() * self.block_size

    def per_core_counts(self, num_cores: int = 4) -> List[int]:
        """Access counts per core."""
        return [int((self.cores == c).sum()) for c in range(num_cores)]

    def block_values(self, value_id: int) -> np.ndarray:
        """Element values of value-table entry ``value_id``."""
        return self.values[value_id]

    def head(self, n: int) -> "Trace":
        """A new trace containing only the first ``n`` records."""
        n = min(n, len(self))
        return Trace(
            self.name,
            self.regions,
            self.cores[:n],
            self.addrs[:n],
            self.is_write[:n],
            self.approx[:n],
            self.region_ids[:n],
            self.value_ids[:n],
            self.gaps[:n],
            self.values,
            self.initial_image,
            self.block_size,
        )


class TraceBuilder:
    """Incrementally assemble a :class:`Trace`.

    Workload generators append accesses (singly or in numpy batches) and
    register block values; ``build()`` freezes everything into a Trace.
    """

    def __init__(self, name: str, regions: Optional[RegionMap] = None, block_size: int = BLOCK_SIZE):
        self.name = name
        self.regions = regions if regions is not None else RegionMap()
        self.block_size = block_size
        self._cores: List[np.ndarray] = []
        self._addrs: List[np.ndarray] = []
        self._writes: List[np.ndarray] = []
        self._approx: List[np.ndarray] = []
        self._region_ids: List[np.ndarray] = []
        self._value_ids: List[np.ndarray] = []
        self._gaps: List[np.ndarray] = []
        self._values: List[np.ndarray] = []
        self._initial_image: dict = {}

    # --------------------------------------------------------------- values

    def register_value(self, values: np.ndarray) -> int:
        """Add one block's element values to the value table; returns id."""
        self._values.append(np.asarray(values))
        return len(self._values) - 1

    def register_block_values(self, region: Region, data: np.ndarray) -> np.ndarray:
        """Register every block of a region's data array.

        ``data`` is the flat element array backing the region. Returns
        the array of value ids, one per block, and records the initial
        memory image for those blocks.
        """
        elems = region.elements_per_block(self.block_size)
        flat = np.asarray(data).reshape(-1)
        n_blocks = region.num_blocks(self.block_size)
        ids = np.empty(n_blocks, dtype=np.int64)
        for b in range(n_blocks):
            chunk = flat[b * elems : (b + 1) * elems]
            vid = self.register_value(chunk.copy())
            ids[b] = vid
            self._initial_image[region.base + b * self.block_size] = vid
        return ids

    def set_initial_value(self, block_addr: int, value_id: int) -> None:
        """Record the initial memory image of a block."""
        self._initial_image[block_addr] = value_id

    # -------------------------------------------------------------- appends

    def append(self, access: Access) -> None:
        """Append a single access record."""
        self.append_batch(
            np.array([access.core], dtype=np.int8),
            np.array([access.addr], dtype=np.int64),
            np.array([access.is_write]),
            np.array([access.approx]),
            np.array([access.region_id], dtype=np.int32),
            np.array([access.value_id], dtype=np.int64),
            np.array([access.gap], dtype=np.int32),
        )

    def append_batch(
        self,
        cores: np.ndarray,
        addrs: np.ndarray,
        is_write: np.ndarray,
        approx: np.ndarray,
        region_ids: np.ndarray,
        value_ids: np.ndarray,
        gaps: np.ndarray,
    ) -> None:
        """Append a batch of accesses given as parallel numpy arrays."""
        self._cores.append(np.asarray(cores, dtype=np.int8))
        self._addrs.append(np.asarray(addrs, dtype=np.int64))
        self._writes.append(np.asarray(is_write, dtype=bool))
        self._approx.append(np.asarray(approx, dtype=bool))
        self._region_ids.append(np.asarray(region_ids, dtype=np.int32))
        self._value_ids.append(np.asarray(value_ids, dtype=np.int64))
        self._gaps.append(np.asarray(gaps, dtype=np.int32))

    def append_region_accesses(
        self,
        region_id: int,
        block_indices: np.ndarray,
        cores: np.ndarray,
        is_write=False,
        value_ids=None,
        gap: int = 8,
    ) -> None:
        """Append block-granularity accesses into a region.

        Args:
            region_id: target region id in this builder's RegionMap.
            block_indices: per-access block index within the region.
            cores: per-access core id (scalar or array).
            is_write: scalar or per-access array.
            value_ids: per-access value ids (-1 default).
            gap: scalar or per-access instruction gap.
        """
        region = self.regions[region_id]
        block_indices = np.asarray(block_indices, dtype=np.int64)
        n = len(block_indices)
        addrs = region.base + block_indices * self.block_size
        cores_arr = np.broadcast_to(np.asarray(cores, dtype=np.int8), (n,))
        writes = np.broadcast_to(np.asarray(is_write, dtype=bool), (n,))
        approx = np.full(n, region.approx)
        rids = np.full(n, region_id, dtype=np.int32)
        vids = (
            np.full(n, -1, dtype=np.int64)
            if value_ids is None
            else np.asarray(value_ids, dtype=np.int64)
        )
        gaps = np.broadcast_to(np.asarray(gap, dtype=np.int32), (n,))
        self.append_batch(cores_arr, addrs, writes, approx, rids, vids, gaps)

    # ---------------------------------------------------------------- build

    def build(self) -> Trace:
        """Freeze into an immutable Trace."""

        def cat(chunks, dtype):
            if not chunks:
                return np.empty(0, dtype=dtype)
            return np.concatenate(chunks)

        return Trace(
            self.name,
            self.regions,
            cat(self._cores, np.int8),
            cat(self._addrs, np.int64),
            cat(self._writes, bool),
            cat(self._approx, bool),
            cat(self._region_ids, np.int32),
            cat(self._value_ids, np.int64),
            cat(self._gaps, np.int32),
            self._values,
            dict(self._initial_image),
            self.block_size,
        )
