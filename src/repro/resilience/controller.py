"""Closed-loop error-budget controller over the voltage ladder.

The open-loop ``faultsweep`` experiment answers "what does a fixed
fault rate cost?"; this module answers the paper-level question "how
far can the approximate LLC be degraded before a workload's output
error exceeds its budget?". One :class:`ErrorBudgetController` per
workload searches the voltage ladder of
:mod:`repro.resilience.energy` for the *frontier*: the most aggressive
(lowest-voltage, highest-fault-rate) step whose observed output error
still fits the declared budget.

The control loop (see ``docs/robustness.md``):

* **monotone bracketing** — fault rate is non-decreasing down the
  ladder, and output error is treated as monotone in fault rate, so
  the search maintains an invariant bracket ``(lo, hi)``: every step
  at or above ``lo`` is known within budget, every step at or below
  ``hi`` known over it. Each evaluation bisects the bracket, so
  convergence costs O(log steps) simulations per workload.
* **bounded retries** — :attr:`FrontierOptions.max_evals` caps the
  simulations one workload's search may spend; hitting the cap
  finalizes on the best verified step instead of looping.
* **graceful degradation** — a step that blows the budget narrows
  ``hi``; the next probe is at a *higher* voltage (the controller
  literally steps the voltage back up), traced as a
  ``controller_degrade`` event. If even the nominal step (the plain
  approximate configuration, no faults) exceeds the budget, the
  workload falls back to fully precise annotation: zero error, zero
  energy credit, ``degraded="precise"``.
* **hysteresis** — the recommended *operating* point backs off
  :attr:`FrontierOptions.hysteresis` steps from the verified frontier
  as a guard band, so a marginal frontier step is not what deployment
  advice points at.
* **checkpointing** — every observation is persisted as an atomic
  JSON state file (one per workload, next to the sweep journal), so a
  SIGKILL'd search resumes mid-bracket: finished simulations come back
  from the sweep journal, the bracket and eval history from here, and
  the continued search emits byte-identical results.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs import get_logger
from repro.resilience.energy import (
    DEFAULT_FAULT_TARGETS,
    V_MIN,
    V_NOM,
    VoltageStep,
    ladder_fingerprint,
)
from repro.resilience.faults import FAULT_TARGETS

log = get_logger("resilience.controller")

_STATE_SCHEMA = "repro-frontier/v1"

#: Default fault-stream seed (matches the ``faultsweep`` experiment's).
DEFAULT_FAULT_SEED = 11


@dataclass(frozen=True)
class FrontierOptions:
    """Knobs of the frontier search, validated on construction.

    Attributes:
        error_budget: maximum acceptable output error (paper error
            metric, a fraction).
        voltage_steps: ladder length (nominal plus scaled steps).
        v_nom: nominal supply voltage (V).
        v_min: most aggressive supply voltage (V).
        hysteresis: guard-band steps between the verified frontier and
            the recommended operating point.
        max_evals: simulation budget per workload search.
        fault_seed: fault-stream seed for every probed step.
        targets: structures the scaled array exposes to injection.
    """

    error_budget: float = 0.1
    voltage_steps: int = 8
    v_nom: float = V_NOM
    v_min: float = V_MIN
    hysteresis: int = 1
    max_evals: int = 12
    fault_seed: int = DEFAULT_FAULT_SEED
    targets: Tuple[str, ...] = DEFAULT_FAULT_TARGETS

    def __post_init__(self):
        """Validate every knob, naming the offending field."""
        if not 0.0 < self.error_budget <= 1.0:
            raise ConfigError(
                f"must be in (0, 1], got {self.error_budget}",
                field="error_budget",
            )
        if self.voltage_steps < 2:
            raise ConfigError(
                f"must be >= 2, got {self.voltage_steps}",
                field="voltage_steps",
            )
        if self.hysteresis < 0:
            raise ConfigError(
                f"must be >= 0, got {self.hysteresis}", field="hysteresis"
            )
        if self.max_evals < 2:
            raise ConfigError(
                f"must be >= 2 (the search needs at least the nominal "
                f"probe plus one scaled one), got {self.max_evals}",
                field="max_evals",
            )
        unknown = [t for t in self.targets if t not in FAULT_TARGETS]
        if unknown:
            raise ConfigError(
                f"unknown fault target(s) {unknown}; choose from "
                f"{list(FAULT_TARGETS)}",
                field="targets",
            )
        object.__setattr__(self, "targets", tuple(sorted(set(self.targets))))

    @classmethod
    def from_mapping(cls, options: Optional[dict]) -> "FrontierOptions":
        """Build options from a loosely-typed mapping (CLI plumbing).

        Unknown keys are ignored (the mapping is shared by every
        strategy); ``None`` values fall back to the defaults.
        """
        options = options or {}
        kwargs = {}
        for name in (
            "error_budget", "voltage_steps", "v_nom", "v_min",
            "hysteresis", "max_evals", "fault_seed", "targets",
        ):
            value = options.get(name)
            if value is not None:
                kwargs[name] = tuple(value) if name == "targets" else value
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """JSON-friendly form (state fingerprints, BENCH notes)."""
        return {
            "error_budget": self.error_budget,
            "voltage_steps": self.voltage_steps,
            "v_nom": self.v_nom,
            "v_min": self.v_min,
            "hysteresis": self.hysteresis,
            "max_evals": self.max_evals,
            "fault_seed": self.fault_seed,
            "targets": list(self.targets),
        }


def controller_state_dir(checkpoint_dir: Optional[str]) -> Optional[str]:
    """Where controller state files live for a given checkpoint path.

    A directory journal keeps them in a ``frontier/`` subdirectory; a
    ``.zip`` container (which cannot hold them atomically) uses a
    sibling ``<path minus .zip>.frontier/`` directory.
    """
    if not checkpoint_dir:
        return None
    if checkpoint_dir.endswith(".zip"):
        return checkpoint_dir[: -len(".zip")] + ".frontier"
    return os.path.join(checkpoint_dir, "frontier")


@dataclass
class FrontierResult:
    """Outcome of one workload's frontier search.

    Attributes:
        workload: workload name.
        ladder: the searched voltage ladder.
        frontier: index of the most aggressive step verified within
            budget (``-1`` when even nominal blew the budget).
        operating: recommended operating index after the hysteresis
            guard band (``-1`` for the precise fallback).
        evals: evaluation history, in search order, as dicts with
            ``step``/``error``/``energy_saved``/``verdict``.
        degraded: ``None``, or ``"precise"`` when the workload fell
            back to fully precise annotation.
        converged: False when :attr:`FrontierOptions.max_evals` ended
            the search before the bracket closed.
    """

    workload: str
    ladder: Tuple[VoltageStep, ...]
    frontier: int
    operating: int
    evals: List[dict] = field(default_factory=list)
    degraded: Optional[str] = None
    converged: bool = True

    def step(self, index: int) -> Optional[VoltageStep]:
        """The ladder step at ``index`` (None for the precise fallback)."""
        return self.ladder[index] if index >= 0 else None

    @property
    def survivable_rate(self) -> float:
        """Per-read fault rate at the verified frontier (0 = none)."""
        step = self.step(self.frontier)
        return step.read_rate if step is not None else 0.0

    @property
    def frontier_error(self) -> float:
        """Observed output error at the frontier step (0 = fallback)."""
        for entry in self.evals:
            if entry["step"] == self.frontier:
                return entry["error"]
        return 0.0

    @property
    def frontier_energy_saved(self) -> float:
        """Energy-credit fraction at the frontier step (0 = fallback)."""
        for entry in self.evals:
            if entry["step"] == self.frontier:
                return entry["energy_saved"]
        return 0.0

    @property
    def status(self) -> str:
        """One-word outcome for the Pareto table."""
        if self.degraded is not None:
            return self.degraded
        return "converged" if self.converged else "eval-capped"


class ErrorBudgetController:
    """Adaptive per-workload search for the max survivable fault rate.

    Drive it with the probe loop::

        while (step := controller.pending_step()) is not None:
            spec = base.with_faults(step.fault_config(seed, targets))
            controller.observe(
                step.index, error=ctx.error(w, spec),
                energy_saved=energy_saved_fraction(ctx.run(w, spec), step),
            )
        result = controller.result()

    Bracket invariant: ``lo`` is the highest index verified within
    budget (``-1`` before the nominal probe), ``hi`` the lowest index
    verified over it (``len(ladder)`` before any failure). The search
    ends when ``hi - lo <= 1`` (bracket closed), when the eval budget
    is exhausted, or when nominal itself blows the budget (precise
    fallback).

    Args:
        workload: workload name (state filename, event payloads).
        ladder: the voltage ladder to search.
        options: validated :class:`FrontierOptions`.
        state_dir: directory for the atomic JSON state checkpoint
            (None disables persistence).
        context_meta: context fingerprint folded into the state
            fingerprint, so stale state from a different seed/scale/
            engine is ignored instead of corrupting a resumed search.
        tracer: optional :class:`~repro.obs.events.Tracer` receiving
            ``controller_step`` / ``controller_degrade`` /
            ``controller_converged`` events.
        event_log: optional list every emitted event is also appended
            to as a plain dict (``kind`` + payload) — the channel the
            harness flushes into the run-history store, so controller
            decisions stay queryable even with live tracing disabled.
    """

    def __init__(
        self,
        workload: str,
        ladder: Tuple[VoltageStep, ...],
        options: FrontierOptions,
        *,
        state_dir: Optional[str] = None,
        context_meta: Optional[dict] = None,
        tracer=None,
        event_log: Optional[list] = None,
    ):
        self.workload = workload
        self.ladder = tuple(ladder)
        self.options = options
        self.tracer = tracer
        self.event_log = event_log
        self.lo = -1
        self.hi = len(self.ladder)
        self.evals: List[dict] = []
        self.degraded: Optional[str] = None
        self._converged_emitted = False
        self._replaying = False
        self._fingerprint = {
            "schema": _STATE_SCHEMA,
            "options": options.to_dict(),
            "ladder": ladder_fingerprint(self.ladder),
            "context": dict(context_meta or {}),
        }
        self._state_path = (
            os.path.join(state_dir, f"{workload}.json") if state_dir else None
        )
        self._load_state()

    # ------------------------------------------------------------- search

    @property
    def evaluated(self) -> Dict[int, dict]:
        """Evaluation history keyed by step index."""
        return {entry["step"]: entry for entry in self.evals}

    @property
    def done(self) -> bool:
        """Whether the search has finalized."""
        if self.degraded is not None:
            return True
        if len(self.evals) >= self.options.max_evals:
            return True
        return self.pending_step() is None

    def pending_step(self) -> Optional[VoltageStep]:
        """The next step to evaluate, or None when the search is over.

        Nominal (step 0) is always probed first — it verifies the
        workload's inherent approximation error fits the budget at
        all. After that, each probe bisects the open bracket.
        """
        if self.degraded is not None:
            return None
        if len(self.evals) >= self.options.max_evals:
            return None
        if self.lo < 0 and 0 not in self.evaluated:
            return self.ladder[0]
        if self.hi - self.lo <= 1:
            return None
        mid = (self.lo + self.hi) // 2
        if mid in self.evaluated:  # numeric safety; bracket should exclude
            return None
        return self.ladder[mid]

    def observe(
        self, step_index: int, error: float, energy_saved: float
    ) -> None:
        """Feed back one evaluated step; advances the bracket.

        Emits a ``controller_step`` event with the verdict, a
        ``controller_degrade`` event when the budget was blown (the
        next probe steps the voltage back up — or the workload falls
        back to precise annotation if nominal itself failed), and
        checkpoints the controller state atomically.
        """
        step = self.ladder[step_index]
        within = error <= self.options.error_budget
        entry = {
            "step": step_index,
            "error": error,
            "energy_saved": energy_saved,
            "verdict": "within" if within else "over",
        }
        self.evals.append(entry)
        if within:
            self.lo = max(self.lo, step_index)
        else:
            self.hi = min(self.hi, step_index)
        self._emit(
            "controller_step",
            step=step_index,
            vdd=step.vdd,
            read_rate=step.read_rate,
            error=error,
            budget=self.options.error_budget,
            energy_saved=energy_saved,
            verdict=entry["verdict"],
            lo=self.lo,
            hi=self.hi,
        )
        if not within:
            if step_index == 0:
                # Even the fault-free approximate config misses the
                # budget: no voltage step can help — degrade to fully
                # precise annotation (zero error, zero energy credit).
                self.degraded = "precise"
                self._emit(
                    "controller_degrade",
                    action="precise_fallback",
                    step=step_index,
                    error=error,
                    budget=self.options.error_budget,
                )
            else:
                self._emit(
                    "controller_degrade",
                    action="raise_voltage",
                    step=step_index,
                    error=error,
                    budget=self.options.error_budget,
                    ceiling=self.hi,
                )
        if not self._replaying:
            self._save_state()

    def result(self) -> FrontierResult:
        """Finalize the search into a :class:`FrontierResult`.

        Emits ``controller_converged`` (once) with the frontier and
        recommended operating point.
        """
        if self.degraded is not None:
            frontier = operating = -1
        else:
            frontier = self.lo
            operating = max(0, frontier - self.options.hysteresis)
        converged = self.degraded is not None or self.hi - self.lo <= 1
        result = FrontierResult(
            workload=self.workload,
            ladder=self.ladder,
            frontier=frontier,
            operating=operating,
            evals=list(self.evals),
            degraded=self.degraded,
            converged=converged,
        )
        if not self._converged_emitted:
            self._converged_emitted = True
            self._emit(
                "controller_converged",
                frontier=frontier,
                operating=operating,
                survivable_rate=result.survivable_rate,
                error=result.frontier_error,
                energy_saved=result.frontier_energy_saved,
                evals=len(self.evals),
                status=result.status,
            )
        return result

    # ------------------------------------------------------------ plumbing

    def _emit(self, kind: str, **fields) -> None:
        """Trace one controller decision.

        Fans out to the live tracer (when enabled) and to the
        history-store event log (when attached); a controller with
        neither stays silent.
        """
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(kind, workload=self.workload, **fields)
        if self.event_log is not None:
            self.event_log.append(
                {"kind": kind, "unit": self.workload,
                 "workload": self.workload, **fields}
            )

    def _save_state(self) -> None:
        """Checkpoint the bracket and eval history atomically."""
        if self._state_path is None:
            return
        from repro.obs.output import write_json

        write_json(
            self._state_path,
            {
                "fingerprint": self._fingerprint,
                "workload": self.workload,
                "lo": self.lo,
                "hi": self.hi,
                "evals": self.evals,
                "degraded": self.degraded,
            },
        )

    def _load_state(self) -> None:
        """Adopt a checkpointed search, guarding on the fingerprint.

        Restored evaluations are *replayed* through :meth:`observe`
        (emitting their ``controller_step`` / ``controller_degrade``
        events again), so the resumed run's event log carries the
        complete decision history — the history store always shows the
        full search, never just the post-kill tail.

        Unreadable state is skipped with a warning (the search simply
        restarts — every simulation it needs is still journaled, so a
        restart costs bookkeeping only); state written under different
        options/ladder/context is ignored the same way.
        """
        if self._state_path is None or not os.path.exists(self._state_path):
            return
        try:
            with open(self._state_path) as fh:
                state = json.load(fh)
        except (OSError, ValueError) as exc:
            log.warning(
                "skipping unreadable frontier state %s: %s",
                self._state_path, exc,
            )
            return
        if state.get("fingerprint") != self._fingerprint:
            log.warning(
                "frontier state %s was written under different options/"
                "context; restarting this workload's search",
                self._state_path,
            )
            return
        self._replaying = True
        try:
            for entry in state["evals"]:
                self.observe(
                    entry["step"],
                    error=entry["error"],
                    energy_saved=entry["energy_saved"],
                )
        finally:
            self._replaying = False
        log.info(
            "resumed frontier search for %s mid-bracket (lo=%d hi=%d, "
            "%d evals)", self.workload, self.lo, self.hi, len(self.evals),
        )
