"""Resilience layer: faults, energy frontier, checkpoint/resume, errors.

Five pillars (see ``docs/robustness.md``):

* :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection engine (bit flips, bursts, stuck-at cells) for the
  approximate data array, the conventional LLC and DRAM;
* :mod:`repro.resilience.energy` — the SRAM voltage-scaling model
  mapping supply-voltage steps onto fault rates and energy credits
  (the physical story behind the ``frontier`` experiment);
* :mod:`repro.resilience.controller` — the closed-loop
  :class:`ErrorBudgetController` searching the voltage ladder for the
  max survivable fault rate within a declared error budget, with
  graceful degradation and mid-bracket checkpoint/resume;
* :mod:`repro.resilience.checkpoint` — a crash-tolerant journal of
  completed (workload, config) results so killed sweeps resume
  byte-identically (``--resume``);
* :mod:`repro.errors` — the typed exception hierarchy the CLI maps to
  documented exit codes (re-exported here for convenience).
"""

from repro.errors import ConfigError, ReproError, SimulationFault, TraceFormatError
from repro.resilience.checkpoint import SweepJournal, context_fingerprint, open_journal
from repro.resilience.controller import (
    ErrorBudgetController,
    FrontierOptions,
    FrontierResult,
    controller_state_dir,
)
from repro.resilience.energy import (
    VoltageStep,
    energy_saved_fraction,
    voltage_ladder,
)
from repro.resilience.faults import (
    FAULT_TARGETS,
    TARGET_APPROX_DATA,
    TARGET_DRAM,
    TARGET_LLC,
    FaultConfig,
    FaultInjector,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FAULT_TARGETS",
    "TARGET_APPROX_DATA",
    "TARGET_DRAM",
    "TARGET_LLC",
    "VoltageStep",
    "voltage_ladder",
    "energy_saved_fraction",
    "ErrorBudgetController",
    "FrontierOptions",
    "FrontierResult",
    "controller_state_dir",
    "SweepJournal",
    "context_fingerprint",
    "open_journal",
    "ReproError",
    "ConfigError",
    "TraceFormatError",
    "SimulationFault",
]
