"""Resilience layer: fault injection, checkpoint/resume, typed errors.

Three pillars (see ``docs/robustness.md``):

* :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection engine (bit flips, bursts, stuck-at cells) for the
  approximate data array, the conventional LLC and DRAM;
* :mod:`repro.resilience.checkpoint` — a crash-tolerant journal of
  completed (workload, config) results so killed sweeps resume
  byte-identically (``--resume``);
* :mod:`repro.errors` — the typed exception hierarchy the CLI maps to
  documented exit codes (re-exported here for convenience).
"""

from repro.errors import ConfigError, ReproError, SimulationFault, TraceFormatError
from repro.resilience.checkpoint import SweepJournal, context_fingerprint, open_journal
from repro.resilience.faults import (
    FAULT_TARGETS,
    TARGET_APPROX_DATA,
    TARGET_DRAM,
    TARGET_LLC,
    FaultConfig,
    FaultInjector,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FAULT_TARGETS",
    "TARGET_APPROX_DATA",
    "TARGET_DRAM",
    "TARGET_LLC",
    "SweepJournal",
    "context_fingerprint",
    "open_journal",
    "ReproError",
    "ConfigError",
    "TraceFormatError",
    "SimulationFault",
]
