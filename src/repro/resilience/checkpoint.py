"""Checkpoint/resume journal for long sweeps.

A multi-hour ``--jobs N`` sweep used to be all-or-nothing: one killed
worker (OOM, preemption, Ctrl-C) threw away every completed
simulation. :class:`SweepJournal` makes sweeps resumable by journaling
each completed (workload, config) result to disk as it finishes:

* one pickle file per completed record, written atomically
  (tmp + ``os.replace``) so a crash mid-write can never corrupt an
  entry — a truncated leftover is skipped on load;
* a ``meta.json`` fingerprint of the context knobs that determine
  results (seed, scale, engine); resuming against a journal written
  under different knobs raises a typed
  :class:`~repro.errors.ConfigError` instead of silently mixing
  incompatible results;
* ``--resume`` loads every journaled record into the context's memo
  before the sweep starts, so the parallel prefetch (and the
  sequential drivers behind it) skip finished pairs — and because the
  memo merge path is the same one a live worker uses, a resumed
  sweep's output is byte-identical to an uninterrupted run (modulo
  wall-clock fields).

Passing a ``--checkpoint-dir`` ending in ``.zip`` selects the
single-file container instead (:class:`ZipSweepJournal`): every entry
becomes a deflated member of one archive — easier to ship around than
a directory of pickles — and resuming transparently adopts any loose
per-pair pickles left by an earlier directory journal at the same
path minus ``.zip``. The container trades the loose journal's
per-entry crash atomicity for single-file convenience: a crash while
appending can corrupt the archive's central directory, in which case
the damaged file is set aside as ``<path>.corrupt`` and the sweep
recomputes. :func:`compact_journal` packs an existing directory
journal into a container after the fact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.obs import get_logger

log = get_logger("resilience.checkpoint")

_META_FILENAME = "meta.json"
_SCHEMA = "repro-checkpoint/v1"


def context_fingerprint(ctx) -> dict:
    """The context knobs that determine simulation results."""
    return {
        "schema": _SCHEMA,
        "seed": ctx.seed,
        "scale": ctx.scale,
        "engine": ctx.engine or "default",
    }


def spec_digest(workload: str, spec) -> str:
    """Stable digest naming one (workload, config) pair on disk."""
    blob = json.dumps(
        {"workload": workload, "spec": spec.to_dict()}, sort_keys=True
    )
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


class SweepJournal:
    """On-disk journal of completed (workload, config) results.

    Args:
        directory: journal directory (created on first write).
        meta: context fingerprint (see :func:`context_fingerprint`);
            checked against an existing journal's ``meta.json``.

    Raises:
        ConfigError: the directory holds a journal written under a
            different (seed, scale, engine) fingerprint.
    """

    def __init__(self, directory: str, meta: dict):
        self.directory = directory
        self.meta = dict(meta)
        meta_path = os.path.join(directory, _META_FILENAME)
        if os.path.exists(meta_path):
            try:
                with open(meta_path) as fh:
                    existing = json.load(fh)
            except (OSError, ValueError):
                existing = None  # corrupt meta: rewritten below
            if existing is not None and existing != self.meta:
                raise ConfigError(
                    f"checkpoint was written under {existing}, current context "
                    f"is {self.meta}; use a different --checkpoint-dir or "
                    "delete the stale journal",
                    path=meta_path,
                )
        self._meta_written = False

    # -------------------------------------------------------------- writing

    def _ensure_meta(self) -> None:
        if self._meta_written:
            return
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, _META_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self._meta_written = True

    def _write(self, kind: str, workload: str, spec, payload) -> str:
        self._ensure_meta()
        name = f"{kind}-{workload}-{spec_digest(workload, spec)}.pkl"
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(
                {"kind": kind, "workload": workload, "spec": spec,
                 "payload": payload},
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(tmp, path)
        return path

    def record_run(self, workload: str, spec, record) -> str:
        """Journal one completed simulation record."""
        return self._write("run", workload, spec, record)

    def record_error(self, workload: str, spec, error: float) -> str:
        """Journal one completed output-error evaluation."""
        return self._write("error", workload, spec, error)

    # -------------------------------------------------------------- loading

    def load_into(self, ctx) -> Tuple[int, int]:
        """Merge journaled records into a context's memo.

        Already-memoized pairs and workloads outside the context are
        left untouched; unreadable entries (e.g. truncated by a crash
        before the atomic rename, or from an older code version) are
        skipped with a warning. Returns ``(runs, errors)`` adopted.
        """
        if not os.path.isdir(self.directory):
            return (0, 0)
        runs = errors = 0
        names = set(ctx.names)
        for filename in sorted(os.listdir(self.directory)):
            if not filename.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, filename)
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
                kind = entry["kind"]
                workload = entry["workload"]
                spec = entry["spec"]
                payload = entry["payload"]
            except Exception as exc:  # corrupt/stale entry: recompute it
                log.warning("skipping unreadable checkpoint %s: %s", path, exc)
                continue
            if workload not in names:
                continue
            key = (workload, spec)
            if kind == "run" and key not in ctx._runs:
                ctx._runs[key] = payload
                runs += 1
            elif kind == "error" and key not in ctx._errors:
                ctx._errors[key] = float(payload)
                errors += 1
        return (runs, errors)


class ZipSweepJournal(SweepJournal):
    """Single-file zip container variant of :class:`SweepJournal`.

    Selected by :func:`open_journal` when the checkpoint path ends in
    ``.zip``. Entries are the same pickles the directory journal
    writes, stored as deflated archive members; ``meta.json`` is a
    member too. Journal writes only ever happen in the parent process
    (workers return results over the pool), so append-mode access
    needs no cross-process locking.
    """

    def __init__(self, path: str, meta: dict):
        self.meta = dict(meta)
        self.directory = path  # container path; kept for log messages
        self._legacy_dir = path[: -len(".zip")]
        if os.path.exists(path):
            existing = self._read_meta(path)
            if existing is not None and existing != self.meta:
                raise ConfigError(
                    f"checkpoint was written under {existing}, current context "
                    f"is {self.meta}; use a different --checkpoint-dir or "
                    "delete the stale journal",
                    path=path,
                )
        self._meta_written = False

    def _read_meta(self, path: str) -> Optional[dict]:
        """Meta member of an existing container; quarantines corruption."""
        import zipfile

        try:
            with zipfile.ZipFile(path) as zf:
                if _META_FILENAME not in zf.namelist():
                    return None
                return json.loads(zf.read(_META_FILENAME))
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            quarantine = path + ".corrupt"
            log.warning(
                "checkpoint container %s is unreadable (%s); moving it to "
                "%s and recomputing", path, exc, quarantine,
            )
            os.replace(path, quarantine)
            return None

    def _ensure_meta(self) -> None:
        if self._meta_written:
            return
        import zipfile

        parent = os.path.dirname(os.path.abspath(self.directory))
        os.makedirs(parent, exist_ok=True)
        with zipfile.ZipFile(
            self.directory, "a", zipfile.ZIP_DEFLATED
        ) as zf:
            if _META_FILENAME not in zf.namelist():
                zf.writestr(
                    _META_FILENAME,
                    json.dumps(self.meta, indent=2, sort_keys=True) + "\n",
                )
        self._meta_written = True

    def _write(self, kind: str, workload: str, spec, payload) -> str:
        import zipfile

        self._ensure_meta()
        name = f"{kind}-{workload}-{spec_digest(workload, spec)}.pkl"
        blob = pickle.dumps(
            {"kind": kind, "workload": workload, "spec": spec,
             "payload": payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with zipfile.ZipFile(
            self.directory, "a", zipfile.ZIP_DEFLATED
        ) as zf:
            if name not in zf.namelist():  # results are deterministic
                zf.writestr(name, blob)
        return os.path.join(self.directory, name)

    def load_into(self, ctx) -> Tuple[int, int]:
        """Merge container members — and any loose legacy pickles —
        into the context's memo.

        A directory journal left at the container path minus ``.zip``
        (e.g. from a sweep run before switching to the container) is
        adopted transparently with the same fingerprint check.
        """
        import zipfile

        runs = errors = 0
        names = set(ctx.names)
        if os.path.exists(self.directory):
            try:
                zf = zipfile.ZipFile(self.directory)
            except (OSError, zipfile.BadZipFile) as exc:
                log.warning(
                    "skipping unreadable checkpoint container %s: %s",
                    self.directory, exc,
                )
                zf = None
            if zf is not None:
                with zf:
                    for member in sorted(zf.namelist()):
                        if not member.endswith(".pkl"):
                            continue
                        try:
                            entry = pickle.loads(zf.read(member))
                            kind = entry["kind"]
                            workload = entry["workload"]
                            spec = entry["spec"]
                            payload = entry["payload"]
                        except Exception as exc:
                            log.warning(
                                "skipping unreadable checkpoint member "
                                "%s!%s: %s", self.directory, member, exc,
                            )
                            continue
                        if workload not in names:
                            continue
                        key = (workload, spec)
                        if kind == "run" and key not in ctx._runs:
                            ctx._runs[key] = payload
                            runs += 1
                        elif kind == "error" and key not in ctx._errors:
                            ctx._errors[key] = float(payload)
                            errors += 1
        if os.path.isdir(self._legacy_dir):
            legacy = SweepJournal(self._legacy_dir, self.meta)
            adopted_runs, adopted_errors = legacy.load_into(ctx)
            if adopted_runs or adopted_errors:
                log.info(
                    "adopted %d runs / %d errors from loose journal %s",
                    adopted_runs, adopted_errors, self._legacy_dir,
                )
            runs += adopted_runs
            errors += adopted_errors
        return (runs, errors)


def compact_journal(directory: str, zip_path: Optional[str] = None) -> str:
    """Pack a directory journal into a single-file zip container.

    Copies ``meta.json`` and every readable ``.pkl`` entry into
    ``zip_path`` (default: ``<directory>.zip``, members deflated) and
    returns the container path. The source directory is left in place;
    a later ``--checkpoint-dir <directory>.zip --resume`` would adopt
    it anyway, but compacting first makes the sweep state one file.
    """
    import zipfile

    if zip_path is None:
        zip_path = directory.rstrip("/\\") + ".zip"
    if not os.path.isdir(directory):
        raise ConfigError(
            "no checkpoint directory to compact", path=directory
        )
    with zipfile.ZipFile(zip_path, "w", zipfile.ZIP_DEFLATED) as zf:
        for filename in sorted(os.listdir(directory)):
            if filename != _META_FILENAME and not filename.endswith(".pkl"):
                continue
            path = os.path.join(directory, filename)
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError as exc:
                log.warning("compact: skipping unreadable %s: %s", path, exc)
                continue
            zf.writestr(filename, blob)
    return zip_path


def open_journal(directory: str, ctx) -> Optional[SweepJournal]:
    """Build a journal for ``ctx`` at ``directory`` (None disables).

    A path ending in ``.zip`` selects the single-file
    :class:`ZipSweepJournal` container; anything else the loose
    per-pair pickle directory.
    """
    if not directory:
        return None
    if directory.endswith(".zip"):
        return ZipSweepJournal(directory, context_fingerprint(ctx))
    return SweepJournal(directory, context_fingerprint(ctx))
