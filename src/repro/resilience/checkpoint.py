"""Checkpoint/resume journal for long sweeps.

A multi-hour ``--jobs N`` sweep used to be all-or-nothing: one killed
worker (OOM, preemption, Ctrl-C) threw away every completed
simulation. :class:`SweepJournal` makes sweeps resumable by journaling
each completed (workload, config) result to disk as it finishes:

* one pickle file per completed record, written atomically
  (tmp + ``os.replace``) so a crash mid-write can never corrupt an
  entry — a truncated leftover is skipped on load;
* a ``meta.json`` fingerprint of the context knobs that determine
  results (seed, scale, engine); resuming against a journal written
  under different knobs raises a typed
  :class:`~repro.errors.ConfigError` instead of silently mixing
  incompatible results;
* ``--resume`` loads every journaled record into the context's memo
  before the sweep starts, so the parallel prefetch (and the
  sequential drivers behind it) skip finished pairs — and because the
  memo merge path is the same one a live worker uses, a resumed
  sweep's output is byte-identical to an uninterrupted run (modulo
  wall-clock fields).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.obs import get_logger

log = get_logger("resilience.checkpoint")

_META_FILENAME = "meta.json"
_SCHEMA = "repro-checkpoint/v1"


def context_fingerprint(ctx) -> dict:
    """The context knobs that determine simulation results."""
    return {
        "schema": _SCHEMA,
        "seed": ctx.seed,
        "scale": ctx.scale,
        "engine": ctx.engine or "default",
    }


def spec_digest(workload: str, spec) -> str:
    """Stable digest naming one (workload, config) pair on disk."""
    blob = json.dumps(
        {"workload": workload, "spec": spec.to_dict()}, sort_keys=True
    )
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


class SweepJournal:
    """On-disk journal of completed (workload, config) results.

    Args:
        directory: journal directory (created on first write).
        meta: context fingerprint (see :func:`context_fingerprint`);
            checked against an existing journal's ``meta.json``.

    Raises:
        ConfigError: the directory holds a journal written under a
            different (seed, scale, engine) fingerprint.
    """

    def __init__(self, directory: str, meta: dict):
        self.directory = directory
        self.meta = dict(meta)
        meta_path = os.path.join(directory, _META_FILENAME)
        if os.path.exists(meta_path):
            try:
                with open(meta_path) as fh:
                    existing = json.load(fh)
            except (OSError, ValueError):
                existing = None  # corrupt meta: rewritten below
            if existing is not None and existing != self.meta:
                raise ConfigError(
                    f"checkpoint was written under {existing}, current context "
                    f"is {self.meta}; use a different --checkpoint-dir or "
                    "delete the stale journal",
                    path=meta_path,
                )
        self._meta_written = False

    # -------------------------------------------------------------- writing

    def _ensure_meta(self) -> None:
        if self._meta_written:
            return
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, _META_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self._meta_written = True

    def _write(self, kind: str, workload: str, spec, payload) -> str:
        self._ensure_meta()
        name = f"{kind}-{workload}-{spec_digest(workload, spec)}.pkl"
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(
                {"kind": kind, "workload": workload, "spec": spec,
                 "payload": payload},
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(tmp, path)
        return path

    def record_run(self, workload: str, spec, record) -> str:
        """Journal one completed simulation record."""
        return self._write("run", workload, spec, record)

    def record_error(self, workload: str, spec, error: float) -> str:
        """Journal one completed output-error evaluation."""
        return self._write("error", workload, spec, error)

    # -------------------------------------------------------------- loading

    def load_into(self, ctx) -> Tuple[int, int]:
        """Merge journaled records into a context's memo.

        Already-memoized pairs and workloads outside the context are
        left untouched; unreadable entries (e.g. truncated by a crash
        before the atomic rename, or from an older code version) are
        skipped with a warning. Returns ``(runs, errors)`` adopted.
        """
        if not os.path.isdir(self.directory):
            return (0, 0)
        runs = errors = 0
        names = set(ctx.names)
        for filename in sorted(os.listdir(self.directory)):
            if not filename.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, filename)
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
                kind = entry["kind"]
                workload = entry["workload"]
                spec = entry["spec"]
                payload = entry["payload"]
            except Exception as exc:  # corrupt/stale entry: recompute it
                log.warning("skipping unreadable checkpoint %s: %s", path, exc)
                continue
            if workload not in names:
                continue
            key = (workload, spec)
            if kind == "run" and key not in ctx._runs:
                ctx._runs[key] = payload
                runs += 1
            elif kind == "error" and key not in ctx._errors:
                ctx._errors[key] = float(payload)
                errors += 1
        return (runs, errors)


def open_journal(directory: str, ctx) -> Optional[SweepJournal]:
    """Build a journal for ``ctx`` at ``directory`` (None disables)."""
    if not directory:
        return None
    return SweepJournal(directory, context_fingerprint(ctx))
