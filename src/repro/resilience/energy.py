"""Voltage scaling model: SRAM Vdd steps, fault rates, energy credits.

Doppelgänger's approximate data array tolerates wrong bits, which is
what makes aggressive Vdd scaling of that one structure attractive:
dynamic energy falls quadratically with supply voltage while the
per-bit failure probability rises exponentially as cells approach
their retention margin (the classic SRAM Vmin trade-off; the
error-analysis framing follows the approximate-multiplier literature,
arXiv:1908.01343, and the quality-management taxonomy of the
approximate-computing survey, arXiv:2307.11124).

This module is the bridge between that physical story and the existing
deterministic fault layer (:mod:`repro.resilience.faults`):

* a :class:`VoltageStep` names one operating point — its Vdd, the
  per-bit fault probability the margin loss implies, the per-read
  fault rate over a 64-bit storage word, and the dynamic/leakage
  energy scale factors relative to nominal;
* :func:`voltage_ladder` builds the ordered ladder of steps (nominal
  first) that the :class:`~repro.resilience.controller.ErrorBudgetController`
  searches;
* :meth:`VoltageStep.fault_config` maps a step onto a
  :class:`~repro.resilience.faults.FaultConfig`, so every existing
  injection/determinism guarantee carries over unchanged;
* :func:`energy_saved_fraction` turns a step into an *energy credit*:
  the fraction of a run's total LLC energy saved by holding only the
  approximate data array at the step's Vdd (tag, MTag and precise
  structures must stay correct, so they remain at nominal voltage).

The numbers: per-bit failure probability grows one decade per
:data:`DECADE_V` volts of droop below :data:`V_NOM` starting from
:data:`P_BIT_NOM` (a nominal-voltage soft-error floor small enough to
round to zero), dynamic energy scales as ``(V/V_nom)**2`` (CV²), and
leakage power scales linearly with V (first-order; sub-threshold
effects would make scaling look even better). Rates below
:data:`MIN_READ_RATE` are floored to exactly ``0.0`` so the nominal
step normalizes to the fault-free spec — a ladder's step 0 memoizes
and labels identically to a plain fault-free configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.resilience.faults import TARGET_APPROX_DATA, TARGET_DRAM, FaultConfig

#: Nominal SRAM supply voltage (V).
V_NOM = 1.0
#: Lowest modeled supply voltage (V) — far past any real Vmin.
V_MIN = 0.5
#: Per-bit per-read failure probability at nominal voltage.
P_BIT_NOM = 1e-9
#: Volts of droop per decade of per-bit failure probability.
DECADE_V = 0.06
#: Bits per storage word (the functional model stores float64 values).
WORD_BITS = 64
#: Per-read rates below this floor to exactly zero (fault-free step).
MIN_READ_RATE = 1e-7

#: Structures that run at scaled voltage: only the approximate data
#: arrays — tag/MTag/precise structures hold architectural state and
#: stay at nominal Vdd.
APPROX_DATA_STRUCTURES = ("dopp_data", "uni_data")

#: Structures a voltage-scaled data array exposes to fault injection
#: (approximate DRAM transfers ride along unprotected, as in the
#: ``faultsweep`` experiment).
DEFAULT_FAULT_TARGETS = (TARGET_APPROX_DATA, TARGET_DRAM)


def p_bit(vdd: float, v_nom: float = V_NOM) -> float:
    """Per-bit per-read failure probability at supply voltage ``vdd``.

    One decade of probability per :data:`DECADE_V` volts of droop
    below ``v_nom``, from the :data:`P_BIT_NOM` floor; clamped to 1.
    """
    if vdd >= v_nom:
        return P_BIT_NOM
    return min(1.0, P_BIT_NOM * 10.0 ** ((v_nom - vdd) / DECADE_V))


def read_rate(vdd: float, v_nom: float = V_NOM) -> float:
    """Per-read fault probability of one ``WORD_BITS``-bit word.

    ``1 - (1 - p_bit)**64``, floored to exactly 0.0 below
    :data:`MIN_READ_RATE` so nominal-voltage steps normalize to the
    fault-free configuration.
    """
    rate = 1.0 - (1.0 - p_bit(vdd, v_nom)) ** WORD_BITS
    return rate if rate >= MIN_READ_RATE else 0.0


def dynamic_scale(vdd: float, v_nom: float = V_NOM) -> float:
    """Dynamic-energy scale factor vs nominal (CV²: quadratic)."""
    return (vdd / v_nom) ** 2


def leakage_scale(vdd: float, v_nom: float = V_NOM) -> float:
    """Leakage-power scale factor vs nominal (first-order: linear)."""
    return vdd / v_nom


@dataclass(frozen=True)
class VoltageStep:
    """One operating point of the voltage ladder.

    Attributes:
        index: position in the ladder (0 = nominal).
        vdd: supply voltage of the approximate data array (V).
        p_bit: per-bit per-read failure probability at this Vdd.
        read_rate: per-read fault probability over one 64-bit word
            (0.0 exactly when the step is effectively fault-free).
        flip_bits: bits flipped per faulty read (expected faulty bits
            per word, at least 1).
        dynamic_scale: dynamic-energy factor vs nominal (``<= 1``).
        leakage_scale: leakage-power factor vs nominal (``<= 1``).
    """

    index: int
    vdd: float
    p_bit: float
    read_rate: float
    flip_bits: int
    dynamic_scale: float
    leakage_scale: float

    def fault_config(
        self,
        seed: int,
        targets: Tuple[str, ...] = DEFAULT_FAULT_TARGETS,
    ) -> Optional[FaultConfig]:
        """The step's deterministic fault model (None = fault-free).

        The returned config rides the existing splitmix64 injection
        machinery, so a voltage step inherits every determinism
        guarantee of :mod:`repro.resilience.faults`.
        """
        if self.read_rate <= 0.0:
            return None
        return FaultConfig(
            seed=seed,
            read_rate=self.read_rate,
            flip_bits=self.flip_bits,
            targets=targets,
        )

    def to_dict(self) -> dict:
        """JSON-friendly form (controller checkpoints, BENCH tables)."""
        return {
            "index": self.index,
            "vdd": self.vdd,
            "p_bit": self.p_bit,
            "read_rate": self.read_rate,
            "flip_bits": self.flip_bits,
            "dynamic_scale": self.dynamic_scale,
            "leakage_scale": self.leakage_scale,
        }


def voltage_ladder(
    steps: int = 8, v_nom: float = V_NOM, v_min: float = V_MIN
) -> Tuple[VoltageStep, ...]:
    """The ordered ladder of voltage steps the controller searches.

    ``steps`` evenly spaced supply voltages from ``v_nom`` (step 0,
    fault-free) down to ``v_min`` (the most aggressive point). Fault
    rate is non-decreasing and energy scale non-increasing along the
    ladder — the monotone structure the controller's bracketing search
    relies on.

    Raises:
        ConfigError: fewer than 2 steps, or a non-increasing voltage
            range.
    """
    if steps < 2:
        raise ConfigError(
            f"must be >= 2 (nominal plus at least one scaled step), "
            f"got {steps}",
            field="voltage_steps",
        )
    if not 0.0 < v_min < v_nom:
        raise ConfigError(
            f"need 0 < v_min < v_nom, got v_min={v_min}, v_nom={v_nom}",
            field="voltage_steps",
        )
    ladder = []
    span = (v_nom - v_min) / (steps - 1)
    for i in range(steps):
        vdd = v_nom - i * span
        p = p_bit(vdd, v_nom)
        ladder.append(
            VoltageStep(
                index=i,
                vdd=round(vdd, 6),
                p_bit=p,
                read_rate=read_rate(vdd, v_nom),
                flip_bits=min(WORD_BITS, max(1, round(WORD_BITS * p))),
                dynamic_scale=dynamic_scale(vdd, v_nom),
                leakage_scale=leakage_scale(vdd, v_nom),
            )
        )
    return tuple(ladder)


def ladder_fingerprint(ladder: Tuple[VoltageStep, ...]) -> dict:
    """The knobs that determine a ladder (controller checkpoint guard)."""
    return {
        "steps": len(ladder),
        "v_nom": ladder[0].vdd,
        "v_min": ladder[-1].vdd,
        "p_bit_nom": P_BIT_NOM,
        "decade_v": DECADE_V,
    }


def approx_energy_shares(record, model=None) -> Tuple[float, float]:
    """Shares of one run's LLC energy owned by the approximate array.

    Returns ``(dynamic_share, leakage_share)``: the fraction of the
    run's dynamic energy spent in the approximate data ports (the
    MTag port stays nominal — its bits are architectural), and the
    fraction of leakage power attributable to the approximate data
    bits (pro-rated by bit count within the data structure).

    Args:
        record: a :class:`~repro.harness.runner.RunRecord` of a
            Doppelgänger configuration.
        model: optional :class:`~repro.energy.accounting.EnergyModel`
            (a fresh calibrated model by default).
    """
    from repro.energy.accounting import EnergyModel

    model = model or EnergyModel()
    report = record.energy
    dyn_approx = sum(
        pj
        for (struct, port), pj in report.breakdown.items()
        if struct in APPROX_DATA_STRUCTURES and port == "data"
    )
    dyn_share = dyn_approx / report.dynamic_pj if report.dynamic_pj else 0.0
    structures = model.structures_for(record.llc)
    total_leak = model.cacti.leakage_mw_total(structures.values())
    approx_leak = 0.0
    for name, structure in structures.items():
        if name in APPROX_DATA_STRUCTURES and structure.has_data:
            data_frac = structure.data_bits_total / (
                structure.tag_bits_total + structure.data_bits_total
            )
            approx_leak += model.cacti.leakage_mw(structure) * data_frac
    leak_share = approx_leak / total_leak if total_leak else 0.0
    return dyn_share, leak_share


def energy_saved_fraction(record, step: VoltageStep, model=None) -> float:
    """Energy credit: fraction of total LLC energy saved at ``step``.

    Only the approximate data array scales — its dynamic energy by
    ``step.dynamic_scale`` and its leakage share by
    ``step.leakage_scale`` — so the credit is the approximate shares
    weighted by ``1 - scale``, over the run's total (dynamic +
    leakage) energy. Step 0 (nominal) always yields 0.0.
    """
    dyn_share, leak_share = approx_energy_shares(record, model)
    report = record.energy
    total = report.total_pj
    if not total:
        return 0.0
    saved = report.dynamic_pj * dyn_share * (1.0 - step.dynamic_scale)
    saved += report.leakage_energy_pj * leak_share * (1.0 - step.leakage_scale)
    return saved / total
