"""Deterministic fault injection for the approximate hierarchy.

Doppelgänger's premise is that the approximate data array tolerates
imprecision — which invites running it at lower voltage or with weaker
ECC, exactly the regime where soft errors appear. This module models
that regime with three seeded fault mechanisms:

* **per-read bit flips** (``read_rate``) — each read of a targeted
  structure independently experiences ``flip_bits`` random bit flips
  with this probability (transient/soft errors);
* **bursts** (``burst_rate`` × ``burst_len``) — a read starts a burst
  with probability ``burst_rate``; the following ``burst_len`` reads of
  that structure all fault (the per-cycle/retention-failure proxy:
  a weak row stays weak for a window);
* **stuck-at bits** (``stuck_bits``) — permanently faulty cell
  positions (derived from the seed, half stuck-at-1, half stuck-at-0)
  forced on every value read from the approximate data array.

Faults are injectable into three targets: the approximate data array
(``approx_data``), the conventional precise LLC structures (``llc``)
and DRAM (``dram``). The *consequence* of a fault follows the ECC
story of each structure (see ``docs/robustness.md``):

* precise structures (``llc``, and ``dram`` reads of precise lines)
  are ECC-protected — a fault is **detected** and the line refetched,
  costing latency and off-chip traffic but never correctness;
* the approximate data array (and ``dram`` fills of approximate
  lines) runs without protection — a fault is **silent**, corrupting
  the values the functional model returns and therefore the
  application's output quality.

Determinism: every decision comes from a counter-based splitmix64
hash of ``(seed, site, access index)`` — no shared RNG stream — so the
same :class:`FaultConfig` produces identical faults across runs,
engines, and ``--jobs 1`` vs ``--jobs 4`` (each (workload, config)
run owns its own injector and its access order is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError

#: The structures faults can be injected into.
TARGET_APPROX_DATA = "approx_data"
TARGET_LLC = "llc"
TARGET_DRAM = "dram"
FAULT_TARGETS = (TARGET_APPROX_DATA, TARGET_LLC, TARGET_DRAM)

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """One splitmix64 mixing round (the PRNG behind the fault streams)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _hash(seed: int, site_idx: int, counter: int, salt: int) -> int:
    """Deterministic 64-bit hash of one (site, access, purpose) triple."""
    return splitmix64(
        splitmix64(seed & _MASK64) ^ (site_idx << 56) ^ (salt << 48) ^ counter
    )


def _uniform(h: int) -> float:
    """Map a 64-bit hash to [0, 1)."""
    return (h >> 11) / float(1 << 53)


@dataclass(frozen=True)
class FaultConfig:
    """Seeded fault-model knobs (hashable; part of a ``ConfigSpec``).

    Attributes:
        seed: fault-stream seed (independent of the data seed).
        read_rate: per-read probability of a transient multi-bit flip.
        flip_bits: bits flipped per faulty read.
        burst_rate: per-read probability of *starting* a fault burst.
        burst_len: reads per burst (every one faults).
        stuck_bits: permanently faulty bit positions in the
            approximate data array (0 disables).
        targets: structures to inject into — a subset of
            ``("approx_data", "llc", "dram")``; normalized to a sorted
            tuple so equal configs hash equal.
    """

    seed: int = 0
    read_rate: float = 0.0
    flip_bits: int = 1
    burst_rate: float = 0.0
    burst_len: int = 8
    stuck_bits: int = 0
    targets: Tuple[str, ...] = (TARGET_APPROX_DATA,)

    def __post_init__(self):
        for name in ("read_rate", "burst_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"must be a probability in [0, 1], got {rate}", field=name
                )
        if self.flip_bits < 1 or self.flip_bits > 64:
            raise ConfigError(
                f"must be in [1, 64], got {self.flip_bits}", field="flip_bits"
            )
        if self.burst_len < 1:
            raise ConfigError(
                f"must be >= 1, got {self.burst_len}", field="burst_len"
            )
        if self.stuck_bits < 0 or self.stuck_bits > 64:
            raise ConfigError(
                f"must be in [0, 64], got {self.stuck_bits}", field="stuck_bits"
            )
        normalized = tuple(sorted(set(self.targets)))
        unknown = [t for t in normalized if t not in FAULT_TARGETS]
        if unknown:
            raise ConfigError(
                f"unknown fault target(s) {unknown}; choose from "
                f"{list(FAULT_TARGETS)}",
                field="targets",
            )
        object.__setattr__(self, "targets", normalized)

    @property
    def active(self) -> bool:
        """Whether this config can ever produce a fault.

        An inactive config (all rates zero, no stuck bits, or no
        targets) is normalized away by
        :meth:`~repro.harness.runner.ConfigSpec.with_faults` so a
        zero-rate sweep stays bit-identical to one with faults
        disabled.
        """
        return bool(self.targets) and (
            self.read_rate > 0.0 or self.burst_rate > 0.0 or self.stuck_bits > 0
        )

    def label(self) -> str:
        """Short deterministic suffix for config labels."""
        parts = [f"s{self.seed}"]
        if self.read_rate > 0.0:
            parts.append(f"r{self.read_rate:g}x{self.flip_bits}")
        if self.burst_rate > 0.0:
            parts.append(f"b{self.burst_rate:g}x{self.burst_len}")
        if self.stuck_bits > 0:
            parts.append(f"k{self.stuck_bits}")
        codes = {TARGET_APPROX_DATA: "ad", TARGET_LLC: "llc", TARGET_DRAM: "dram"}
        parts.append("+".join(codes[t] for t in self.targets))
        return "faults(" + ",".join(parts) + ")"

    def to_dict(self) -> dict:
        """JSON-friendly form (see ``docs/api.md``)."""
        return {
            "seed": self.seed,
            "read_rate": self.read_rate,
            "flip_bits": self.flip_bits,
            "burst_rate": self.burst_rate,
            "burst_len": self.burst_len,
            "stuck_bits": self.stuck_bits,
            "targets": list(self.targets),
        }

    #: Field -> scalar type of the :meth:`to_dict` schema (``targets``
    #: is handled separately — it is a sequence of target names).
    _SCALAR_FIELDS = {
        "seed": int,
        "read_rate": float,
        "flip_bits": int,
        "burst_rate": float,
        "burst_len": int,
        "stuck_bits": int,
    }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultConfig":
        """Rebuild a config from its :meth:`to_dict` form.

        The exact round-trip counterpart controller checkpoints,
        history-store provenance rows and BENCH JSON reconstruct
        configs through: ``FaultConfig.from_dict(cfg.to_dict()) ==
        cfg`` for every valid config. Missing fields take their
        defaults; unknown fields, wrong types and out-of-range values
        raise :class:`~repro.errors.ConfigError` naming the offending
        field (range checks come from ``__post_init__``).
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"expected a fault-config mapping, got "
                f"{type(data).__name__}",
                field="faults",
            )
        unknown = sorted(
            k for k in data if k not in cls._SCALAR_FIELDS and k != "targets"
        )
        if unknown:
            raise ConfigError(
                f"unknown fault config field(s) {unknown}; expected "
                f"{sorted([*cls._SCALAR_FIELDS, 'targets'])}",
                field=unknown[0],
            )
        kwargs = {}
        for name, cast in cls._SCALAR_FIELDS.items():
            if name not in data:
                continue
            value = data[name]
            try:
                kwargs[name] = cast(value)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"expected {cast.__name__}, got {value!r}", field=name
                ) from None
        if "targets" in data:
            targets = data["targets"]
            if isinstance(targets, str) or not isinstance(
                targets, (list, tuple)
            ):
                raise ConfigError(
                    f"expected a list of target names, got {targets!r}",
                    field="targets",
                )
            kwargs["targets"] = tuple(targets)
        return cls(**kwargs)


@dataclass
class SiteStats:
    """Per-target fault accounting."""

    reads: int = 0
    faults: int = 0
    bits_flipped: int = 0
    detected: int = 0

    def as_dict(self) -> dict:
        return {
            "reads": self.reads,
            "faults": self.faults,
            "bits_flipped": self.bits_flipped,
            "detected": self.detected,
        }


@dataclass
class _SiteState:
    """Mutable per-target decision state."""

    counter: int = 0
    burst_remaining: int = 0
    stats: SiteStats = field(default_factory=SiteStats)


class FaultInjector:
    """Deterministic, seeded fault source for one simulation run.

    One injector is created per (workload, config) evaluation — the
    timing simulation and the functional error evaluation each get
    their own — so fault streams never leak across runs.

    Args:
        config: the (active) :class:`FaultConfig`.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self._site_idx = {t: i for i, t in enumerate(FAULT_TARGETS)}
        self._sites: Dict[str, _SiteState] = {
            t: _SiteState() for t in config.targets
        }
        # Stuck-at masks over the 64-bit storage word, derived from the
        # seed: even draws stick a bit at 1 (OR mask), odd at 0 (AND).
        or_mask = 0
        and_mask = _MASK64
        for i in range(config.stuck_bits):
            h = _hash(config.seed, 7, i, 5)
            bit = 1 << (h % 64)
            if (h >> 8) & 1:
                or_mask |= bit
            else:
                and_mask &= ~bit
        self._stuck_or = np.uint64(or_mask)
        self._stuck_and = np.uint64(and_mask)
        self._has_stuck = config.stuck_bits > 0

    # ------------------------------------------------------------- decisions

    def targets(self, site: str) -> bool:
        """Whether ``site`` is under fault injection."""
        return site in self._sites

    def _decide(self, st: _SiteState, site_idx: int) -> bool:
        """Advance one read at a site; True if it experiences a fault."""
        cfg = self.config
        st.counter += 1
        if st.burst_remaining > 0:
            st.burst_remaining -= 1
            return True
        faulty = False
        if cfg.read_rate > 0.0:
            faulty = _uniform(_hash(cfg.seed, site_idx, st.counter, 1)) < cfg.read_rate
        if cfg.burst_rate > 0.0 and (
            _uniform(_hash(cfg.seed, site_idx, st.counter, 2)) < cfg.burst_rate
        ):
            st.burst_remaining = cfg.burst_len - 1
            faulty = True
        return faulty

    # ------------------------------------------------------- timing (detected)

    def detected(self, site: str) -> bool:
        """One ECC-protected read of ``site``: did it detect a fault?

        Used by the timing simulation for precise structures: a
        detected fault costs a DRAM refetch (latency + traffic) but is
        always corrected. Returns False for untargeted sites.
        """
        st = self._sites.get(site)
        if st is None:
            return False
        st.stats.reads += 1
        if self._decide(st, self._site_idx[site]):
            st.stats.faults += 1
            st.stats.detected += 1
            return True
        return False

    def silent(self, site: str) -> bool:
        """One unprotected read of ``site``: did it silently fault?

        Used by the timing simulation for the approximate data array,
        where a fault has no timing consequence (nothing detects it) —
        only the count is kept; the value-level corruption happens in
        the functional model via :meth:`corrupt`.
        """
        st = self._sites.get(site)
        if st is None:
            return False
        st.stats.reads += 1
        if self._decide(st, self._site_idx[site]):
            st.stats.faults += 1
            st.stats.bits_flipped += self.config.flip_bits
            return True
        return False

    # ------------------------------------------------------ values (silent)

    def corrupt(self, site: str, values: np.ndarray) -> np.ndarray:
        """Apply silent corruption to one block of float64 values.

        Models one read of an unprotected structure: stuck-at bits (for
        the approximate data array) are forced on every read; with the
        configured rates, ``flip_bits`` random bit positions of random
        elements additionally flip. Returns ``values`` unchanged (same
        object) when nothing fires, else a corrupted copy — the caller
        must not assume mutation.
        """
        st = self._sites.get(site)
        if st is None:
            return values
        st.stats.reads += 1
        faulty = self._decide(st, self._site_idx[site])
        apply_stuck = self._has_stuck and site == TARGET_APPROX_DATA
        if not faulty and not apply_stuck:
            return values
        out = np.array(values, dtype=np.float64, copy=True)
        bits = out.view(np.uint64)
        if apply_stuck:
            bits |= self._stuck_or
            bits &= self._stuck_and
        if faulty:
            cfg = self.config
            st.stats.faults += 1
            st.stats.bits_flipped += cfg.flip_bits
            site_idx = self._site_idx[site]
            for k in range(cfg.flip_bits):
                h = _hash(cfg.seed, site_idx, st.counter, 16 + k)
                elem = h % out.size
                bit = np.uint64(1) << np.uint64((h >> 32) % 64)
                bits[elem] ^= bit
        return out

    # ------------------------------------------------------------- reporting

    def stats(self, site: str) -> Optional[SiteStats]:
        """Counters for one site (None when untargeted)."""
        st = self._sites.get(site)
        return st.stats if st is not None else None

    def total_faults(self) -> int:
        """Faults injected across every site."""
        return sum(s.stats.faults for s in self._sites.values())

    def summary(self) -> dict:
        """JSON-friendly fault report (config + per-site counters).

        Site keys are sorted so serialized output is deterministic.
        """
        return {
            "config": self.config.to_dict(),
            "sites": {
                site: self._sites[site].stats.as_dict()
                for site in sorted(self._sites)
            },
        }

    def as_metrics(self) -> dict:
        """Flat counter dict for the obs metrics registry."""
        out = {}
        for site in sorted(self._sites):
            for key, val in self._sites[site].stats.as_dict().items():
                out[f"{site}.{key}"] = val
        return out
