"""Typed exception hierarchy for the reproduction.

Every error the toolkit raises on *user input* — malformed traces,
invalid configurations, simulation-time faults — derives from
:class:`ReproError` and carries structured context (file path, line,
field) plus a documented process exit code, so the CLI can map any
failure to a one-line message and a distinct status instead of a raw
traceback (see ``docs/robustness.md``):

==========================  =========  =================================
exception                   exit code  raised for
==========================  =========  =================================
:class:`ConfigError`        2          invalid configuration / usage
:class:`TraceFormatError`   3          unreadable or malformed trace
:class:`SimulationFault`    4          simulation failed on both engines
:class:`Cancelled`          130        run cancelled (signal / job API)
==========================  =========  =================================

:class:`ConfigError` and :class:`TraceFormatError` also subclass
:class:`ValueError` (and :class:`SimulationFault` subclasses
:class:`RuntimeError`) so pre-existing ``except ValueError`` callers
and tests keep working unchanged.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for typed, user-facing errors.

    Args:
        message: human-readable description (no context prefix).
        path: file the error was detected in, if any.
        line: 1-based line (or record) number within ``path``.
        field: configuration field or trace array the error concerns.
    """

    #: Process exit status the CLI maps this error class to.
    exit_code = 1

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        line: Optional[int] = None,
        field: Optional[str] = None,
    ):
        super().__init__(message)
        self.message = message
        self.path = path
        self.line = line
        self.field = field

    def context(self) -> str:
        """The ``path:line`` / ``field`` prefix, empty when absent."""
        parts = []
        if self.path is not None:
            loc = str(self.path)
            if self.line is not None:
                loc += f":{self.line}"
            parts.append(loc)
        if self.field is not None:
            parts.append(f"field {self.field!r}")
        return ": ".join(parts)

    def __str__(self) -> str:
        prefix = self.context()
        return f"{prefix}: {self.message}" if prefix else self.message


class ConfigError(ReproError, ValueError):
    """Invalid configuration or usage (exit code 2).

    Raised by the config dataclasses (:mod:`repro.core.config`,
    :class:`~repro.resilience.faults.FaultConfig`,
    :class:`~repro.hierarchy.system.SystemConfig`), the workload
    registry, and CLI argument handling. ``field`` names the offending
    parameter.
    """

    exit_code = 2


class UnknownExperimentError(ConfigError):
    """An experiment name absent from the strategy registry (exit code 2).

    Raised by :meth:`repro.harness.strategy.StrategyRegistry.get`
    instead of a raw ``KeyError``; the message lists every registered
    name. Subclasses :class:`ConfigError` (and therefore
    :class:`ValueError`), so it inherits the configuration exit code
    and pre-existing ``except ValueError`` callers keep working.
    """

    def __init__(self, name: str, known=()):
        """Record the unknown ``name`` and the ``known`` registry names."""
        super().__init__(
            f"unknown experiment {name!r}; choose from {list(known)}",
            field="experiment",
        )
        self.name = name
        self.known = list(known)


class TraceFormatError(ReproError, ValueError):
    """Unreadable or malformed trace input (exit code 3).

    Raised by :func:`repro.trace.io.load_trace` with the file path and
    the missing/invalid array in ``field``.
    """

    exit_code = 3


class SimulationFault(ReproError, RuntimeError):
    """A simulation failed and could not be recovered (exit code 4).

    Raised by the harness when a run fails on the reference engine too
    (after the batched engine already fell back — see
    ``docs/robustness.md``), or when a parallel sweep exhausts its
    retries. The original exception is chained as ``__cause__``.
    """

    exit_code = 4


class Cancelled(ReproError):
    """A run was cancelled before completing (exit code 130).

    Raised by the parallel harness when a sweep is interrupted — by
    SIGINT/SIGTERM (see
    :func:`repro.harness.parallel.cancellation_signals`) or by a
    :class:`~repro.harness.parallel.CancelToken` set programmatically,
    e.g. through the serve daemon's ``DELETE /jobs/<id>`` endpoint.
    Cancellation is a *clean* outcome: the worker pool is torn down,
    every already-completed (workload, config) record has been merged
    and journaled, and the exit code follows the 128+SIGINT shell
    convention instead of a raw ``KeyboardInterrupt`` traceback.
    """

    exit_code = 130
