"""Value-based cache optimization baselines (Sec. 5.1, Fig. 8).

The paper compares Doppelgänger's storage savings against two prior
techniques, both implemented here from their original papers:

* :mod:`repro.compression.bdi` — Base-Delta-Immediate compression
  (Pekhimenko et al., PACT 2012): lossless intra-block compression
  exploiting the low dynamic range of values within a block.
* :mod:`repro.compression.dedup` — exact deduplication (Tian et al.,
  ICS 2014): inter-block elimination of byte-identical blocks via
  content hashing.
"""

from repro.compression.bdi import BDICompressor, BDIEncoding, bdi_compressed_size
from repro.compression.dedup import DedupCache, DedupStats

__all__ = [
    "BDICompressor",
    "BDIEncoding",
    "DedupCache",
    "DedupStats",
    "bdi_compressed_size",
]
