"""Base-Delta-Immediate (BΔI) compression.

Implementation of Pekhimenko et al., "Base-Delta-Immediate Compression:
Practical Data Compression for On-Chip Caches" (PACT 2012), the
compression baseline of Fig. 8. A 64-byte block is encoded as one base
value plus an array of small deltas, choosing the best of the standard
eight encodings (plus zero and repeated-value special cases). BΔI is
*lossless*: the figure-8 comparison point is that it must reproduce
exact values, while Doppelgänger may approximate.

BΔI operates on raw bytes. Blocks are presented as numpy element
arrays; we reinterpret their underlying bytes, exactly as the hardware
sees a cache line. The paper's observation that BΔI works well on
integer data (canneal, jpeg) and poorly on floating-point data emerges
naturally: IEEE-754 neighbours are far apart byte-wise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

BLOCK_BYTES = 64

#: The eight base-delta encodings of the BΔI paper: (base size, delta size)
#: in bytes. Each also implies a one-byte-per-segment immediate mask; we
#: use the paper's segment layouts and metadata costs.
_ENCODINGS: List[Tuple[int, int]] = [
    (8, 1),
    (8, 2),
    (8, 4),
    (4, 1),
    (4, 2),
    (2, 1),
]


@dataclass(frozen=True)
class BDIEncoding:
    """Chosen encoding for one block.

    Attributes:
        name: encoding label (``zeros``, ``repeat``, ``base8-delta1``,
            ..., or ``uncompressed``).
        compressed_bytes: resulting size including metadata.
    """

    name: str
    compressed_bytes: int

    @property
    def saved_bytes(self) -> int:
        """Bytes saved relative to an uncompressed 64-byte block."""
        return BLOCK_BYTES - self.compressed_bytes


def _as_bytes(values: np.ndarray) -> bytes:
    """Raw little-endian bytes of a block's elements, padded to 64."""
    raw = np.asarray(values).tobytes()
    if len(raw) >= BLOCK_BYTES:
        return raw[:BLOCK_BYTES]
    return raw + b"\x00" * (BLOCK_BYTES - len(raw))


def _fits(deltas: np.ndarray, delta_bytes: int) -> np.ndarray:
    """Which deltas fit in a signed ``delta_bytes`` field."""
    bound = 1 << (8 * delta_bytes - 1)
    return (deltas >= -bound) & (deltas < bound)


def bdi_compressed_size(values: np.ndarray) -> BDIEncoding:
    """Best BΔI encoding for one block of element values.

    Follows the BΔI paper: try the zero block and repeated-value
    special cases, then each (base, delta) pair with two bases (the
    first segment value and an implicit zero base for small immediates),
    and keep the smallest total size. Metadata (encoding tag) is not
    charged, matching the storage-savings accounting of Fig. 8.
    """
    raw = _as_bytes(values)

    if raw == b"\x00" * BLOCK_BYTES:
        return BDIEncoding("zeros", 1)

    first8 = raw[:8]
    if raw == first8 * (BLOCK_BYTES // 8):
        return BDIEncoding("repeat", 8)

    best: Optional[BDIEncoding] = None
    for base_bytes, delta_bytes in _ENCODINGS:
        n_seg = BLOCK_BYTES // base_bytes
        # Signed segment view. Delta arithmetic wraps modulo 2^(8*base),
        # which is exactly what hardware reconstruction (base + delta,
        # truncated) computes, so wrapped-fit checks remain lossless.
        segs = np.frombuffer(raw, dtype=np.dtype(f"<i{base_bytes}"))
        # Two bases, as in the BΔI paper: an implicit zero base for
        # small immediates plus one explicit base (first value that is
        # not an immediate).
        imm_ok = _fits(segs, delta_bytes)
        non_imm = segs[~imm_ok]
        if len(non_imm):
            base = non_imm[0]
            with np.errstate(over="ignore"):
                deltas = segs - base
            base_ok = _fits(deltas, delta_bytes)
        else:
            base_ok = imm_ok
        if not np.all(imm_ok | base_ok):
            continue
        size = base_bytes + n_seg * delta_bytes + (n_seg + 7) // 8
        enc = BDIEncoding(f"base{base_bytes}-delta{delta_bytes}", min(size, BLOCK_BYTES))
        if best is None or enc.compressed_bytes < best.compressed_bytes:
            best = enc

    if best is None:
        return BDIEncoding("uncompressed", BLOCK_BYTES)
    return best


class BDICompressor:
    """Batch BΔI analysis over sets of blocks.

    Provides the storage-savings accounting used in Fig. 8: the
    fraction of data bytes saved when every block is stored at its
    compressed size.
    """

    def __init__(self):
        self.encoding_counts: dict = {}

    def compress_block(self, values: np.ndarray) -> BDIEncoding:
        """Encode one block, recording the encoding histogram."""
        enc = bdi_compressed_size(values)
        self.encoding_counts[enc.name] = self.encoding_counts.get(enc.name, 0) + 1
        return enc

    def storage_savings(self, blocks) -> float:
        """Fraction of bytes saved across ``blocks``.

        Args:
            blocks: iterable of element arrays (one per cache block).
        """
        total = 0
        compressed = 0
        for block in blocks:
            enc = self.compress_block(block)
            total += BLOCK_BYTES
            compressed += enc.compressed_bytes
        if total == 0:
            return 0.0
        return 1.0 - compressed / total
