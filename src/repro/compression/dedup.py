"""Exact cache-block deduplication.

Implementation of the deduplication baseline of Fig. 8, following Tian
et al., "Last-Level Cache Deduplication" (ICS 2014): blocks whose
contents are byte-identical share a single data entry, discovered via a
content hash. The comparison point against Doppelgänger is that the
match must be *exact* — floating-point data with slightly different
values never deduplicates, while blackscholes/swaptions (whose pricing
parameters repeat exactly) benefit substantially.

Two models are provided:

* :func:`dedup_storage_savings` — snapshot analysis for Fig. 8: given
  the blocks resident in the LLC, how much data storage would exact
  sharing save.
* :class:`DedupCache` — a functional deduplicating store mirroring the
  structure of :class:`~repro.core.functional.FunctionalDoppelganger`
  (finite entries, LRU), usable as a drop-in comparison in examples.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np


def _content_key(values: np.ndarray) -> bytes:
    """Byte-exact content key of a block."""
    return np.asarray(values).tobytes()


def dedup_storage_savings(blocks: Iterable[np.ndarray]) -> float:
    """Fraction of block storage saved by exact deduplication.

    Every group of byte-identical blocks stores one copy; the savings
    is ``1 - unique/total`` (e.g. four identical blocks save 75%,
    matching the accounting in Sec. 2 of the paper).
    """
    total = 0
    unique = set()
    for block in blocks:
        total += 1
        unique.add(_content_key(block))
    if total == 0:
        return 0.0
    return 1.0 - len(unique) / total


@dataclass
class DedupStats:
    """Counters for the functional dedup cache."""

    lookups: int = 0
    dedup_hits: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def dedup_rate(self) -> float:
        """Fraction of inserted blocks that matched an existing entry."""
        return self.dedup_hits / self.lookups if self.lookups else 0.0


class DedupCache:
    """Finite content-addressed store of unique blocks (LRU).

    Args:
        entries: number of unique data entries.
        ways: associativity of the content-hash index.
    """

    def __init__(self, entries: int = 4096, ways: int = 16):
        if entries % ways:
            raise ValueError(f"{entries} entries not divisible into {ways}-way sets")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = DedupStats()

    def access(self, values: np.ndarray) -> bool:
        """Present a block; returns True if an identical block existed."""
        key = _content_key(values)
        set_idx = hash(key) % self.num_sets
        entries = self._sets[set_idx]
        self.stats.lookups += 1
        if key in entries:
            entries.move_to_end(key)
            self.stats.dedup_hits += 1
            return True
        if len(entries) >= self.ways:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[key] = True
        self.stats.insertions += 1
        return False

    def occupancy(self) -> int:
        """Resident unique blocks."""
        return sum(len(s) for s in self._sets)
