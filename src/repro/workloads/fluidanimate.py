"""fluidanimate — PARSEC smoothed-particle-hydrodynamics fluid solver.

Simulates incompressible fluid with particles on a uniform grid. The
paper annotates *only the input particle state* as approximate "for
simplicity" (Sec. 4.1 discussion of low-footprint benchmarks), leaving
the large temporary cell structures precise — which is why
fluidanimate's approximate LLC footprint is just 3.6% (Table 2) and
why the split Doppelgänger design barely changes its behaviour.

The kernel is a simplified SPH step: density from neighbouring cells,
pressure forces toward rest density, symplectic position update.
Error metric: mean relative particle-position error after the run.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

BOX = 10.0
VMIN, VMAX = -10.0, 10.0
CELLS = 16  # per axis
STEPS = 5


class Fluidanimate(Workload):
    """Grid-bucketed SPH-style particle simulation."""

    name = "fluidanimate"
    paper_approx_footprint = 3.6
    error_metric = "mean relative particle position error"

    def _build(self) -> None:
        n = self._scaled(8192)
        rng = self.rng
        pos = rng.uniform(0.2 * BOX, 0.8 * BOX, size=(n, 3)).astype(np.float32)
        vel = rng.normal(0.0, 0.05, size=(n, 3)).astype(np.float32)

        # Only the input particle positions are annotated approximate —
        # the paper annotates just the input data set "for simplicity",
        # which is why the approximate footprint is tiny.
        self._add_region("positions", pos, DType.F32, True, VMIN, VMAX)
        self._add_region("velocities", vel, DType.F32, False)
        # Precise working state: cell occupancy lists, per-cell particle
        # indices, neighbour tables, force accumulators — the bulk of
        # fluidanimate's footprint.
        n_cells = CELLS**3
        cell_lists = rng.integers(0, n, size=(n_cells, 24), dtype=np.int32)
        self._add_region("cell_lists", cell_lists, DType.I32, False)
        forces = np.zeros((n, 3), dtype=np.float64)
        self._add_region("forces", forces.reshape(-1), DType.F64, False)
        neighbor_tbl = rng.integers(0, n_cells, size=(n_cells, 16), dtype=np.int32)
        self._add_region("neighbor_table", neighbor_tbl, DType.I32, False)
        index = rng.integers(0, n, size=2 * n, dtype=np.int32)
        self._add_region("index", index, DType.I32, False)

    # ----------------------------------------------------------------- kernel

    @staticmethod
    def _cell_of(pos: np.ndarray) -> np.ndarray:
        scaled = np.clip(pos / BOX * CELLS, 0, CELLS - 1e-6).astype(np.int64)
        return (scaled[:, 0] * CELLS + scaled[:, 1]) * CELLS + scaled[:, 2]

    def run(self, approximator=None):
        """Run STEPS symplectic steps; returns final positions."""
        approximator = approximator or IdentityApproximator()
        rpos = self.region("positions")
        rvel = self.region("velocities")
        pos = self.region_data("positions").astype(np.float64).copy()
        vel = self.region_data("velocities").astype(np.float64).copy()
        n = len(pos)
        rest_density = n / CELLS**3
        dt = 0.02

        for _ in range(STEPS):
            # Particle state streams through the LLC every timestep.
            pos = approximator.filter(pos.astype(np.float32), rpos).astype(np.float64)
            vel = approximator.filter(vel.astype(np.float32), rvel).astype(np.float64)
            cells = self._cell_of(pos)
            density = np.bincount(cells, minlength=CELLS**3).astype(np.float64)
            # Pressure force: push particles from dense cells toward
            # the cell-average direction of lower density (simplified
            # SPH gradient on the grid).
            cell_pressure = (density - rest_density) / rest_density
            grad = cell_pressure[cells]
            center = pos - BOX / 2.0
            force = -0.5 * grad[:, None] * np.sign(center) - 0.1 * center / BOX
            vel = 0.99 * vel + dt * force
            pos = np.clip(pos + dt * vel, 0.0, BOX)
        return pos

    def error(self, precise_output, approx_output) -> float:
        """Mean relative position error, normalized to the box size."""
        p = np.asarray(precise_output, dtype=np.float64)
        a = np.asarray(approx_output, dtype=np.float64)
        return float(np.mean(np.linalg.norm(a - p, axis=1) / BOX))

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        for _ in range(STEPS):
            self._emit_parallel_scan(builder, value_ids, "positions", gap=12)
            self._emit_parallel_scan(builder, value_ids, "cell_lists", gap=8)
            self._emit_parallel_scan(builder, value_ids, "neighbor_table", gap=8)
            self._emit_parallel_scan(builder, value_ids, "forces", write=True, gap=10)
            self._emit_parallel_scan(builder, value_ids, "index", gap=8)
            self._emit_parallel_scan(builder, value_ids, "velocities", write=True, gap=12)
            self._emit_parallel_scan(builder, value_ids, "positions", write=True, gap=12)
