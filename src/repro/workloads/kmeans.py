"""kmeans — AxBench image-segmentation clustering benchmark.

AxBench's kmeans clusters the RGB pixels of an image into K dominant
colors (image segmentation / palette extraction). Pixels of the same
image region are nearly identical, so consecutive pixels — and hence
whole cache blocks — are approximately similar: substituting one smooth
run of pixels for a neighbouring one almost never changes which color
cluster they land in. That is precisely the Fig. 1 image example the
paper opens with.

Annotations: the pixel array and the centroid table are approximate
floats; per-pixel assignments are precise integers. Error metric
(AxBench): fraction of pixels assigned to a different cluster than the
precise run.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

CHANNELS = 4  # RGBA: 4 floats per pixel, 4 pixels per block
K = 8
VMIN, VMAX = 0.0, 255.0
ITERATIONS = 5


class Kmeans(Workload):
    """Lloyd's k-means over the RGB pixels of a synthetic image."""

    name = "kmeans"
    paper_approx_footprint = 59.6
    error_metric = "fraction of pixels assigned to a different cluster"

    def _build(self) -> None:
        # Pixels from a smooth synthetic photo: a handful of dominant
        # color regions with gentle gradients and mild noise.
        n = self._scaled(131072)
        rng = self.rng
        n_regions = 12
        palette = rng.uniform(20.0, 235.0, size=(n_regions, CHANNELS))
        # Smooth run-length region structure: consecutive pixels belong
        # to the same image region for long stretches.
        run_lengths = rng.integers(256, 2048, size=4 * n_regions * 8)
        labels = np.repeat(np.arange(len(run_lengths)) % n_regions, run_lengths)[:n]
        if len(labels) < n:
            labels = np.concatenate([labels, np.full(n - len(labels), 0)])
        gradient = 4.0 * np.sin(np.arange(n) / 8000.0)[:, None]
        pixels = palette[labels] + gradient + rng.normal(0.0, 1.2, size=(n, CHANNELS))
        # Camera sensors quantize to 8 bits: pixels are integral values
        # stored as floats, which is where the abundant block-level
        # duplication of real image data comes from.
        pixels = np.rint(np.clip(pixels, VMIN, VMAX)).astype(np.float32)
        init = pixels[:: n // K][:K].copy()

        self._add_region("pixels", pixels, DType.F32, True, VMIN, VMAX)
        # Centroids stay precise: the benchmark annotates the *image*
        # as approximate; the eight centroids are tiny, hot per-thread
        # accumulators that live in the upper caches.
        self._add_region("centroids", init, DType.F32, False)
        self._add_region(
            "assignments", np.zeros(n, dtype=np.int32), DType.I32, False
        )
        # Precise: per-pixel metadata (coordinates, histogram bins) the
        # full benchmark maintains.
        meta = rng.integers(0, 1 << 16, size=n, dtype=np.int32)
        self._add_region("metadata", meta, DType.I32, False)

    # ----------------------------------------------------------------- kernel

    def run(self, approximator=None):
        """Run Lloyd iterations; returns the final assignment vector."""
        approximator = approximator or IdentityApproximator()
        rpixels = self.region("pixels")
        rcent = self.region("centroids")
        pixels = self.region_data("pixels")
        centroids = self.region_data("centroids").astype(np.float64).copy()

        assignments = None
        for _ in range(ITERATIONS):
            # Both arrays stream through the LLC each iteration.
            px = approximator.filter(pixels, rpixels).astype(np.float64)
            centroids = approximator.filter(
                centroids.astype(np.float32), rcent
            ).astype(np.float64)
            d2 = ((px[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            assignments = d2.argmin(axis=1)
            for k in range(K):
                members = px[assignments == k]
                if len(members):
                    centroids[k] = members.mean(axis=0)
        return assignments

    def error(self, precise_output, approx_output) -> float:
        """Misassignment fraction."""
        p = np.asarray(precise_output)
        a = np.asarray(approx_output)
        return float(np.mean(p != a))

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        for _ in range(ITERATIONS):
            self._emit_parallel_scan(builder, value_ids, "pixels", gap=14)
            self._emit_parallel_scan(builder, value_ids, "centroids", repeats=4, gap=6)
            self._emit_parallel_scan(builder, value_ids, "assignments", write=True, gap=10)
            self._emit_parallel_scan(builder, value_ids, "metadata", gap=8)
            self._emit_parallel_scan(builder, value_ids, "centroids", write=True, gap=6)
