"""swaptions — PARSEC HJM swaption pricing benchmark.

Prices a portfolio of swaptions via Black's model with a Monte-Carlo
convexity correction computed on large *precise* scratch buffers (the
real benchmark simulates full HJM forward-rate paths; the paths and
accumulators dominate its footprint). Only the input swaption
parameters are annotated approximate — hence the tiny 1.5% approximate
footprint of Table 2.

Layout matters: like PARSEC, the portfolio is an **array of structs** —
one 64-byte cache block holds one swaption's sixteen float fields
(strike, forward rate, volatility, maturity, tenor, notional, ...).
Block-level hashes are therefore dominated by the large fields
(maturity, tenor, notional), and two swaptions merge whenever those
agree — letting their small-valued fields (interest rates, around
0.05 inside a declared range of [0, 100]) be substituted freely. That
is precisely the failure mode Sec. 5.2 describes: "elements with
relatively smaller values (e.g., interest rates) become overly
susceptible to approximate similarity", making swaptions one of the
paper's two high-error benchmarks.

Portfolios also repeat quotes exactly (the same standard swaption is
quoted many times), giving the exact redundancy that makes
deduplication effective on swaptions in Fig. 8.

Error metric: portfolio-normalized price error.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload
from repro.workloads.blackscholes import _norm_cdf

#: Single declared range shared by all approximate floats (Sec. 4.1) —
#: wide enough for notionals and maturities, brutal for rates.
VMIN, VMAX = 0.0, 100.0

#: Struct field indices (16 float32 fields = one 64-byte block).
F_STRIKE, F_FWD, F_VOL, F_MATURITY, F_TENOR, F_NOTIONAL, F_FREQ, F_SPREAD, F_QUOTE, F_PRICE, F_STDERR = range(11)
FIELDS = 16


class Swaptions(Workload):
    """Black-model swaption pricing over an array-of-structs portfolio."""

    name = "swaptions"
    paper_approx_footprint = 1.5
    error_metric = "portfolio-normalized price error"

    TRACE_PASSES = 3

    def _build(self) -> None:
        n = self._scaled(4096)
        rng = self.rng
        # A quote grid: portfolios repeatedly quote the same standard
        # contracts, so structs duplicate exactly.
        strikes = np.array([0.03, 0.04, 0.05, 0.06, 0.07])
        fwds = np.array([0.035, 0.045, 0.055, 0.065])
        vols = np.array([0.15, 0.20, 0.25])
        mats = np.array([1.0, 2.0, 5.0, 10.0])
        tenors = np.array([1.0, 2.0, 5.0])
        grid = np.array(
            [
                (s, f, v, m, t)
                for m in mats
                for t in tenors
                for s in strikes
                for f in fwds
                for v in vols
            ]
        )
        picks = rng.integers(0, len(grid), n)
        structs = np.zeros((n, FIELDS), dtype=np.float32)
        structs[:, :5] = grid[picks]
        structs[:, F_NOTIONAL] = 10.0
        structs[:, F_FREQ] = 2.0
        structs[:, F_SPREAD] = 0.01
        # Indicative premium quote carried with each contract — broker
        # screens list an indicative price next to the terms, and that
        # field is what keeps differently-priced contracts from hashing
        # into the same map bin.
        structs[:, F_QUOTE] = self._black_price(
            structs[:, F_STRIKE].astype(np.float64),
            structs[:, F_FWD].astype(np.float64),
            structs[:, F_VOL].astype(np.float64),
            structs[:, F_MATURITY].astype(np.float64),
            structs[:, F_TENOR].astype(np.float64),
            structs[:, F_NOTIONAL].astype(np.float64),
        )

        self._add_region(
            "swaptions", structs.reshape(-1), DType.F32, True, VMIN, VMAX
        )
        # Precise HJM scratch: simulated forward-rate paths and MC
        # accumulators — the bulk of the footprint (hence Table 2's
        # 1.5% approximate fraction).
        n_paths = 128
        n_steps = 22
        paths = rng.standard_normal((n_paths, n_steps, 12)).astype(np.float64)
        self._add_region("hjm_paths", paths.reshape(-1), DType.F64, False)
        accum = np.zeros((n, 64), dtype=np.float64)
        self._add_region("mc_accum", accum.reshape(-1), DType.F64, False)
        seeds = rng.integers(0, 1 << 30, size=64 * n, dtype=np.int32)
        self._add_region("rng_state", seeds, DType.I32, False)

    def refresh_outputs(self) -> None:
        """Store computed prices inside the swaption structs."""
        prices = self.run(None)
        structs = self._data["swaptions"].reshape(-1, FIELDS)
        structs[:, F_PRICE] = prices
        structs[:, F_STDERR] = 0.01 * np.abs(prices)

    # ----------------------------------------------------------------- kernel

    @staticmethod
    def _black_price(k, f, v, t, ten, notional):
        """Black's payer-swaption formula, annuity-scaled."""
        k = np.maximum(k, 1e-5)
        f = np.maximum(f, 1e-5)
        v = np.maximum(v, 1e-4)
        t = np.maximum(t, 1e-4)
        ten = np.maximum(ten, 0.25)
        std = v * np.sqrt(t)
        d1 = (np.log(f / k) + 0.5 * std**2) / std
        d2 = d1 - std
        annuity = ten * np.exp(-f * t)
        return notional * annuity * (f * _norm_cdf(d1) - k * _norm_cdf(d2))

    def run(self, approximator=None):
        """Price all swaptions; returns the price vector."""
        approximator = approximator or IdentityApproximator()
        flat = approximator.filter(
            self.region_data("swaptions"), self.region("swaptions")
        )
        structs = flat.reshape(-1, FIELDS).astype(np.float64)

        price = self._black_price(
            structs[:, F_STRIKE],
            structs[:, F_FWD],
            structs[:, F_VOL],
            structs[:, F_MATURITY],
            structs[:, F_TENOR],
            structs[:, F_NOTIONAL],
        )

        # MC convexity correction from the (precise) HJM paths: a small
        # deterministic adjustment computed over the path buffer.
        paths = self.region_data("hjm_paths").reshape(128, 22, 12)
        correction = 1.0 + 0.01 * np.tanh(paths.mean())
        price = price * correction

        # As in PARSEC, the simulated mean price (and its standard
        # error) is stored back into the swaption struct itself, so the
        # output rides through the LLC inside the same blocks.
        out = structs.astype(np.float32)
        out[:, F_PRICE] = price
        out[:, F_STDERR] = 0.01 * np.abs(price)
        out = approximator.filter(
            out.reshape(-1), self.region("swaptions")
        ).reshape(-1, FIELDS)
        return out[:, F_PRICE].astype(np.float64)

    def error(self, precise_output, approx_output) -> float:
        """Portfolio-normalized price error: mean |dprice| / mean price.

        The aggregate form keeps near-zero-priced swaptions from
        dominating a per-contract relative metric.
        """
        p = np.asarray(precise_output, dtype=np.float64)
        a = np.asarray(approx_output, dtype=np.float64)
        scale = max(float(np.mean(np.abs(p))), 1e-12)
        return float(np.mean(np.abs(a - p)) / scale)

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        for _ in range(self.TRACE_PASSES):
            self._emit_parallel_scan(builder, value_ids, "swaptions", gap=20)
            # The MC loop hammers the precise scratch buffers.
            self._emit_parallel_scan(builder, value_ids, "hjm_paths", repeats=2, gap=8)
            self._emit_parallel_scan(builder, value_ids, "mc_accum", write=True, gap=8)
            self._emit_parallel_scan(builder, value_ids, "rng_state", gap=8)
            self._emit_parallel_scan(builder, value_ids, "swaptions", write=True, gap=20)
