"""blackscholes — PARSEC option-pricing benchmark.

Prices a portfolio of European options with the Black-Scholes
closed-form formula. The paper highlights (Secs. 2, 5.1) that
blackscholes exhibits substantial *exact* redundancy because pricing
parameters repeat — "common interest rates" — which is why exact
deduplication performs unusually well on it (Fig. 8). We engineer the
same behaviour: rates and volatilities are drawn from small discrete
sets and spot/strike prices from a quantized grid (real option chains
quote at fixed ticks).

Annotations: all floating-point arrays (spot, strike, rate, volatility,
time-to-maturity, prices) are approximate; option-type flags and the
portfolio workspace are precise. One declared range covers every
approximate float, per Sec. 4.1. Error metric: mean relative error of
option prices (Sidiroglou-Douskos et al. / San Miguel et al.).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

#: Shared declared range for every approximate float (Sec. 4.1: one
#: range per data type per application).
VMIN, VMAX = 0.0, 100.0


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF (Abramowitz & Stegun 7.1.26, vectorized)."""
    t = 1.0 / (1.0 + 0.2316419 * np.abs(x))
    poly = t * (
        0.319381530
        + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429)))
    )
    pdf = np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi)
    cdf = 1.0 - pdf * poly
    return np.where(x >= 0, cdf, 1.0 - cdf)


class Blackscholes(Workload):
    """European option pricing over a synthetic option chain."""

    name = "blackscholes"
    paper_approx_footprint = 61.8
    error_metric = "mean relative price error"

    #: PARSEC iterates the pricing loop many times; a few passes are
    #: enough for the trace's reuse behaviour.
    TRACE_PASSES = 4

    def _build(self) -> None:
        # A real option chain: each underlying quotes a ladder of
        # strikes at several expiries. Spot repeats for every option on
        # the same underlying, strike ladders repeat across expiries,
        # rates/maturities cycle — whole cache blocks repeat *exactly*,
        # which is the redundancy the paper observes ("common interest
        # rates") and why exact deduplication does well here (Fig. 8).
        n_under = self._scaled(96)
        strikes_per = 16  # one cache block per ladder
        expiries = np.array([0.25, 0.5, 1.0, 2.0], dtype=np.float32)
        variants = 4  # call/put x 2 vol surfaces
        per_under = strikes_per * len(expiries) * variants
        n = n_under * per_under
        rng = self.rng

        spots = np.round(rng.uniform(20.0, 80.0, n_under) * 2.0) / 2.0
        spot = np.repeat(spots, per_under)
        ladder_steps = (np.arange(strikes_per) - strikes_per / 2 + 0.5) * 2.5
        # Ladders re-center per expiry (forward prices drift with
        # maturity), so strike blocks repeat across the variants of one
        # (underlying, expiry) pair but not across expiries.
        expiry_shift = np.array([0.0, 0.5, 1.5, 3.0])
        ladders = (
            spots[:, None, None]
            + ladder_steps[None, None, :]
            + expiry_shift[None, :, None]
        )  # (underlying, expiry, strike)
        strike = np.tile(ladders[:, None, :, :], (1, variants, 1, 1)).reshape(-1)
        rates_by_expiry = np.array([0.025, 0.0275, 0.05, 0.1], dtype=np.float32)
        rate = np.tile(
            np.repeat(rates_by_expiry, strikes_per)[None, :].repeat(variants, 0).reshape(-1),
            n_under,
        )
        vols = np.array([0.15, 0.20, 0.30, 0.40], dtype=np.float32)
        vol = np.tile(np.repeat(vols, strikes_per * len(expiries)), n_under)
        tte = np.tile(
            np.repeat(expiries, strikes_per)[None, :].repeat(variants, 0).reshape(-1),
            n_under,
        )
        otype = np.tile(
            np.repeat(np.array([0, 1, 0, 1], dtype=np.int32), strikes_per * len(expiries)),
            n_under,
        )

        self._add_region("spot", spot.astype(np.float32), DType.F32, True, VMIN, VMAX)
        self._add_region("strike", strike.astype(np.float32), DType.F32, True, VMIN, VMAX)
        self._add_region("rate", rate, DType.F32, True, VMIN, VMAX)
        self._add_region("volatility", vol, DType.F32, True, VMIN, VMAX)
        self._add_region("maturity", tte, DType.F32, True, VMIN, VMAX)
        self._add_region(
            "prices", np.zeros(n, dtype=np.float32), DType.F32, True, VMIN, VMAX
        )
        self._add_region("otype", otype, DType.I32, False)
        # Portfolio workspace (precise): per-option bookkeeping the real
        # benchmark keeps (option ids, Greeks buffers), sized to land
        # the approximate LLC footprint near Table 2's 61.8%.
        workspace = rng.integers(0, 1 << 20, size=3 * n, dtype=np.int32)
        self._add_region("workspace", workspace, DType.I32, False)

    def refresh_outputs(self) -> None:
        """Store precisely computed prices in the prices region."""
        self._data["prices"] = self.run(None)

    # ----------------------------------------------------------------- kernel

    def run(self, approximator=None):
        """Price every option; returns the price vector."""
        approximator = approximator or IdentityApproximator()
        spot = approximator.filter(self.region_data("spot"), self.region("spot"))
        strike = approximator.filter(self.region_data("strike"), self.region("strike"))
        rate = approximator.filter(self.region_data("rate"), self.region("rate"))
        vol = approximator.filter(self.region_data("volatility"), self.region("volatility"))
        tte = approximator.filter(self.region_data("maturity"), self.region("maturity"))
        otype = self.region_data("otype")

        s = spot.astype(np.float64)
        k = strike.astype(np.float64)
        r = np.maximum(rate.astype(np.float64), 1e-6)
        v = np.maximum(vol.astype(np.float64), 1e-4)
        t = np.maximum(tte.astype(np.float64), 1e-4)
        sqrt_t = np.sqrt(t)
        d1 = (np.log(np.maximum(s, 1e-9) / np.maximum(k, 1e-9)) + (r + 0.5 * v * v) * t) / (
            v * sqrt_t
        )
        d2 = d1 - v * sqrt_t
        call = s * _norm_cdf(d1) - k * np.exp(-r * t) * _norm_cdf(d2)
        put = k * np.exp(-r * t) * _norm_cdf(-d2) - s * _norm_cdf(-d1)
        prices = np.where(otype == 1, put, call).astype(np.float32)

        # The computed prices stream back through the LLC as well.
        prices = approximator.filter(prices, self.region("prices"))
        return prices

    def error(self, precise_output, approx_output) -> float:
        """Portfolio-normalized price error: mean |dprice| / mean price.

        The aggregate form keeps deep out-of-the-money options (prices
        near zero) from dominating a per-option relative metric.
        """
        p = np.asarray(precise_output, dtype=np.float64)
        a = np.asarray(approx_output, dtype=np.float64)
        scale = max(float(np.mean(np.abs(p))), 1e-12)
        return float(np.mean(np.abs(a - p)) / scale)

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        for _ in range(self.TRACE_PASSES):
            for name in ("spot", "strike", "rate", "volatility", "maturity", "otype"):
                self._emit_parallel_scan(builder, value_ids, name, gap=24)
            self._emit_parallel_scan(builder, value_ids, "prices", write=True, gap=24)
            self._emit_parallel_scan(builder, value_ids, "workspace", gap=12)
