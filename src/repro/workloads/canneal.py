"""canneal — PARSEC simulated-annealing chip-routing benchmark.

Minimizes the total wire length of a netlist by repeatedly swapping
the grid locations of two random elements and accepting the swap if it
lowers cost (or probabilistically, at temperature). canneal is the
paper's stress case: random access over a large netlist makes it the
benchmark most sensitive to LLC misses (12.2 misses per thousand
instructions, Sec. 5.2), which is where the shrunken Doppelgänger data
array shows its runtime and dynamic-energy costs (Figs. 9-11).

Annotations: the element coordinate arrays are approximate *integers*
(grid coordinates tolerate small perturbations — routing cost changes
slightly); netlist connectivity is precise. Integer data also makes
canneal one of the benchmarks where BΔI compression is effective
(Fig. 8). Error metric: relative difference in final routing cost.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

GRID = 4096  # coordinate grid, fits i16 deltas for BΔI


class Canneal(Workload):
    """Simulated annealing over a synthetic netlist."""

    name = "canneal"
    paper_approx_footprint = 38.0
    error_metric = "relative final routing cost"

    SWAP_BATCHES = 24
    BATCH = 2048

    def _build(self) -> None:
        n = self._scaled(49152)
        rng = self.rng
        # Element coordinates: placed with spatial locality (elements of
        # the same macro-block sit near each other), so blocks of
        # consecutive elements have bounded coordinate ranges — the
        # property that makes both BΔI and map sharing work on them.
        # Placement legalisation snaps cells to site rows: macro
        # origins align to 64-unit rows and cells sit on a 16-unit site
        # grid inside the macro. Quantized coordinates are what give
        # real netlists their block-level value redundancy.
        macro = rng.integers(0, (GRID - 64) // 64, size=(n // 64 + 1, 2)) * 64
        base = np.repeat(macro, 64, axis=0)[:n]
        coords = base + rng.integers(0, 8, size=(n, 2)) * 8
        x = coords[:, 0].astype(np.int32)
        y = coords[:, 1].astype(np.int32)
        # Netlist: each element connects to a handful of others, mostly
        # nearby (Rent's rule locality), plus one random long wire.
        # Neighbour edges are symmetric (+d and -d offsets), so a
        # swap's cost delta computed over an element's own nets agrees
        # in sign with the global wire length.
        ids = np.arange(n)[:, None]
        neigh = np.concatenate(
            [(ids + d) % n for d in (1, 17, -1, -17)], axis=1
        )
        far = rng.integers(0, n, size=(n, 1))
        nets = np.concatenate([neigh, far], axis=1).astype(np.int32)

        self._add_region("coord_x", x, DType.I32, True, 0.0, float(GRID))
        self._add_region("coord_y", y, DType.I32, True, 0.0, float(GRID))
        self._add_region("netlist", nets, DType.I32, False)

    # ----------------------------------------------------------------- kernel

    def _cost(self, x: np.ndarray, y: np.ndarray) -> float:
        """Total Manhattan wire length of the netlist."""
        nets = self.region_data("netlist")
        dx = np.abs(x[:, None] - x[nets])
        dy = np.abs(y[:, None] - y[nets])
        return float(dx.sum() + dy.sum())

    def run(self, approximator=None):
        """Anneal for a fixed schedule; returns the final routing cost.

        The coordinate arrays pass through the (approximate) LLC at
        every temperature step — exactly where the hardware would
        substitute doppelgänger values.
        """
        approximator = approximator or IdentityApproximator()
        rx = self.region("coord_x")
        ry = self.region("coord_y")
        x = self.region_data("coord_x").copy()
        y = self.region_data("coord_y").copy()
        nets = self.region_data("netlist")
        rng = np.random.default_rng(self.seed + 1)

        n = len(x)
        temperature = 2.0
        for _ in range(8):
            x = approximator.filter(x, rx)
            y = approximator.filter(y, ry)
            # One batch of proposed swaps per temperature step,
            # evaluated against each element's own nets (standard
            # parallel-moves annealing approximation).
            a = rng.integers(0, n, self.BATCH)
            # Mostly-local proposals (swap with a nearby cell), the
            # move distribution real placers converge with; the delta
            # model tracks each element's own nets, so wild non-local
            # swaps would mis-estimate the incoming-edge cost.
            b = (a + rng.integers(1, 96, self.BATCH)) % n
            # Parallel moves must not share elements, or their deltas
            # are computed against stale positions.
            combined = np.concatenate([a, b])
            first = np.zeros(2 * self.BATCH, dtype=bool)
            first[np.unique(combined, return_index=True)[1]] = True
            valid = first[: self.BATCH] & first[self.BATCH :] & (a != b)
            a = a[valid]
            b = b[valid]
            cost_a = (np.abs(x[a, None] - x[nets[a]]) + np.abs(y[a, None] - y[nets[a]])).sum(1)
            cost_b = (np.abs(x[b, None] - x[nets[b]]) + np.abs(y[b, None] - y[nets[b]])).sum(1)
            xa, ya = x[a].copy(), y[a].copy()
            new_a = (np.abs(x[b, None] - x[nets[a]]) + np.abs(y[b, None] - y[nets[a]])).sum(1)
            new_b = (np.abs(xa[:, None] - x[nets[b]]) + np.abs(ya[:, None] - y[nets[b]])).sum(1)
            delta = (new_a + new_b) - (cost_a + cost_b)
            accept = (delta < 0) | (
                rng.random(len(a)) < np.exp(-np.maximum(delta, 0) / (temperature * 256.0))
            )
            swap_a = a[accept]
            swap_b = b[accept]
            x[swap_a], x[swap_b] = x[swap_b], x[swap_a].copy()
            y[swap_a], y[swap_b] = y[swap_b], y[swap_a].copy()
            temperature *= 0.7

        return self._cost(x, y)

    def error(self, precise_output, approx_output) -> float:
        """Relative difference of the final routing cost."""
        p = float(precise_output)
        a = float(approx_output)
        return abs(a - p) / max(abs(p), 1e-12)

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        # Random pointer-chasing over the coordinate and netlist
        # arrays — the access behaviour behind canneal's 12.2 MPKI.
        rng = np.random.default_rng(self.seed + 2)
        for _ in range(self.SWAP_BATCHES):
            self._emit_random_accesses(
                builder, value_ids, "coord_x", self.BATCH, write_fraction=0.12,
                gap=6, rng=rng, zipf_alpha=0.7,
            )
            self._emit_random_accesses(
                builder, value_ids, "coord_y", self.BATCH, write_fraction=0.12,
                gap=6, rng=rng, zipf_alpha=0.7,
            )
            self._emit_random_accesses(
                builder, value_ids, "netlist", self.BATCH * 2, write_fraction=0.0,
                gap=6, rng=rng,
            )
