"""Workload abstraction: annotated applications with kernels and traces.

Each workload reproduces one of the paper's benchmarks (PARSEC or
AxBench) as a triple:

1. **Data + annotations** — realistic input data laid out in annotated
   address-space :class:`~repro.trace.region.Region` s (approximate
   regions carry dtype and declared ``[vmin, vmax]``, Sec. 4.1).
2. **Kernel** — the real algorithm, runnable precisely or with its
   approximate arrays routed through a
   :class:`~repro.core.functional.BlockApproximator` (the paper's Pin
   error methodology), plus the application-level error metric from
   the prior work the paper cites.
3. **Trace generator** — a multi-core, block-granularity memory trace
   with the access pattern the application exhibits, consumed by the
   cycle-accounting hierarchy simulation.

Because the original inputs (PARSEC simmedium, AxBench datasets) are
not redistributable, each workload synthesizes data engineered to exhibit
the documented value behaviour (see DESIGN.md Sec. 6): shared pricing
parameters in blackscholes/swaptions, smooth integer pixels in jpeg,
clustered features in ferret/kmeans, spread floats in inversek2j and
jmeint.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.core.functional import BlockApproximator, IdentityApproximator
from repro.trace.record import DTYPE_INFO, DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import Trace, TraceBuilder

#: Base virtual address for workload data; regions are packed above it.
HEAP_BASE = 0x1000_0000
BLOCK = 64


class Workload(abc.ABC):
    """Base class for the nine benchmark reproductions.

    Args:
        seed: RNG seed — all data generation is deterministic per seed.
        scale: multiplies the default dataset size (tests use < 1.0 for
            speed; benches use 1.0).
    """

    #: benchmark name, matching the paper's figures.
    name: str = "base"
    #: Table 2 approximate-footprint percentage from the paper (for
    #: side-by-side reporting, not used by any computation).
    paper_approx_footprint: float = 0.0
    #: short description of the application error metric.
    error_metric: str = ""

    def __init__(self, seed: int = 0, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.seed = seed
        self.scale = scale
        self.rng = np.random.default_rng(seed)
        self.regions = RegionMap()
        self._data: Dict[str, np.ndarray] = {}
        self._next_base = HEAP_BASE
        self._build()

    # ------------------------------------------------------------ data setup

    @abc.abstractmethod
    def _build(self) -> None:
        """Allocate regions and generate input data (subclass hook)."""

    def _add_region(
        self,
        name: str,
        data: np.ndarray,
        dtype: DType,
        approx: bool,
        vmin: float = 0.0,
        vmax: float = 0.0,
    ) -> Region:
        """Register a data array as an annotated region.

        The array is stored (flattened) as the region's backing data;
        its byte size is padded to a whole number of cache blocks.
        """
        data = np.ascontiguousarray(data)
        elem_bytes = DTYPE_INFO[dtype].bits // 8
        size = data.size * elem_bytes
        padded = (size + BLOCK - 1) // BLOCK * BLOCK
        region = Region(
            name, self._next_base, padded, dtype, approx=approx, vmin=vmin, vmax=vmax
        )
        self.regions.add(region)
        self._next_base += padded + BLOCK  # one guard block between regions
        self._data[name] = data
        return region

    def region_data(self, name: str) -> np.ndarray:
        """Backing data array of a region."""
        return self._data[name]

    def region(self, name: str) -> Region:
        """Region by name."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r} in {self.name}")

    # --------------------------------------------------------------- kernel

    @abc.abstractmethod
    def run(self, approximator=None):
        """Execute the kernel; returns the application output.

        Args:
            approximator: a BlockApproximator (or IdentityApproximator /
                None for the precise baseline run).
        """

    @abc.abstractmethod
    def error(self, precise_output, approx_output) -> float:
        """Application-level output error between two runs (0.0-1.0+)."""

    def evaluate_error(self, approximator: BlockApproximator) -> float:
        """Convenience: run precisely and approximately, return error."""
        precise = self.run(IdentityApproximator())
        approx = self.run(approximator)
        return self.error(precise, approx)

    def refresh_outputs(self) -> None:
        """Populate output regions with real (precisely computed) data.

        Workloads whose annotated regions include kernel *outputs*
        (prices, angles, reconstructed images) override this to run the
        kernel once and store the results, so LLC snapshots and traces
        carry the values the cache would actually hold rather than the
        zero-initialised buffers. Idempotent; default is a no-op for
        input-only workloads.
        """

    # ---------------------------------------------------------------- trace

    @abc.abstractmethod
    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        """Append the workload's access stream to ``builder``."""

    def build_trace(self) -> Trace:
        """Generate the workload's multi-core memory trace."""
        # Output regions must carry the values the cache would hold
        # mid-run, not their zero-initialised state.
        self.refresh_outputs()
        builder = TraceBuilder(self.name, self.regions)
        value_ids: Dict[str, np.ndarray] = {}
        for region in self.regions:
            data = self._data[region.name]
            flat = np.asarray(data).reshape(-1)
            # Pad the flat data to the padded region size so every
            # block has registered values.
            need = region.num_blocks(BLOCK) * region.elements_per_block(BLOCK)
            if len(flat) < need:
                flat = np.concatenate([flat, np.zeros(need - len(flat), dtype=flat.dtype)])
            value_ids[region.name] = builder.register_block_values(region, flat)
        self._emit_trace(builder, value_ids)
        return builder.build()

    # ------------------------------------------------------------- reporting

    def approx_footprint_fraction(self) -> float:
        """Fraction of annotated bytes that are approximate."""
        return self.regions.approx_fraction()

    def describe(self) -> str:
        """One-line summary for reports."""
        total_kb = self.regions.total_bytes() / 1024
        return (
            f"{self.name}: {len(self.regions)} regions, {total_kb:.0f} KB footprint, "
            f"{100 * self.approx_footprint_fraction():.1f}% approximate "
            f"(paper Table 2: {self.paper_approx_footprint:.1f}%)"
        )

    # ------------------------------------------------------------ utilities

    def _scaled(self, n: int, minimum: int = 1) -> int:
        """Scale a dataset size parameter."""
        return max(int(n * self.scale), minimum)

    # ------------------------------------------------- trace emission helpers

    def _emit_parallel_scan(
        self,
        builder: TraceBuilder,
        value_ids: Dict[str, np.ndarray],
        region_name: str,
        repeats: int = 1,
        write: bool = False,
        gap: int = 10,
        num_cores: int = 4,
    ) -> None:
        """Data-parallel streaming pass(es) over a region.

        The region's blocks are partitioned contiguously across cores
        (PARSEC-style loop chunking); the cores scan their partitions
        simultaneously (round-robin interleaved in trace order).
        """
        from repro.trace.synth import interleave_streams, partition_blocks

        region = self.region(region_name)
        rid = self.regions.find_id(region.base)
        n_blocks = region.num_blocks(BLOCK)
        parts = partition_blocks(n_blocks, num_cores)
        streams = [np.tile(p, repeats) for p in parts]
        indices, cores = interleave_streams(streams)
        vids = value_ids[region_name][indices] if write else None
        builder.append_region_accesses(
            rid, indices, cores, is_write=write, value_ids=vids, gap=gap
        )

    def _emit_random_accesses(
        self,
        builder: TraceBuilder,
        value_ids: Dict[str, np.ndarray],
        region_name: str,
        count: int,
        write_fraction: float = 0.0,
        gap: int = 10,
        num_cores: int = 4,
        rng: Optional[np.random.Generator] = None,
        zipf_alpha: float = 0.0,
    ) -> None:
        """Random accesses into a region (canneal-style).

        ``zipf_alpha`` > 0 skews popularity (hot blocks reused often),
        matching the locality real pointer-chasing workloads exhibit;
        0 gives uniform random.
        """
        from repro.trace.synth import zipf_pattern

        rng = rng or self.rng
        region = self.region(region_name)
        rid = self.regions.find_id(region.base)
        n_blocks = region.num_blocks(BLOCK)
        if zipf_alpha > 0:
            indices = zipf_pattern(n_blocks, count, rng, alpha=zipf_alpha)
        else:
            indices = rng.integers(0, n_blocks, size=count, dtype=np.int64)
        cores = (np.arange(count) % num_cores).astype(np.int8)
        writes = rng.random(count) < write_fraction
        vids = np.where(writes, value_ids[region_name][indices], -1)
        builder.append_region_accesses(
            rid, indices, cores, is_write=writes, value_ids=vids, gap=gap
        )
