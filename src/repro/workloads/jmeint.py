"""jmeint — AxBench triangle-triangle intersection kernel.

Tests whether pairs of 3-D triangles intersect (the hot kernel of the
jMonkeyEngine physics stack). The input is a flat array of triangle
pair coordinates, nearly all of the footprint, annotated approximate —
94.7% in Table 2.

Like inversek2j, jmeint defeats element-wise similarity: "only one
pair of elements needs to exceed the threshold T to deem the entire
block not similar" (Sec. 2) — random geometry almost always has such a
pair. The block-level hashes still bin many coordinate blocks together
(Fig. 7).

Error metric (AxBench): fraction of intersection decisions that differ
from the precise run.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

VMIN, VMAX = 0.0, 1.0


def _tri_normal(v0, v1, v2):
    return np.cross(v1 - v0, v2 - v0)


def _interval_signs(verts, normal, point):
    """Signed distances of a triangle's vertices to the other's plane."""
    return np.einsum("nij,nj->ni", verts - point[:, None, :], normal)


def triangles_intersect(t1: np.ndarray, t2: np.ndarray) -> np.ndarray:
    """Vectorized conservative triangle-triangle intersection test.

    Implements the plane-separation stage of Möller's test: if all
    vertices of one triangle lie strictly on one side of the other's
    plane (for either triangle), the pair cannot intersect; otherwise
    we refine with a coplanar-projection overlap check of the two
    triangles' axis-aligned bounds on the intersection line direction.
    The refinement is approximate in degenerate configurations — the
    benchmark measures *decision flips under data perturbation*, for
    which this level of fidelity matches AxBench's use of the kernel.

    Args:
        t1, t2: arrays of shape ``(n, 3, 3)`` (pairs, vertices, xyz).

    Returns:
        boolean array of length ``n``.
    """
    n1 = _tri_normal(t1[:, 0], t1[:, 1], t1[:, 2])
    n2 = _tri_normal(t2[:, 0], t2[:, 1], t2[:, 2])
    d2 = _interval_signs(t2, n1, t1[:, 0])
    d1 = _interval_signs(t1, n2, t2[:, 0])
    eps = 1e-12
    sep_by_plane1 = np.all(d2 > eps, axis=1) | np.all(d2 < -eps, axis=1)
    sep_by_plane2 = np.all(d1 > eps, axis=1) | np.all(d1 < -eps, axis=1)
    candidates = ~(sep_by_plane1 | sep_by_plane2)

    # Refinement: project both triangles onto the intersection line
    # direction and require interval overlap.
    line = np.cross(n1, n2)
    proj1 = np.einsum("nij,nj->ni", t1, line)
    proj2 = np.einsum("nij,nj->ni", t2, line)
    overlap = (proj1.min(1) <= proj2.max(1) + eps) & (proj2.min(1) <= proj1.max(1) + eps)
    return candidates & overlap


class Jmeint(Workload):
    """Batch triangle-pair intersection testing."""

    name = "jmeint"
    paper_approx_footprint = 94.7
    error_metric = "fraction of intersection decisions flipped"

    TRACE_PASSES = 3

    def _build(self) -> None:
        n = self._scaled(49152)
        rng = self.rng
        # Half the pairs are nearby (likely intersecting), half far
        # apart — exercising both decision outcomes.
        t1 = rng.uniform(0.0, 1.0, size=(n, 3, 3))
        offsets = np.where(
            rng.random(n)[:, None] < 0.5,
            rng.uniform(-0.05, 0.05, size=(n, 3)),
            rng.uniform(0.3, 0.8, size=(n, 3)) * rng.choice([-1.0, 1.0], size=(n, 3)),
        )
        t2 = np.clip(t1 + offsets[:, None, :] + rng.uniform(-0.1, 0.1, (n, 3, 3)), 0.0, 1.0)

        self._add_region(
            "tri_a", t1.astype(np.float32).reshape(-1), DType.F32, True, VMIN, VMAX
        )
        self._add_region(
            "tri_b", t2.astype(np.float32).reshape(-1), DType.F32, True, VMIN, VMAX
        )
        self._add_region(
            "outcomes", np.zeros(n, dtype=np.int32), DType.I32, False
        )

    # ----------------------------------------------------------------- kernel

    def run(self, approximator=None):
        """Test every pair; returns the boolean decision vector."""
        approximator = approximator or IdentityApproximator()
        a = approximator.filter(self.region_data("tri_a"), self.region("tri_a"))
        b = approximator.filter(self.region_data("tri_b"), self.region("tri_b"))
        n = len(a) // 9
        t1 = a.astype(np.float64).reshape(n, 3, 3)
        t2 = b.astype(np.float64).reshape(n, 3, 3)
        return triangles_intersect(t1, t2)

    def error(self, precise_output, approx_output) -> float:
        """Decision mismatch rate."""
        p = np.asarray(precise_output, dtype=bool)
        a = np.asarray(approx_output, dtype=bool)
        return float(np.mean(p != a))

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        for _ in range(self.TRACE_PASSES):
            self._emit_parallel_scan(builder, value_ids, "tri_a", gap=20)
            self._emit_parallel_scan(builder, value_ids, "tri_b", gap=20)
            self._emit_parallel_scan(builder, value_ids, "outcomes", write=True, gap=20)
