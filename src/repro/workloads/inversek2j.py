"""inversek2j — AxBench 2-joint robotic-arm inverse kinematics.

For every target coordinate (x, y), computes the two joint angles
(theta1, theta2) that place the arm's end effector at the target.
Nearly the whole footprint is the coordinate and angle arrays, all
annotated approximate — the paper reports a 99.7% approximate LLC
footprint (Table 2).

inversek2j is one of the paper's interesting cases: its values spread
across the whole declared range, so *element-wise* similarity is rare
(Fig. 2 shows almost no threshold savings) — one far-apart element
pair disqualifies a block — yet the block-granularity average/range
hashes still find substantial similarity (Fig. 7) because block
averages concentrate.

Error metric (AxBench): mean relative error of the end-effector
position recomputed from the approximate angles via forward
kinematics.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

L1 = 0.5  # upper-arm length
L2 = 0.5  # forearm length
#: One declared range for all approximate floats: coordinates live in
#: [-1, 1] (arm reach) and angles in [-pi, pi] ⊂ [-4, 4].
VMIN, VMAX = -4.0, 4.0


def forward_kinematics(theta1: np.ndarray, theta2: np.ndarray):
    """End-effector position of the 2-joint arm."""
    x = L1 * np.cos(theta1) + L2 * np.cos(theta1 + theta2)
    y = L1 * np.sin(theta1) + L2 * np.sin(theta1 + theta2)
    return x, y


class Inversek2j(Workload):
    """Batch inverse kinematics for a 2-joint planar arm."""

    name = "inversek2j"
    paper_approx_footprint = 99.7
    error_metric = "mean relative end-effector position error"

    TRACE_PASSES = 4

    def _build(self) -> None:
        n = self._scaled(262144)
        rng = self.rng
        # Targets trace continuous end-effector trajectories (the
        # benchmark drives an arm along tool paths): slow sinusoidal
        # sweeps with jitter. Consecutive targets — and hence whole
        # cache blocks — are genuinely similar, which is where the
        # block-hash similarity of Fig. 7 comes from.
        tpar = np.arange(n) * (2.0 * np.pi / 4096.0)
        radius = (L1 + L2) * (0.55 + 0.35 * np.sin(tpar / 7.3))
        phi = np.pi * np.sin(tpar / 3.1) + 0.3 * np.sin(tpar * 1.7)
        x = radius * np.cos(phi) + rng.normal(0.0, 0.003, n)
        y = radius * np.sin(phi) + rng.normal(0.0, 0.003, n)
        x = x.astype(np.float32)
        y = y.astype(np.float32)

        self._add_region("target_x", x, DType.F32, True, VMIN, VMAX)
        self._add_region("target_y", y, DType.F32, True, VMIN, VMAX)
        self._add_region("theta1", np.zeros(n, np.float32), DType.F32, True, VMIN, VMAX)
        self._add_region("theta2", np.zeros(n, np.float32), DType.F32, True, VMIN, VMAX)
        # The only precise data: a tiny control structure.
        self._add_region("control", np.zeros(32, np.int32), DType.I32, False)

    def refresh_outputs(self) -> None:
        """Store precisely computed joint angles in the output regions."""
        theta1, theta2 = self.run(None)
        self._data["theta1"] = np.asarray(theta1, dtype=np.float32)
        self._data["theta2"] = np.asarray(theta2, dtype=np.float32)

    # ----------------------------------------------------------------- kernel

    def run(self, approximator=None):
        """Solve IK for every target; returns (theta1, theta2)."""
        approximator = approximator or IdentityApproximator()
        x = approximator.filter(self.region_data("target_x"), self.region("target_x"))
        y = approximator.filter(self.region_data("target_y"), self.region("target_y"))

        x64 = x.astype(np.float64)
        y64 = y.astype(np.float64)
        d2 = x64**2 + y64**2
        cos_t2 = (d2 - L1**2 - L2**2) / (2 * L1 * L2)
        cos_t2 = np.clip(cos_t2, -1.0, 1.0)
        theta2 = np.arccos(cos_t2)
        k1 = L1 + L2 * np.cos(theta2)
        k2 = L2 * np.sin(theta2)
        theta1 = np.arctan2(y64, x64) - np.arctan2(k2, k1)

        theta1 = approximator.filter(
            theta1.astype(np.float32), self.region("theta1")
        )
        theta2 = approximator.filter(
            theta2.astype(np.float32), self.region("theta2")
        )
        return theta1, theta2

    def error(self, precise_output, approx_output) -> float:
        """AxBench metric: relative end-effector error via forward kin."""
        pt1, pt2 = (np.asarray(v, np.float64) for v in precise_output)
        at1, at2 = (np.asarray(v, np.float64) for v in approx_output)
        px, py = forward_kinematics(pt1, pt2)
        ax, ay = forward_kinematics(at1, at2)
        dist = np.hypot(ax - px, ay - py)
        return float(np.mean(dist / (L1 + L2)))

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        for _ in range(self.TRACE_PASSES):
            self._emit_parallel_scan(builder, value_ids, "target_x", gap=18)
            self._emit_parallel_scan(builder, value_ids, "target_y", gap=18)
            self._emit_parallel_scan(builder, value_ids, "theta1", write=True, gap=18)
            self._emit_parallel_scan(builder, value_ids, "theta2", write=True, gap=18)
