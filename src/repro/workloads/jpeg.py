"""jpeg — AxBench JPEG encoder kernel.

Encodes an image with the standard JPEG pipeline: 8x8 block DCT,
quantization against the luminance table, dequantization, inverse DCT.
The image and its reconstruction are 8-bit pixels annotated
approximate — 98.4% of the LLC footprint (Table 2).

Pixels are the paper's canonical example (Fig. 1): smooth regions
produce many blocks with near-identical averages and ranges, so map
sharing is plentiful. Because the elements are 8-bit and the map space
is 14-bit, the *omit-mapping* rule of Sec. 3.7 applies: the hash is
used directly, avoiding always-zero low map bits.

Error metric (AxBench): mean relative pixel error of the encoder's
reconstructed output against the precise run.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

#: Standard JPEG luminance quantization table (quality ~50).
QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def _dct_matrix() -> np.ndarray:
    """8-point DCT-II orthonormal transform matrix."""
    k = np.arange(8)
    mat = np.cos((2 * k[None, :] + 1) * k[:, None] * np.pi / 16.0)
    mat *= np.sqrt(2.0 / 8.0)
    mat[0] *= 1.0 / np.sqrt(2.0)
    return mat


DCT = _dct_matrix()


def synthetic_image(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    """A natural-looking test image: gradients + low-frequency texture.

    Smooth structure is what gives real photographs their block-level
    similarity (Fig. 1's example image); pure noise would have none.
    """
    yy, xx = np.mgrid[0:height, 0:width]
    img = 96.0 + 80.0 * np.sin(xx / width * 2.3 * np.pi) * np.cos(yy / height * 1.7 * np.pi)
    img += 40.0 * np.sin((xx + 2 * yy) / 97.0)
    # A few brighter "objects".
    for _ in range(6):
        cy, cx = rng.integers(0, height), rng.integers(0, width)
        r = rng.integers(12, 40)
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 < r**2
        img[mask] += rng.uniform(-50, 50)
    img += rng.normal(0, 0.7, size=img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


class Jpeg(Workload):
    """JPEG encode/decode round trip over a synthetic image."""

    name = "jpeg"
    paper_approx_footprint = 98.4
    error_metric = "mean relative pixel error of reconstructed image"

    #: Rows of the i16 coefficient plane the encoder writes before
    #: entropy coding (the paper's BΔI-friendly integer data in jpeg —
    #: quantized coefficients are mostly near-zero). Matches the image
    #: height: the full coefficient plane is materialized.
    STRIPE_ROWS = 1 << 30

    def _build(self) -> None:
        side = self._scaled(1024, minimum=64)
        side = (side // 8) * 8
        img = synthetic_image(self.rng, side, side)
        self._add_region("image", img, DType.U8, True, 0.0, 255.0)
        self._add_region(
            "output", np.zeros_like(img), DType.U8, True, 0.0, 255.0
        )
        stripe_rows = min(self.STRIPE_ROWS, side)
        coeffs = np.zeros((stripe_rows, side), dtype=np.int16)
        self._add_region("coefficients", coeffs, DType.I16, True, -1024.0, 1024.0)
        self._add_region("huffman_state", np.zeros(256, np.int32), DType.I32, False)
        self.side = side

    def refresh_outputs(self) -> None:
        """Populate the output and coefficient regions with real data."""
        self._data["output"] = self.run(None)
        img = self.region_data("image")
        stripe = img[: self.region("coefficients").num_elements // self.side].astype(
            np.float64
        )
        blocks = self._blockify(stripe - 128.0)
        quantized = np.round(np.einsum("ij,njk,lk->nil", DCT, blocks, DCT) / QUANT)
        self._data["coefficients"] = (
            self._unblockify(quantized, *stripe.shape).astype(np.int16)
        )

    # ----------------------------------------------------------------- kernel

    @staticmethod
    def _blockify(img: np.ndarray) -> np.ndarray:
        """(H, W) -> (n, 8, 8) raster-ordered 8x8 tiles."""
        h, w = img.shape
        return (
            img.reshape(h // 8, 8, w // 8, 8).transpose(0, 2, 1, 3).reshape(-1, 8, 8)
        )

    @staticmethod
    def _unblockify(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
        return (
            blocks.reshape(h // 8, w // 8, 8, 8).transpose(0, 2, 1, 3).reshape(h, w)
        )

    def run(self, approximator=None):
        """Encode + reconstruct; returns the decoded image."""
        approximator = approximator or IdentityApproximator()
        img = approximator.filter(self.region_data("image"), self.region("image"))

        blocks = self._blockify(img.astype(np.float64) - 128.0)
        coeffs = np.einsum("ij,njk,lk->nil", DCT, blocks, DCT)
        quantized = np.round(coeffs / QUANT)
        # The quantized coefficients pass through the LLC via the
        # encoder's stripe buffer; approximate them stripe by stripe.
        rcoef = self.region("coefficients")
        stripe_tiles = max(rcoef.num_elements // 64, 1)
        for start in range(0, len(quantized), stripe_tiles):
            chunk = quantized[start : start + stripe_tiles]
            filtered = approximator.filter(
                np.clip(chunk, -1024, 1023).astype(np.int16), rcoef
            )
            quantized[start : start + stripe_tiles] = filtered.astype(np.float64)
        dequant = quantized * QUANT
        recon = np.einsum("ji,njk,kl->nil", DCT, dequant, DCT)
        out = np.clip(self._unblockify(recon, *img.shape) + 128.0, 0, 255).astype(np.uint8)

        out = approximator.filter(out, self.region("output"))
        return out

    def error(self, precise_output, approx_output) -> float:
        """Mean relative pixel error (AxBench image diff), range 0-1."""
        p = np.asarray(precise_output, dtype=np.float64)
        a = np.asarray(approx_output, dtype=np.float64)
        return float(np.mean(np.abs(a - p)) / 255.0)

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        # Streaming encoder: one pass reading the image, the stripe
        # coefficient buffer written and re-read repeatedly, one pass
        # writing the output, with the tiny Huffman state touched
        # throughout.
        self._emit_parallel_scan(builder, value_ids, "image", gap=28)
        self._emit_parallel_scan(builder, value_ids, "coefficients", write=True, gap=10)
        self._emit_parallel_scan(builder, value_ids, "coefficients", gap=10)
        self._emit_parallel_scan(builder, value_ids, "huffman_state", repeats=8, gap=4)
        self._emit_parallel_scan(builder, value_ids, "output", write=True, gap=28)
        self._emit_parallel_scan(builder, value_ids, "image", gap=28)
        self._emit_parallel_scan(builder, value_ids, "output", write=True, gap=28)
