"""Workload registry.

Central lookup for the nine benchmark reproductions, in the order the
paper's figures present them.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.blackscholes import Blackscholes
from repro.workloads.canneal import Canneal
from repro.workloads.ferret import Ferret
from repro.workloads.fluidanimate import Fluidanimate
from repro.workloads.inversek2j import Inversek2j
from repro.workloads.jmeint import Jmeint
from repro.workloads.jpeg import Jpeg
from repro.workloads.kmeans import Kmeans
from repro.workloads.swaptions import Swaptions

_REGISTRY: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        Blackscholes,
        Canneal,
        Ferret,
        Fluidanimate,
        Inversek2j,
        Jmeint,
        Jpeg,
        Kmeans,
        Swaptions,
    )
}


def workload_names() -> List[str]:
    """All benchmark names, in figure order."""
    return list(_REGISTRY)


def get_workload(name: str, seed: int = 0, scale: float = 1.0) -> Workload:
    """Instantiate a workload by name.

    Args:
        name: benchmark name (see :func:`workload_names`).
        seed: data-generation seed.
        scale: dataset size multiplier (tests use < 1).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        # ConfigError subclasses ValueError, so pre-existing callers
        # catching ValueError keep working; the CLI maps it to exit 2.
        raise ConfigError(
            f"unknown workload {name!r}; choose from {workload_names()}",
            field="workload",
        ) from None
    return cls(seed=seed, scale=scale)


def all_workloads(seed: int = 0, scale: float = 1.0) -> List[Workload]:
    """Instantiate every benchmark."""
    return [get_workload(name, seed=seed, scale=scale) for name in workload_names()]
