"""ferret — PARSEC content-based image similarity search.

Given query images, ferret ranks a database of image feature vectors
by similarity and returns the top-K matches. Feature vectors of
similar images cluster tightly, which is the approximate similarity
Doppelgänger harvests.

The paper notes (Sec. 5.2) that ferret's error metric is *pessimistic*:
it assumes the precise execution's result images are the only
acceptable answers per query, although other database images may be
equally acceptable — ferret is one of the two benchmarks whose reported
error exceeds 10%. We reproduce that metric: error is the fraction of
top-K results that differ from the precise run's top-K.

Annotations: database and query feature vectors are approximate
floats; result rank lists are precise integers.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.functional import IdentityApproximator
from repro.trace.record import DType
from repro.trace.trace import TraceBuilder
from repro.workloads.base import Workload

VMIN, VMAX = 0.0, 1.0
DIM = 48  # feature dimensionality (3 cache blocks per vector)
TOP_K = 8


class Ferret(Workload):
    """Top-K feature-vector similarity search over a clustered database."""

    name = "ferret"
    paper_approx_footprint = 45.9
    error_metric = "fraction of top-K results differing from precise run"

    def _build(self) -> None:
        n_db = self._scaled(6144)
        n_query = self._scaled(96)
        rng = self.rng
        # Clustered database: images of the same scene type have
        # near-identical descriptors. 64 scene clusters, tight spread.
        n_clusters = 64
        centers = rng.uniform(0.1, 0.9, size=(n_clusters, DIM))
        labels = rng.integers(0, n_clusters, n_db)
        db = centers[labels] + rng.normal(0.0, 0.02, size=(n_db, DIM))
        db = np.clip(db, 0.0, 1.0).astype(np.float32)
        # Queries are perturbed database entries (the query image is a
        # photo of something that exists in the database).
        picks = rng.integers(0, n_db, n_query)
        queries = np.clip(
            db[picks] + rng.normal(0.0, 0.01, size=(n_query, DIM)), 0.0, 1.0
        ).astype(np.float32)

        self._add_region("database", db, DType.F32, True, VMIN, VMAX)
        self._add_region("queries", queries, DType.F32, True, VMIN, VMAX)
        # Precise: per-entry metadata (image ids, offsets) and the
        # output rank table — ferret keeps a sizeable precise index.
        meta = rng.integers(0, 1 << 20, size=(n_db, 56), dtype=np.int32)
        self._add_region("metadata", meta, DType.I32, False)
        self._add_region(
            "results", np.zeros((n_query, TOP_K), dtype=np.int32), DType.I32, False
        )

    # ----------------------------------------------------------------- kernel

    def run(self, approximator=None):
        """Rank the database for every query; returns top-K id matrix."""
        approximator = approximator or IdentityApproximator()
        db = approximator.filter(self.region_data("database"), self.region("database"))
        queries = approximator.filter(self.region_data("queries"), self.region("queries"))

        db64 = db.astype(np.float64)
        results = np.empty((len(queries), TOP_K), dtype=np.int64)
        for qi, q in enumerate(queries.astype(np.float64)):
            dists = np.sum((db64 - q) ** 2, axis=1)
            # Deterministic top-K: stable sort by (distance, id).
            order = np.lexsort((np.arange(len(dists)), dists))
            results[qi] = order[:TOP_K]
        return results

    def error(self, precise_output, approx_output) -> float:
        """Pessimistic rank error: 1 - |topK ∩ topK_precise| / K."""
        p = np.asarray(precise_output)
        a = np.asarray(approx_output)
        overlaps = [
            len(set(p[i]) & set(a[i])) / p.shape[1] for i in range(len(p))
        ]
        return 1.0 - float(np.mean(overlaps))

    # ------------------------------------------------------------------ trace

    def _emit_trace(self, builder: TraceBuilder, value_ids: Dict[str, np.ndarray]) -> None:
        # Each query streams the whole database (plus its metadata),
        # so the database has heavy LLC reuse across queries. The trace
        # covers a representative subset of queries.
        n_trace_queries = 4
        for q in range(n_trace_queries):
            self._emit_parallel_scan(builder, value_ids, "database", gap=16)
            self._emit_parallel_scan(builder, value_ids, "metadata", gap=8)
            self._emit_parallel_scan(builder, value_ids, "queries", gap=16)
        self._emit_parallel_scan(builder, value_ids, "results", write=True, gap=16)
