"""The nine annotated benchmarks of the paper's evaluation (Sec. 4.1).

PARSEC: blackscholes, canneal, ferret, fluidanimate, swaptions.
AxBench: inversek2j, jmeint, jpeg, kmeans.

Each workload provides realistic synthetic data with programmer
annotations, the real kernel with an application-level error metric,
and a multi-core memory trace generator. See
:class:`repro.workloads.base.Workload` and DESIGN.md Sec. 6 for how
each dataset is engineered to exhibit the paper's documented value
behaviour.
"""

from repro.workloads.base import Workload
from repro.workloads.blackscholes import Blackscholes
from repro.workloads.canneal import Canneal
from repro.workloads.ferret import Ferret
from repro.workloads.fluidanimate import Fluidanimate
from repro.workloads.inversek2j import Inversek2j
from repro.workloads.jmeint import Jmeint
from repro.workloads.jpeg import Jpeg
from repro.workloads.kmeans import Kmeans
from repro.workloads.swaptions import Swaptions
from repro.workloads.registry import all_workloads, get_workload, workload_names

__all__ = [
    "Blackscholes",
    "Canneal",
    "Ferret",
    "Fluidanimate",
    "Inversek2j",
    "Jmeint",
    "Jpeg",
    "Kmeans",
    "Swaptions",
    "Workload",
    "all_workloads",
    "get_workload",
    "workload_names",
]
