"""Thin HTTP client for the ``repro serve`` daemon (stdlib urllib).

The programmatic face of the job API — what ``repro submit`` /
``repro jobs`` / ``repro watch`` build on, and what notebooks or
external schedulers import::

    from repro.client import ServeClient

    client = ServeClient("http://127.0.0.1:8765")
    job = client.submit({"experiments": ["table2"], "scale": 0.05})
    final = client.wait(job["id"])
    for event in client.events(job["id"]):   # replays a finished job too
        print(event["kind"], event.get("state"))

Every method raises :class:`~repro.errors.ConfigError` when the daemon
is unreachable or rejects the request, so CLI callers inherit the
standard exit-code mapping (2) for free.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, List, Optional

from repro.errors import ConfigError


class ServeClient:
    """Client for one daemon at ``base_url``.

    Args:
        base_url: e.g. ``http://127.0.0.1:8765`` (trailing slash ok).
        timeout: per-request socket timeout in seconds (SSE reads use
            a longer timeout that spans the daemon's keep-alives).
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        """Bind to ``base_url`` (no connection is made yet)."""
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing

    def _request(
        self,
        path: str,
        *,
        method: str = "GET",
        body: Optional[dict] = None,
        timeout: Optional[float] = None,
    ):
        """One JSON request/response round trip.

        Raises:
            ConfigError: connection refused / daemon error response
                (the server's JSON ``error`` message is surfaced).
        """
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error")
            except Exception:
                message = None
            raise ConfigError(
                message or f"daemon returned HTTP {exc.code} for {path}",
                field="serve",
            ) from exc
        except urllib.error.URLError as exc:
            raise ConfigError(
                f"daemon not reachable at {self.base_url}: {exc.reason}",
                field="serve",
            ) from exc

    # --------------------------------------------------------------- the API

    def healthz(self) -> dict:
        """``GET /healthz``: liveness + job tally + cache stats."""
        return self._request("/healthz")

    def submit(self, spec: dict) -> dict:
        """``POST /jobs``: submit a job spec; returns the created job."""
        return self._request("/jobs", method="POST", body=spec)

    def jobs(self) -> List[dict]:
        """``GET /jobs``: every known job, newest first."""
        return self._request("/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``: one job's state."""
        return self._request(f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/<id>``: request cancellation."""
        return self._request(f"/jobs/{job_id}", method="DELETE")

    def wait(
        self,
        job_id: str,
        *,
        timeout: Optional[float] = None,
        poll_s: float = 0.5,
    ) -> dict:
        """Poll until the job is terminal; returns its final dict.

        Raises:
            ConfigError: ``timeout`` seconds elapsed first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ConfigError(
                    f"job {job_id} still {job['state']} after {timeout:g}s",
                    field="serve",
                )
            time.sleep(poll_s)

    def events(self, job_id: str) -> Iterator[dict]:
        """``GET /jobs/<id>/events``: yield SSE events as dicts.

        Replays the job's retained history first, then live events;
        returns when the daemon closes the stream (job terminal) or
        the connection drops. Keep-alive comments are skipped.
        """
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events",
            headers={"Accept": "text/event-stream"},
        )
        try:
            response = urllib.request.urlopen(request, timeout=max(60.0, self.timeout))
        except urllib.error.HTTPError as exc:
            raise ConfigError(
                f"daemon returned HTTP {exc.code} for /jobs/{job_id}/events",
                field="serve",
            ) from exc
        except urllib.error.URLError as exc:
            raise ConfigError(
                f"daemon not reachable at {self.base_url}: {exc.reason}",
                field="serve",
            ) from exc
        with response:
            try:
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\n")
                    if line.startswith("data:"):
                        yield json.loads(line[len("data:"):].strip())
            except (OSError, TimeoutError):
                return
