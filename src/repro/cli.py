"""Command-line interface for the experiment harness.

Regenerate any table or figure of the paper from the shell::

    python -m repro.cli list
    python -m repro.cli fig07
    python -m repro.cli fig10 --scale 0.25 --workloads canneal jpeg
    python -m repro.cli all --out results/

Experiment names follow the paper: ``fig02``, ``table2``, ``fig07``,
``fig08``, ``fig09``, ``fig10``, ``fig11``, ``fig12``, ``fig13``,
``fig14``, ``table3``, ``headline``. Two meta-names select several at
once: ``all`` (everything) and ``experiments`` (an explicit sweep —
``repro experiments fig10 fig11 --jobs 4`` — whose simulations are
prefetched across a process pool with ``--jobs``).

Engine and parallelism::

    python -m repro.cli table2 --engine reference   # bit-identical check
    python -m repro.cli experiments --jobs 4        # full sweep, 4 procs

Observability (see ``docs/observability.md``)::

    python -m repro.cli fig10 --scale 0.25 --profile
    python -m repro.cli fig10 --trace-out trace.jsonl --trace-sample 100
    python -m repro.cli report
    python -m repro.cli compare old/BENCH_obs.json new/BENCH_obs.json

``--profile`` prints a per-phase timing breakdown and writes the event
trace and metrics snapshot next to the JSON tables. Every experiment
additionally serializes its tables to ``results/json/<name>.json`` and
updates the cumulative ``results/json/BENCH_obs.json`` run summary;
``report`` renders that summary back as text and ``compare`` diffs two
summaries, exiting 1 on a regression.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from time import perf_counter_ns
from typing import Dict, Optional

from repro.harness.experiments import EXPERIMENTS as _EXPERIMENTS
from repro.harness.experiments import experiment_names
from repro.harness.runner import ExperimentContext
from repro.obs import Observability, configure_logging, get_logger
from repro.obs.output import (
    DEFAULT_JSON_DIR,
    render_report,
    save_experiment_json,
    update_bench_summary,
)

__all__ = ["experiment_names", "main", "run_experiment"]

log = get_logger("cli")


def _run_experiment(
    name: str,
    ctx: Optional[ExperimentContext],
    out: Optional[str],
    json_dir: str = DEFAULT_JSON_DIR,
    obs: Optional[Observability] = None,
) -> float:
    """Run one experiment; print, JSON-serialize and optionally save it.

    Returns the experiment's wall time in seconds.
    """
    driver, needs_ctx = _EXPERIMENTS[name]
    obs = obs or Observability.disabled()
    start_ns = perf_counter_ns()
    with obs.profiler.phase(f"experiment/{name}"):
        result = driver(ctx) if needs_ctx else driver()
    tables: Dict[str, object] = result if isinstance(result, dict) else {"": result}
    for key, table in tables.items():
        print()
        print(table.render())
        if out:
            filename = f"{name}_{key}.txt" if key else f"{name}.txt"
            table.save(directory=out, filename=filename)
    wall_s = (perf_counter_ns() - start_ns) / 1e9
    save_experiment_json(name, tables, json_dir)
    update_bench_summary(
        json_dir,
        experiments={
            name: {"wall_s": wall_s, "tables": [k or "main" for k in tables]}
        },
    )
    print(f"\n[{name} done in {wall_s:.1f}s]")
    return wall_s


def run_experiment(
    name: str,
    ctx: Optional[ExperimentContext],
    out: Optional[str],
    json_dir: str = DEFAULT_JSON_DIR,
    obs: Optional[Observability] = None,
) -> float:
    """Deprecated shim; use :func:`repro.run_experiment` instead.

    Kept so pre-1.1 scripts keep working: same signature, still prints
    the tables and returns the wall time in seconds. The supported
    replacement returns the tables themselves and lives in
    :mod:`repro.api`.
    """
    warnings.warn(
        "repro.cli.run_experiment is deprecated; use repro.run_experiment "
        "(which returns the tables) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_experiment(name, ctx, out, json_dir=json_dir, obs=obs)


def _main_compare(argv) -> int:
    """The ``compare`` subcommand: diff two BENCH_obs.json files."""
    from repro.obs.compare import compare_bench

    parser = argparse.ArgumentParser(
        prog="repro compare",
        description="Diff two BENCH_obs.json summaries; exit 1 on regression.",
    )
    parser.add_argument("old", help="baseline BENCH_obs.json")
    parser.add_argument("new", help="candidate BENCH_obs.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="tolerance: relative for wall times, absolute for "
        "hit/miss rates and error (default 0.05)",
    )
    parser.add_argument(
        "--wall-threshold",
        type=float,
        default=None,
        help="separate (relative) tolerance for the noisy wall-time "
        "metrics; defaults to --threshold",
    )
    args = parser.parse_args(argv)
    comparison = compare_bench(
        args.old, args.new,
        threshold=args.threshold, wall_threshold=args.wall_threshold,
    )
    print(comparison.render())
    return 1 if comparison.regressions else 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', 'experiments', 'list', 'report' or 'compare'",
    )
    parser.add_argument(
        "extra",
        nargs="*",
        help="with 'experiments': the names to sweep (default: all)",
    )
    parser.add_argument("--seed", type=int, default=None, help="data seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale (default 1.0)"
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, help="benchmark subset"
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=("batched", "reference"),
        help="simulation engine (default: batched; both are bit-identical)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="prefetch simulations across N worker processes (default 1)",
    )
    parser.add_argument("--out", default=None, help="directory to save text tables")
    parser.add_argument(
        "--json-out",
        default=DEFAULT_JSON_DIR,
        help=f"directory for JSON tables and BENCH_obs.json (default {DEFAULT_JSON_DIR})",
    )
    parser.add_argument(
        "--log-level",
        default="WARNING",
        type=str.upper,
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="logging level for the repro logger",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable observability: per-phase timing breakdown, event trace "
        "and metrics snapshot under --json-out",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a JSONL event trace to this path (implies tracing)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        help="emit 1-in-N traced events (default 1 = every event)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write a metrics JSON snapshot to this path (implies metrics)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "compare":
        return _main_compare(argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0

    if args.experiment == "report":
        print(render_report(args.json_out))
        return 0

    if args.experiment in ("all", "experiments"):
        names = args.extra or experiment_names()
        unknown = [n for n in names if n not in _EXPERIMENTS]
        if unknown:
            parser.error(
                f"unknown experiment(s) {unknown}; choose from {experiment_names()}"
            )
    elif args.experiment in _EXPERIMENTS:
        names = [args.experiment] + [
            n for n in args.extra if n != args.experiment
        ]
        unknown = [n for n in names if n not in _EXPERIMENTS]
        if unknown:
            parser.error(
                f"unknown experiment(s) {unknown}; choose from {experiment_names()}"
            )
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {experiment_names()}, 'all' or 'experiments'"
        )

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.trace_sample < 1:
        parser.error(f"--trace-sample must be >= 1, got {args.trace_sample}")

    enabled = args.profile or bool(args.trace_out) or bool(args.metrics_out)
    trace_path = args.trace_out
    if args.profile and trace_path is None:
        trace_path = os.path.join(args.json_out, f"trace_{args.experiment}.jsonl")
    metrics_path = args.metrics_out
    if args.profile and metrics_path is None:
        metrics_path = os.path.join(args.json_out, f"metrics_{args.experiment}.json")
    obs = (
        Observability(
            enabled=enabled, trace_path=trace_path, trace_sample=args.trace_sample
        )
        if enabled
        else Observability.disabled()
    )

    ctx = None
    if any(_EXPERIMENTS[n][1] for n in names):
        ctx = ExperimentContext(
            seed=args.seed,
            scale=args.scale,
            workloads=args.workloads,
            obs=obs,
            engine=args.engine,
        )
        if args.jobs > 1:
            from repro.harness.parallel import prefetch_runs

            if enabled:
                print(
                    "[note: --jobs simulates in worker processes; per-access "
                    "traces/metrics are not captured for prefetched runs]"
                )
            fetched = prefetch_runs(ctx, names, args.jobs)
            if fetched:
                print(f"[prefetched {fetched} runs across {args.jobs} jobs]")
    for name in names:
        _run_experiment(name, ctx, args.out, json_dir=args.json_out, obs=obs)

    if enabled:
        if metrics_path:
            obs.registry.save_json(metrics_path)
            log.info("metrics snapshot written to %s", metrics_path)
        obs.close()
        update_bench_summary(
            args.json_out,
            runs=ctx.run_summaries() if ctx is not None else None,
            profile=obs.profiler.report(),
            context=ctx.context_summary() if ctx is not None else None,
        )
        if args.profile:
            print()
            print(obs.profiler.render())
            if trace_path and obs.jsonl is not None:
                print(f"\n[event trace: {obs.jsonl.written} events -> {trace_path}]")
    elif ctx is not None:
        # JSON output is always on; fold run stats into the summary too.
        update_bench_summary(
            args.json_out,
            runs=ctx.run_summaries(),
            context=ctx.context_summary(),
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
