"""Command-line interface for the experiment harness.

Regenerate any table or figure of the paper from the shell::

    python -m repro.cli list
    python -m repro.cli fig07
    python -m repro.cli fig10 --scale 0.25 --workloads canneal jpeg
    python -m repro.cli all --out results/

Experiment names follow the paper: ``fig02``, ``table2``, ``fig07``,
``fig08``, ``fig09``, ``fig10``, ``fig11``, ``fig12``, ``fig13``,
``fig14``, ``table3``, ``headline``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, Optional

from repro.harness import experiments as E
from repro.harness.runner import ExperimentContext

#: name -> (driver, needs_context)
_EXPERIMENTS = {
    "fig02": (E.fig02_threshold_similarity, True),
    "table2": (E.table2_approx_footprint, True),
    "fig07": (E.fig07_map_space_savings, True),
    "fig08": (E.fig08_compression_comparison, True),
    "fig09": (E.fig09_map_space, True),
    "fig10": (E.fig10_data_array, True),
    "fig11": (E.fig11_energy_reduction, True),
    "fig12": (E.fig12_offchip_traffic, True),
    "fig13": (E.fig13_area_reduction, False),
    "fig14": (E.fig14_unidoppelganger, True),
    "table3": (E.table3_hardware_cost, False),
    "headline": (E.summary_headline, True),
}


def experiment_names() -> list:
    """All experiment names, in paper order."""
    return list(_EXPERIMENTS)


def run_experiment(name: str, ctx: Optional[ExperimentContext], out: Optional[str]) -> None:
    """Run one experiment; print (and optionally save) its tables."""
    driver, needs_ctx = _EXPERIMENTS[name]
    start = time.time()
    result = driver(ctx) if needs_ctx else driver()
    tables: Dict[str, object] = result if isinstance(result, dict) else {"": result}
    for key, table in tables.items():
        print()
        print(table.render())
        if out:
            filename = f"{name}_{key}.txt" if key else f"{name}.txt"
            table.save(directory=out, filename=filename)
    print(f"\n[{name} done in {time.time() - start:.1f}s]")


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list'",
    )
    parser.add_argument("--seed", type=int, default=None, help="data seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale (default 1.0)"
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, help="benchmark subset"
    )
    parser.add_argument("--out", default=None, help="directory to save tables")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0

    if args.experiment == "all":
        names = experiment_names()
    elif args.experiment in _EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {experiment_names()} or 'all'"
        )

    ctx = None
    if any(_EXPERIMENTS[n][1] for n in names):
        ctx = ExperimentContext(seed=args.seed, scale=args.scale, workloads=args.workloads)
    for name in names:
        run_experiment(name, ctx, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
