"""Command-line interface for the experiment harness.

Experiments are :class:`~repro.harness.strategy.ExperimentStrategy`
plugins resolved through the strategy registry — the CLI has no
per-experiment branches. Regenerate any table or figure of the paper
from the shell::

    python -m repro.cli list                 # registered names
    python -m repro.cli experiments --list   # names + requirements
    python -m repro.cli <name>
    python -m repro.cli run <name> --scale 0.25 --workloads canneal jpeg
    python -m repro.cli all --out results/

``list`` prints the registered experiment names (the paper's figures
and tables, plus any installed plugin). Three forms run them: a bare
``<name> [name ...]``, the equivalent explicit ``run <name> [name
...]``, and two meta-names selecting several at once — ``all``
(everything) and ``experiments`` (an explicit sweep, default all).
Both subparsers share one flag set, so every option below works on
each form.

Engine and parallelism::

    python -m repro.cli <name> --engine reference   # bit-identical check
    python -m repro.cli experiments --jobs 4        # full sweep, 4 procs

Observability (see ``docs/observability.md``)::

    python -m repro.cli <name> --scale 0.25 --profile
    python -m repro.cli <name> --trace-out trace.jsonl --trace-sample 100
    python -m repro.cli report
    python -m repro.cli compare old/BENCH_obs.json new/BENCH_obs.json

Run history (every invocation lands in a sqlite store unless
``--no-store``; path from ``--store``, ``REPRO_STORE`` or
``<--json-out>/history.db``)::

    python -m repro.cli history list
    python -m repro.cli history top --metric accesses_per_sec
    python -m repro.cli history query 'SELECT workload, MAX(error) \
        FROM results GROUP BY workload'
    python -m repro.cli compare store:last-1 store:last
    python -m repro.cli experiments <name> --jobs 4 --progress

Resilience (see ``docs/robustness.md``)::

    python -m repro.cli <name> --fault-rate 1e-3 --fault-seed 3
    python -m repro.cli experiments --jobs 4 --timeout 900 --retries 2 \
        --checkpoint-dir ckpt/
    python -m repro.cli experiments --jobs 4 --checkpoint-dir ckpt/ --resume
    python -m repro.cli frontier --error-budget 0.05 --voltage-steps 8 \
        --jobs 4 --checkpoint-dir ckpt/
    python -m repro.cli replay results/trace.npz

Typed failures map to distinct exit codes — 2 for configuration
errors (including an unknown experiment name), 3 for malformed trace
files, 4 for simulation faults — with a one-line message on stderr;
``--log-level debug`` additionally prints the full traceback.

``--profile`` prints a per-phase timing breakdown and writes the event
trace and metrics snapshot next to the JSON tables. Every experiment
additionally serializes its tables to ``results/json/<name>.json`` and
updates the cumulative ``results/json/BENCH_obs.json`` run summary;
``report`` renders that summary back as text and ``compare`` diffs two
summaries, exiting 1 on a regression.

Simulation-as-a-service (see ``docs/serving.md``)::

    python -m repro.cli serve --workers 2          # run the job daemon
    python -m repro.cli submit table2 --scale 0.25 --wait
    python -m repro.cli jobs --state running
    python -m repro.cli watch <job-id>             # live SSE event tail

``--version`` (or ``-V``) prints the package version and exits.

Third-party strategies installed under the ``repro.experiments`` entry
point appear in ``list`` and run exactly like the built-ins — see
``docs/experiments.md``.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import Optional

from repro.errors import ConfigError, ReproError
from repro.harness.strategy import experiment_names, registry, run_strategies
from repro.obs import Observability, configure_logging, get_logger
from repro.obs.output import (
    DEFAULT_JSON_DIR,
    render_report,
    update_bench_summary,
)

__all__ = ["experiment_names", "main"]

log = get_logger("cli")


def _main_compare(argv) -> int:
    """The ``compare`` subcommand: diff two summaries or store runs.

    Either positional may be a ``BENCH_obs.json`` path or a ``store:``
    reference (``store:last``, ``store:last-1``, ``store:<id>``) into
    the run-history store — so the CI perf gate can diff against
    recorded history instead of a cached file.
    """
    from repro.obs.compare import compare_bench
    from repro.obs.store import default_store_path

    parser = argparse.ArgumentParser(
        prog="repro compare",
        description="Diff two BENCH_obs.json summaries (or store: run "
        "refs); exit 1 on regression.",
    )
    parser.add_argument(
        "old", help="baseline BENCH_obs.json path or store: ref"
    )
    parser.add_argument(
        "new", help="candidate BENCH_obs.json path or store: ref"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="tolerance: relative for wall times, absolute for "
        "hit/miss rates and error (default 0.05)",
    )
    parser.add_argument(
        "--wall-threshold",
        type=float,
        default=None,
        help="separate (relative) tolerance for the noisy wall-time "
        "metrics; defaults to --threshold",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="history database for store: refs (default: REPRO_STORE "
        "or results/json/history.db)",
    )
    args = parser.parse_args(argv)
    comparison = compare_bench(
        args.old, args.new,
        threshold=args.threshold, wall_threshold=args.wall_threshold,
        store_path=args.store or default_store_path(),
    )
    print(comparison.render())
    return 1 if comparison.regressions else 0


def _replay_engines(trace, spec, engine: Optional[str]) -> int:
    """Run a trace under one engine — or both, diffing the results.

    With ``engine="both"`` the trace is simulated twice on fresh
    hierarchies and every functional field of the two
    :class:`~repro.hierarchy.system.SystemResult` dicts must agree
    (engines are bit-identical by contract); a mismatch prints the
    offending fields and returns 1.
    """
    from repro.harness.runner import run_trace

    engines = ("batched", "reference") if engine == "both" else (engine,)
    results = {}
    for name in engines:
        record = run_trace(trace, spec, engine=name)
        results[name or "batched"] = record
        result = record.system
        shown = name or "batched"
        print(
            f"  [{shown}] cycles={result.cycles} "
            f"llc_miss_rate={result.llc_miss_rate:.4f} "
            f"traffic_bytes={result.traffic_bytes}"
        )
    if engine == "both":
        batched = results["batched"].system.to_dict()
        reference = results["reference"].system.to_dict()
        diff = [k for k in batched if batched[k] != reference.get(k)]
        if diff:
            print(
                f"ENGINE MISMATCH on {sorted(diff)} — engines must be "
                "bit-identical", file=sys.stderr,
            )
            return 1
        print("  engines agree bit-identically")
    return 0


def _main_replay(argv) -> int:
    """The ``replay`` subcommand: simulate a saved ``.npz`` trace.

    Exercises the hardened trace loader end to end: a missing,
    truncated or version-skewed file surfaces as a
    :class:`~repro.errors.TraceFormatError` (exit code 3) naming the
    file and offending field. ``--engine both`` replays twice and
    verifies the engines agree bit-identically.
    """
    from repro.harness.runner import ConfigSpec
    from repro.trace.io import load_trace

    parser = argparse.ArgumentParser(
        prog="repro replay",
        description="Simulate a trace saved with repro.trace.io.save_trace.",
    )
    parser.add_argument("trace", help="trace .npz file")
    parser.add_argument(
        "--config",
        default="baseline",
        choices=("baseline", "dopp", "uni"),
        help="LLC organization to replay under (default baseline)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=("batched", "reference", "both"),
        help="simulation engine; 'both' verifies bit-identical replay "
        "(default: batched)",
    )
    args = parser.parse_args(argv)
    trace = load_trace(args.trace)
    spec = ConfigSpec(args.config)
    print(f"replaying {trace.name}: {len(trace)} accesses under {spec.label()}")
    return _replay_engines(trace, spec, args.engine)


def _main_ingest(argv) -> int:
    """The ``ingest`` subcommand: import an external trace format.

    Streams the input through a format adapter (bounded by ``--chunk``
    records, gzip-aware), infers annotated regions, writes a ``.npz``
    trace with ``--out``, and with ``--simulate`` replays the imported
    trace — under both engines by default, verifying they agree.
    Malformed input exits 3 with path:line context (see
    ``docs/workloads.md``).
    """
    from repro.harness.runner import ConfigSpec
    from repro.ingest import IngestOptions, adapter_names, ingest_trace
    from repro.ingest.values import value_model_names
    from repro.trace.io import save_trace
    from repro.trace.record import DType

    parser = argparse.ArgumentParser(
        prog="repro ingest",
        description="Import an external memory trace (lackey, dinero, "
        "CSV, JSONL; .gz transparently) into a repro trace.",
    )
    parser.add_argument("input", help="trace file to ingest")
    parser.add_argument(
        "--format",
        default=None,
        choices=adapter_names(),
        help="input format (default: detect from the file suffix)",
    )
    parser.add_argument("--out", default=None, help="write the trace here (.npz)")
    parser.add_argument("--name", default=None, help="trace name (default: file stem)")
    parser.add_argument(
        "--chunk",
        type=int,
        default=65536,
        help="records per streaming chunk — bounds parser memory (default 65536)",
    )
    parser.add_argument(
        "--block-size", type=int, default=64, help="cache block size (default 64)"
    )
    parser.add_argument(
        "--gap-blocks",
        type=int,
        default=64,
        help="split inferred regions at address gaps larger than this many "
        "blocks (default 64)",
    )
    parser.add_argument(
        "--dtype",
        default="F32",
        choices=[d.name for d in DType],
        help="declared element type for inferred regions (default F32)",
    )
    parser.add_argument(
        "--approx",
        default="auto",
        choices=("auto", "all", "none"),
        help="annotation policy: auto (clusters >= --approx-min-blocks "
        "become approximate), all, or none (default auto)",
    )
    parser.add_argument(
        "--approx-min-blocks",
        type=int,
        default=2,
        help="auto policy: smaller clusters stay precise (default 2)",
    )
    parser.add_argument(
        "--value-model",
        default="gradient",
        choices=value_model_names(),
        help="synthetic values for address-only formats (default gradient)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="value-model seed (default 7)"
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=1,
        help="stripe single-threaded formats across N cores (default 1)",
    )
    parser.add_argument(
        "--no-spill",
        action="store_true",
        help="re-stream gzip inputs per pass instead of decompressing "
        "once into a temporary spill file",
    )
    parser.add_argument(
        "--simulate",
        action="store_true",
        help="replay the imported trace after ingesting",
    )
    parser.add_argument(
        "--config",
        default="dopp",
        choices=("baseline", "dopp", "uni"),
        help="LLC organization for --simulate (default dopp)",
    )
    parser.add_argument(
        "--engine",
        default="both",
        choices=("batched", "reference", "both"),
        help="engine for --simulate; 'both' verifies bit-identical "
        "replay (default both)",
    )
    args = parser.parse_args(argv)

    options = IngestOptions(
        format=args.format,
        chunk_size=args.chunk,
        block_size=args.block_size,
        gap_blocks=args.gap_blocks,
        dtype=DType[args.dtype],
        approx=args.approx,
        approx_min_blocks=args.approx_min_blocks,
        value_model=args.value_model,
        seed=args.seed,
        cores=args.cores,
        name=args.name,
        spill=not args.no_spill,
    )
    trace = ingest_trace(args.input, options)
    stats = trace.ingest_stats
    print(
        f"ingested {trace.name} [{stats['format']}]: {stats['records']} "
        f"accesses in {stats['batches']} chunks (max {stats['max_batch']} "
        f"<= chunk {stats['chunk_size']})"
    )
    print(
        f"  regions: {stats['regions']} inferred, {stats['approx_regions']} "
        f"approximate ({100 * stats['approx_fraction']:.1f}% of "
        f"{stats['footprint_bytes']} bytes); values: "
        + ("embedded" if stats["embedded_values"]
           else f"synthetic ({stats['value_model']})")
    )
    if args.out:
        save_trace(trace, args.out)
        print(f"  trace written to {args.out}")
    if args.simulate:
        spec = ConfigSpec(args.config)
        print(f"replaying under {spec.label()}")
        return _replay_engines(trace, spec, args.engine)
    return 0


def _package_version() -> str:
    """The package version (``--version`` / ``repro -V``)."""
    from repro import __version__

    return __version__


def _common_options() -> argparse.ArgumentParser:
    """The flag set shared by every experiment-running form.

    Built once as an argparse *parent* parser (``add_help=False``) and
    attached to both the ``run`` and ``experiments`` subparsers via
    ``parents=[...]`` — a flag added here appears on every form, so
    the two can never drift apart.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--version",
        "-V",
        action="version",
        version=f"repro {_package_version()}",
        help="print the package version and exit",
    )
    common.add_argument("--seed", type=int, default=None, help="data seed (default 7)")
    common.add_argument(
        "--scale", type=float, default=None, help="dataset scale (default 1.0)"
    )
    common.add_argument(
        "--workloads", nargs="*", default=None, help="benchmark subset"
    )
    common.add_argument(
        "--engine",
        default=None,
        choices=("batched", "reference"),
        help="simulation engine (default: batched; both are bit-identical)",
    )
    common.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="prefetch simulations across N worker processes (default 1)",
    )
    common.add_argument(
        "--no-split-fans",
        action="store_true",
        help="keep one --jobs task per workload instead of splitting a "
        "workload's config fan across idle workers (results are "
        "identical either way)",
    )
    resil = common.add_argument_group(
        "resilience", "crash-tolerant sweeps (docs/robustness.md)"
    )
    resil.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="seconds allowed per parallel workload task before its "
        "worker is killed and retried (default: no timeout)",
    )
    resil.add_argument(
        "--retries",
        type=int,
        default=0,
        help="times to retry failed/timed-out parallel tasks with "
        "exponential backoff (default 0)",
    )
    resil.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal each completed (workload, config) result here so "
        "an interrupted --jobs sweep can be resumed",
    )
    resil.add_argument(
        "--resume",
        action="store_true",
        help="load completed results from --checkpoint-dir before "
        "simulating (skips finished pairs; byte-identical output)",
    )
    frontier = common.add_argument_group(
        "frontier", "closed-loop error-budget search (docs/robustness.md)"
    )
    frontier.add_argument(
        "--error-budget",
        type=float,
        default=None,
        help="frontier experiment: maximum acceptable output error per "
        "workload (default 0.1)",
    )
    frontier.add_argument(
        "--voltage-steps",
        type=int,
        default=None,
        help="frontier experiment: voltage-ladder length, nominal plus "
        "scaled steps (default 8)",
    )
    faults = common.add_argument_group(
        "fault injection", "deterministic seeded faults (docs/robustness.md)"
    )
    faults.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-read probability of a transient bit-flip fault "
        "(default 0 = off)",
    )
    faults.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="fault-stream seed (independent of --seed; default 0)",
    )
    faults.add_argument(
        "--fault-flip-bits",
        type=int,
        default=1,
        help="bits flipped per faulty read (default 1)",
    )
    faults.add_argument(
        "--fault-burst-rate",
        type=float,
        default=0.0,
        help="per-read probability of starting a fault burst (default 0)",
    )
    faults.add_argument(
        "--fault-burst-len",
        type=int,
        default=8,
        help="reads per fault burst (default 8)",
    )
    faults.add_argument(
        "--fault-stuck-bits",
        type=int,
        default=0,
        help="permanently stuck bit positions in the approximate data "
        "array (default 0)",
    )
    faults.add_argument(
        "--fault-targets",
        nargs="*",
        default=["approx_data"],
        help="structures to inject into: approx_data, llc, dram "
        "(default: approx_data)",
    )
    common.add_argument("--out", default=None, help="directory to save text tables")
    common.add_argument(
        "--json-out",
        default=DEFAULT_JSON_DIR,
        help=f"directory for JSON tables and BENCH_obs.json (default {DEFAULT_JSON_DIR})",
    )
    common.add_argument(
        "--log-level",
        default="WARNING",
        type=str.upper,
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="logging level for the repro logger",
    )
    common.add_argument(
        "--profile",
        action="store_true",
        help="enable observability: per-phase timing breakdown, event trace "
        "and metrics snapshot under --json-out",
    )
    common.add_argument(
        "--trace-out",
        default=None,
        help="write a JSONL event trace to this path (implies tracing)",
    )
    common.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        help="emit 1-in-N traced events (default 1 = every event)",
    )
    common.add_argument(
        "--metrics-out",
        default=None,
        help="write a metrics JSON snapshot to this path (implies metrics)",
    )
    history = common.add_argument_group(
        "run history", "sqlite run-history store (docs/observability.md)"
    )
    history.add_argument(
        "--store",
        default=None,
        help="record this invocation into this history database "
        "(default: REPRO_STORE or <--json-out>/history.db)",
    )
    history.add_argument(
        "--no-store",
        action="store_true",
        help="skip recording this invocation in the history store",
    )
    history.add_argument(
        "--progress",
        action="store_true",
        help="with --jobs > 1: stream live worker heartbeats to an "
        "in-place terminal status line (and into the history store)",
    )
    return common


def _run_parser(prog: str = "repro") -> argparse.ArgumentParser:
    """Parser for the ``run <name> [name ...]`` (and bare-name) form."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Run one or more registered experiments.",
        parents=[_common_options()],
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="experiment",
        help="registered experiment name(s); 'repro list' prints them",
    )
    return parser


def _experiments_parser(prog: str = "repro experiments") -> argparse.ArgumentParser:
    """Parser for the ``experiments`` / ``all`` sweep forms."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Sweep several experiments (default: every "
        "registered one).",
        parents=[_common_options()],
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help="the names to sweep (default: all registered)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="render the strategy registry (name, description, "
        "requirements) and exit",
    )
    return parser


def _fault_config(args):
    """Build the ``--fault-*`` group's FaultConfig (None when off).

    Validation lives in
    :class:`~repro.resilience.faults.FaultConfig` itself — a bad knob
    raises :class:`~repro.errors.ConfigError` naming the field, which
    :func:`main` maps to exit code 2.
    """
    if not (args.fault_rate or args.fault_burst_rate or args.fault_stuck_bits):
        return None
    from repro.resilience.faults import FaultConfig

    return FaultConfig(
        seed=args.fault_seed,
        read_rate=args.fault_rate,
        flip_bits=args.fault_flip_bits,
        burst_rate=args.fault_burst_rate,
        burst_len=args.fault_burst_len,
        stuck_bits=args.fault_stuck_bits,
        targets=tuple(args.fault_targets),
    )


def main(argv=None) -> int:
    """CLI entry point.

    Typed :class:`~repro.errors.ReproError` failures are caught here —
    the only place — and mapped to their exit codes (2 config, 3 trace,
    4 simulation) with a one-line stderr message. With the repro
    logger at DEBUG the full traceback is printed first.
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    try:
        return _dispatch(argv)
    except ReproError as exc:
        if get_logger("cli").isEnabledFor(logging.DEBUG):
            import traceback

            traceback.print_exc()
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code


def _dispatch(argv) -> int:
    """Route subcommands, then hand experiment runs to the pipeline."""
    if argv and argv[0] in ("--version", "-V"):
        from repro import __version__

        print(f"repro {__version__}")
        return 0
    if argv and argv[0] == "serve":
        from repro.serve.cli import main_serve

        return main_serve(argv[1:])
    if argv and argv[0] == "submit":
        from repro.serve.cli import main_submit

        return main_submit(argv[1:])
    if argv and argv[0] == "jobs":
        from repro.serve.cli import main_jobs

        return main_jobs(argv[1:])
    if argv and argv[0] == "watch":
        from repro.serve.cli import main_watch

        return main_watch(argv[1:])
    if argv and argv[0] == "compare":
        return _main_compare(argv[1:])
    if argv and argv[0] == "replay":
        return _main_replay(argv[1:])
    if argv and argv[0] == "ingest":
        return _main_ingest(argv[1:])
    if argv and argv[0] == "history":
        from repro.obs.history import main_history

        return main_history(argv[1:])

    head = argv[0] if argv else None
    if head == "list":
        args = _experiments_parser(prog="repro list").parse_args(argv[1:])
        configure_logging(args.log_level)
        for name in experiment_names():
            print(name)
        return 0
    if head == "report":
        parser = _experiments_parser(prog="repro report")
        args = parser.parse_args(argv[1:])
        configure_logging(args.log_level)
        print(render_report(args.json_out))
        return 0
    if head == "run":
        parser = _run_parser(prog="repro run")
        args = parser.parse_args(argv[1:])
        names = list(dict.fromkeys(args.experiments))
    elif head in ("all", "experiments"):
        parser = _experiments_parser(prog=f"repro {head}")
        args = parser.parse_args(argv[1:])
        if head == "experiments" and args.list:
            print(registry.table().render())
            return 0
        names = list(dict.fromkeys(args.experiments)) or experiment_names()
    else:
        # Legacy form: repro <name> [name ...] --flags
        parser = _run_parser()
        args = parser.parse_args(argv)
        names = list(dict.fromkeys(args.experiments))
    return _run_pipeline(parser, args, names, argv)


def _run_pipeline(parser, args, names, argv) -> int:
    """Validate the parsed flags and run the strategies.

    All experiment mechanics — context construction, ``--jobs``
    prefetch with fan-splitting, checkpoint/resume, observability
    phases and history-store recording — live in
    :func:`repro.harness.strategy.run_strategies`, driven by each
    strategy's declared requirements. The CLI's own job is flag
    validation plus building (and afterwards finalizing) the
    observability bundle.
    """
    configure_logging(args.log_level)
    # Resolve every name up front: an unknown experiment raises the
    # typed UnknownExperimentError (exit code 2) before any work.
    strategies = [registry.get(name) for name in names]

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.trace_sample < 1:
        parser.error(f"--trace-sample must be >= 1, got {args.trace_sample}")
    if args.timeout is not None and args.timeout <= 0:
        parser.error(f"--timeout must be positive, got {args.timeout}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    # Strategy-specific knobs travel as an options mapping — validated
    # by the consuming strategy (FrontierOptions names the offending
    # field on a bad value), not by per-experiment CLI branches.
    strategy_options = {
        key: value
        for key, value in (
            ("error_budget", args.error_budget),
            ("voltage_steps", args.voltage_steps),
        )
        if value is not None
    }
    if args.workloads:
        from repro.workloads.registry import workload_names

        known = workload_names()
        unknown = [w for w in args.workloads if w not in known]
        if unknown:
            raise ConfigError(
                f"unknown workload(s) {unknown}; choose from {known}",
                field="workloads",
            )
    faults = _fault_config(args)

    progress = None
    if args.progress:
        if args.jobs == 1:
            print("[--progress streams worker heartbeats; needs --jobs > 1]")
        else:
            from repro.obs.livestream import LiveProgressSink

            progress = LiveProgressSink(stream=sys.stderr)

    enabled = args.profile or bool(args.trace_out) or bool(args.metrics_out)
    stem = names[0] if len(names) == 1 else "experiments"
    trace_path = args.trace_out
    if args.profile and trace_path is None:
        trace_path = os.path.join(args.json_out, f"trace_{stem}.jsonl")
    metrics_path = args.metrics_out
    if args.profile and metrics_path is None:
        metrics_path = os.path.join(args.json_out, f"metrics_{stem}.json")
    obs = (
        Observability(
            enabled=enabled, trace_path=trace_path, trace_sample=args.trace_sample
        )
        if enabled
        else Observability.disabled()
    )

    run_strategies(
        strategies,
        seed=args.seed,
        scale=args.scale,
        workloads=args.workloads,
        engine=args.engine,
        faults=faults,
        jobs=args.jobs,
        split_fans=not args.no_split_fans,
        timeout=args.timeout,
        retries=args.retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        obs=obs,
        progress=progress,
        out=args.out,
        json_dir=args.json_out,
        echo=print,
        store_path=args.store,
        record_history=not args.no_store,
        argv=argv,
        strategy_options=strategy_options,
    )

    if enabled:
        if metrics_path:
            obs.registry.save_json(metrics_path)
            log.info("metrics snapshot written to %s", metrics_path)
        obs.close()
        update_bench_summary(args.json_out, profile=obs.profiler.report())
        if args.profile:
            print()
            print(obs.profiler.render())
            if trace_path and obs.jsonl is not None:
                print(f"\n[event trace: {obs.jsonl.written} events -> {trace_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
