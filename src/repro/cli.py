"""Command-line interface for the experiment harness.

Regenerate any table or figure of the paper from the shell::

    python -m repro.cli list
    python -m repro.cli fig07
    python -m repro.cli fig10 --scale 0.25 --workloads canneal jpeg
    python -m repro.cli all --out results/

Experiment names follow the paper: ``fig02``, ``table2``, ``fig07``,
``fig08``, ``fig09``, ``fig10``, ``fig11``, ``fig12``, ``fig13``,
``fig14``, ``table3``, ``headline``.

Observability (see ``docs/observability.md``)::

    python -m repro.cli fig10 --scale 0.25 --profile
    python -m repro.cli fig10 --trace-out trace.jsonl --metrics-out m.json
    python -m repro.cli report

``--profile`` prints a per-phase timing breakdown and writes the event
trace and metrics snapshot next to the JSON tables. Every experiment
additionally serializes its tables to ``results/json/<name>.json`` and
updates the cumulative ``results/json/BENCH_obs.json`` run summary;
``report`` renders that summary back as text.
"""

from __future__ import annotations

import argparse
import os
import sys
from time import perf_counter_ns
from typing import Dict, Optional

from repro.harness import experiments as E
from repro.harness.runner import ExperimentContext
from repro.obs import Observability, configure_logging, get_logger
from repro.obs.output import (
    DEFAULT_JSON_DIR,
    render_report,
    save_experiment_json,
    update_bench_summary,
)

#: name -> (driver, needs_context)
_EXPERIMENTS = {
    "fig02": (E.fig02_threshold_similarity, True),
    "table2": (E.table2_approx_footprint, True),
    "fig07": (E.fig07_map_space_savings, True),
    "fig08": (E.fig08_compression_comparison, True),
    "fig09": (E.fig09_map_space, True),
    "fig10": (E.fig10_data_array, True),
    "fig11": (E.fig11_energy_reduction, True),
    "fig12": (E.fig12_offchip_traffic, True),
    "fig13": (E.fig13_area_reduction, False),
    "fig14": (E.fig14_unidoppelganger, True),
    "table3": (E.table3_hardware_cost, False),
    "headline": (E.summary_headline, True),
}

log = get_logger("cli")


def experiment_names() -> list:
    """All experiment names, in paper order."""
    return list(_EXPERIMENTS)


def run_experiment(
    name: str,
    ctx: Optional[ExperimentContext],
    out: Optional[str],
    json_dir: str = DEFAULT_JSON_DIR,
    obs: Optional[Observability] = None,
) -> float:
    """Run one experiment; print, JSON-serialize and optionally save it.

    Returns the experiment's wall time in seconds.
    """
    driver, needs_ctx = _EXPERIMENTS[name]
    obs = obs or Observability.disabled()
    start_ns = perf_counter_ns()
    with obs.profiler.phase(f"experiment/{name}"):
        result = driver(ctx) if needs_ctx else driver()
    tables: Dict[str, object] = result if isinstance(result, dict) else {"": result}
    for key, table in tables.items():
        print()
        print(table.render())
        if out:
            filename = f"{name}_{key}.txt" if key else f"{name}.txt"
            table.save(directory=out, filename=filename)
    wall_s = (perf_counter_ns() - start_ns) / 1e9
    save_experiment_json(name, tables, json_dir)
    update_bench_summary(
        json_dir,
        experiments={
            name: {"wall_s": wall_s, "tables": [k or "main" for k in tables]}
        },
    )
    print(f"\n[{name} done in {wall_s:.1f}s]")
    return wall_s


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', 'list', or 'report'",
    )
    parser.add_argument("--seed", type=int, default=None, help="data seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale (default 1.0)"
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, help="benchmark subset"
    )
    parser.add_argument("--out", default=None, help="directory to save text tables")
    parser.add_argument(
        "--json-out",
        default=DEFAULT_JSON_DIR,
        help=f"directory for JSON tables and BENCH_obs.json (default {DEFAULT_JSON_DIR})",
    )
    parser.add_argument(
        "--log-level",
        default="WARNING",
        type=str.upper,
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="logging level for the repro logger",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable observability: per-phase timing breakdown, event trace "
        "and metrics snapshot under --json-out",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a JSONL event trace to this path (implies tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write a metrics JSON snapshot to this path (implies metrics)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0

    if args.experiment == "report":
        print(render_report(args.json_out))
        return 0

    if args.experiment == "all":
        names = experiment_names()
    elif args.experiment in _EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {experiment_names()} or 'all'"
        )

    enabled = args.profile or bool(args.trace_out) or bool(args.metrics_out)
    trace_path = args.trace_out
    if args.profile and trace_path is None:
        trace_path = os.path.join(args.json_out, f"trace_{args.experiment}.jsonl")
    metrics_path = args.metrics_out
    if args.profile and metrics_path is None:
        metrics_path = os.path.join(args.json_out, f"metrics_{args.experiment}.json")
    obs = Observability(enabled=enabled, trace_path=trace_path) if enabled \
        else Observability.disabled()

    ctx = None
    if any(_EXPERIMENTS[n][1] for n in names):
        ctx = ExperimentContext(
            seed=args.seed, scale=args.scale, workloads=args.workloads, obs=obs
        )
    for name in names:
        run_experiment(name, ctx, args.out, json_dir=args.json_out, obs=obs)

    if enabled:
        if metrics_path:
            obs.registry.save_json(metrics_path)
            log.info("metrics snapshot written to %s", metrics_path)
        obs.close()
        update_bench_summary(
            args.json_out,
            runs=ctx.run_summaries() if ctx is not None else None,
            profile=obs.profiler.report(),
            context=ctx.context_summary() if ctx is not None else None,
        )
        if args.profile:
            print()
            print(obs.profiler.render())
            if trace_path and obs.jsonl is not None:
                print(f"\n[event trace: {obs.jsonl.written} events -> {trace_path}]")
    elif ctx is not None:
        # JSON output is always on; fold run stats into the summary too.
        update_bench_summary(
            args.json_out,
            runs=ctx.run_summaries(),
            context=ctx.context_summary(),
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
