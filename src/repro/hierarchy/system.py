"""Trace-driven simulation of the full 4-core system (Table 1).

The :class:`System` consumes a multi-core :class:`~repro.trace.trace.Trace`
and models:

* private L1 (16 KB, 4-way, 1 cycle) and L2 (128 KB, 8-way, 3 cycles)
  caches per core, write-back/write-allocate;
* a pluggable shared, inclusive LLC (6 cycles): baseline conventional,
  split Doppelgänger, or uniDoppelgänger;
* MSI directory coherence: stores invalidate remote private copies via
  the LLC directory; back-invalidations from LLC evictions purge
  private copies (dirty ones write back to memory);
* a bounded LLC writeback buffer — the structure Sec. 3.5 points at
  when a single Doppelgänger data eviction generates many writebacks;
* a 160-cycle fixed-latency main memory with traffic counters.

Timing is cycle-accounting: each core accumulates its instruction gaps
(divided by the 4-wide issue width) plus the demand-load latency of
each access. Stores retire through the write buffer and are charged
only the L1 latency, but their functional effects (fills, dirtying,
coherence) are fully modelled. Runtimes are meaningful *relative to the
baseline* — exactly how the paper reports them (Figs. 9, 10, 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.cache.stats import CacheStats
from repro.cache.writeback import WritebackBuffer
from repro.hierarchy.dram import MainMemory
from repro.trace.trace import Trace

KB = 1024


def flatten_engine_stats(stats: Optional[Dict]) -> Dict[str, float]:
    """Flatten an ``engine_stats`` dict into scalar (key, value) rows.

    The engine's nested per-class tallies (``fast``/``slow``/``aux``
    groups plus ``accesses`` and ``slow_fraction``; see
    ``docs/engine.md``) become dotted keys — ``fast.read_hit`` — the
    shape both the metrics registry and the run-history store's
    ``engine_stats`` table consume. None or empty input flattens to an
    empty dict.
    """
    if not stats:
        return {}
    out: Dict[str, float] = {
        "accesses": stats.get("accesses", 0),
        "slow_fraction": stats.get("slow_fraction", 0.0),
    }
    for group in ("fast", "slow", "aux"):
        for key, value in stats.get(group, {}).items():
            out[f"{group}.{key}"] = value
    return out


@dataclass(frozen=True)
class SystemConfig:
    """System parameters (defaults reproduce Table 1)."""

    num_cores: int = 4
    l1_bytes: int = 16 * KB
    l1_ways: int = 4
    l2_bytes: int = 128 * KB
    l2_ways: int = 8
    block_size: int = 64
    l1_latency: int = 1
    l2_latency: int = 3
    llc_latency: int = 6
    issue_width: int = 4
    wb_capacity: int = 16
    wb_drain_interval: int = 20
    policy: str = "lru"
    #: Minimum cycles between consecutive memory-miss completions on
    #: one core. The 4-wide OoO core of Table 1 overlaps independent
    #: misses (memory-level parallelism); a burst of misses therefore
    #: costs ~this interval each rather than the full 160-cycle
    #: latency, while an isolated miss still pays the full latency.
    mem_overlap_interval: int = 40
    #: Runahead window: if a core reaches its next memory miss within
    #: this many cycles of the previous miss resolving, the OoO front
    #: end had already issued it — the miss is part of a burst and
    #: pays only the overlap interval.
    runahead_window: int = 32

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ConfigError(
                f"must be positive, got {self.num_cores}", field="num_cores"
            )
        if self.issue_width <= 0:
            raise ConfigError(
                f"must be positive, got {self.issue_width}", field="issue_width"
            )


class SystemResult(NamedTuple):
    """Summary of one simulated run."""

    cycles: int
    per_core_cycles: List[int]
    instructions: int
    llc_misses: int
    llc_accesses: int
    dram_reads: int
    dram_writes: int
    traffic_bytes: int
    coherence_invalidations: int
    back_invalidations: int
    wb_stall_cycles: int
    l1_stats: CacheStats
    l2_stats: CacheStats
    stall_breakdown: Dict[str, float] = {}

    @property
    def mpki(self) -> float:
        """LLC misses per thousand instructions."""
        return 1000.0 * self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def llc_miss_rate(self) -> float:
        """LLC demand miss rate."""
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (the ``system`` object of ``docs/api.md``).

        Every serialized result — harness rows, ``results/json/*.json``,
        ``BENCH_obs.json`` — nests this same shape.
        """
        return {
            "cycles": self.cycles,
            "per_core_cycles": list(self.per_core_cycles),
            "instructions": self.instructions,
            "llc_misses": self.llc_misses,
            "llc_accesses": self.llc_accesses,
            "llc_miss_rate": self.llc_miss_rate,
            "mpki": self.mpki,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "traffic_bytes": self.traffic_bytes,
            "coherence_invalidations": self.coherence_invalidations,
            "back_invalidations": self.back_invalidations,
            "wb_stall_cycles": self.wb_stall_cycles,
            "l1_stats": self.l1_stats.as_dict(),
            "l2_stats": self.l2_stats.as_dict(),
            "stall_breakdown": dict(self.stall_breakdown),
        }


class System:
    """Four cores, two private cache levels, a shared LLC and DRAM.

    Args:
        llc: LLC adapter (see :mod:`repro.hierarchy.llc`).
        config: system parameters.
        mem_latency: main memory latency in cycles.
        tracer: optional :class:`~repro.obs.events.Tracer`; when
            enabled it receives coherence, back-invalidation and
            writeback-buffer events, and is forwarded to the LLC for
            its protocol events. A disabled (or absent) tracer is
            normalized to None so the run loop pays one None-check.
        faults: optional
            :class:`~repro.resilience.faults.FaultInjector`; when
            given, LLC read hits and DRAM fills consult it — detected
            faults in precise structures cost a DRAM refetch, silent
            faults in the approximate array are counted (their value
            corruption is modelled functionally). See
            ``docs/robustness.md``.
    """

    def __init__(
        self,
        llc,
        config: Optional[SystemConfig] = None,
        mem_latency: int = 160,
        tracer=None,
        faults=None,
    ):
        self.config = config or SystemConfig()
        cfg = self.config
        self.llc = llc
        self.fault_injector = faults
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        if self.tracer is not None and hasattr(llc, "attach_tracer"):
            llc.attach_tracer(self.tracer)
        self.memory = MainMemory(mem_latency, cfg.block_size)
        self.wb_buffer = WritebackBuffer(cfg.wb_capacity, cfg.wb_drain_interval)
        self.l1s = [
            SetAssociativeCache(
                cfg.l1_bytes, cfg.l1_ways, cfg.block_size, cfg.policy,
                name=f"L1-{c}", level="L1",
            )
            for c in range(cfg.num_cores)
        ]
        self.l2s = [
            SetAssociativeCache(
                cfg.l2_bytes, cfg.l2_ways, cfg.block_size, cfg.policy,
                name=f"L2-{c}", level="L2",
            )
            for c in range(cfg.num_cores)
        ]
        self.cycles = [0.0] * cfg.num_cores
        #: Cycle attribution by component, filled by run(): compute,
        #: l1, l2, llc, memory, coherence, writeback.
        self.stall_breakdown: Dict[str, float] = {
            k: 0.0 for k in ("compute", "l1", "l2", "llc", "memory",
                             "coherence", "writeback")
        }
        self.coherence_invalidations = 0
        self.back_invalidations = 0
        self._sharers: Dict[int, int] = {}
        self._cur_value: Dict[int, int] = {}
        self._region_cache: Dict[int, tuple] = {}
        self._regions = None
        self._values = None

    # ------------------------------------------------------------ region info

    def _region_info(self, addr: int) -> tuple:
        """(approx, region_id) for a block address, memoized."""
        info = self._region_cache.get(addr)
        if info is None:
            region_id = self._regions.find_id(addr) if self._regions is not None else -1
            approx = region_id >= 0 and self._regions[region_id].approx
            info = (approx, region_id)
            self._region_cache[addr] = info
        return info

    def _block_values(self, addr: int):
        """Current element values of a block, or None if untracked."""
        vid = self._cur_value.get(addr, -1)
        if vid < 0:
            return None, -1
        return self._values[vid], vid

    # ------------------------------------------------------------- plumbing

    def _apply_reply(self, reply, now: float, origin_addr: int) -> float:
        """Process an LLC reply's writebacks and back-invalidations.

        Returns stall cycles incurred at the writeback buffer.
        """
        stall = 0.0
        tr = self.tracer
        for wb_addr in reply.writebacks:
            wb_stall = self.wb_buffer.enqueue(wb_addr, int(now + stall))
            stall += wb_stall
            self.memory.write(wb_addr)
            if tr is not None:
                tr.emit("wb_enqueue", addr=wb_addr, stall=wb_stall)
        for inv_addr in reply.back_invalidations:
            if inv_addr == origin_addr:
                continue
            self.back_invalidations += 1
            self._purge_private(inv_addr)
            self._sharers.pop(inv_addr, None)
            if tr is not None:
                tr.emit("back_invalidation", addr=inv_addr, origin=origin_addr)
        return stall

    def _purge_private(self, addr: int) -> None:
        """Invalidate every private copy; dirty copies go to memory.

        Only cores whose sharer bit is set can hold a copy: private
        caches gain blocks solely through their own core's accesses
        (which set the bit), and every event that removes the bit — a
        back-invalidation or a remote store — also removes the copies.
        """
        vec = self._sharers.get(addr, 0)
        c = 0
        while vec:
            if vec & 1:
                block = self.l1s[c].invalidate(addr)
                if block is not None and block.dirty:
                    self.memory.write(addr)
                block = self.l2s[c].invalidate(addr)
                if block is not None and block.dirty:
                    self.memory.write(addr)
            vec >>= 1
            c += 1

    def _l2_writeback(self, core: int, addr: int, value_id: int, now: float) -> float:
        """A dirty block left the L2 toward the (inclusive) LLC."""
        approx, region_id = self._region_info(addr)
        values = None
        if approx:
            values, tracked_id = self._block_values(addr)
            if value_id < 0:
                value_id = tracked_id
            if values is None:
                raise KeyError(
                    f"approximate block {addr:#x} has no tracked values; "
                    "the workload must register its region data"
                )
        reply = self.llc.handle_writeback(
            addr, core, approx, region_id, value_id=value_id, values=values
        )
        return self._apply_reply(reply, now, addr)

    def _install_l1_victim(self, core: int, victim_addr: int, value_id: int, now: float) -> float:
        """Write a dirty L1 victim into the L2 (possibly cascading)."""
        result = self.l2s[core].access(victim_addr, is_write=True, value_id=value_id)
        stall = 0.0
        if result.evicted_block is not None and result.writeback:
            stall += self._l2_writeback(
                core, result.evicted_addr, result.evicted_block.value_id, now
            )
        return stall

    def _handle_store_coherence(self, core: int, addr: int) -> float:
        """Invalidate remote sharers on a store; returns extra latency.

        A remote MODIFIED copy writes its data back to the LLC
        (Sec. 3.6) — for the Doppelgänger side that walks the Sec. 3.4
        write path when the writing core's own dirty copy later leaves
        the L2; the values are tracked through ``_cur_value`` either
        way.
        """
        vec = self._sharers.get(addr, 0)
        others = vec & ~(1 << core)
        latency = 0.0
        if others:
            latency += self.config.llc_latency  # directory consult
            invalidated = 0
            c = 0
            while others:
                if others & 1:
                    self.l1s[c].invalidate(addr)
                    self.l2s[c].invalidate(addr)
                    self.coherence_invalidations += 1
                    invalidated += 1
                others >>= 1
                c += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "coherence_invalidation",
                    addr=addr, writer=core, sharers=invalidated,
                )
        self._sharers[addr] = 1 << core
        return latency

    # ----------------------------------------------------------------- run

    def run(
        self,
        trace: Trace,
        limit: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> SystemResult:
        """Simulate ``trace`` (optionally only its first ``limit`` records).

        The per-access semantics live in :mod:`repro.engine`; ``engine``
        picks the implementation (``"batched"``, the default, or
        ``"reference"`` — see :func:`repro.engine.get_engine`). Every
        engine produces bit-identical results.
        """
        from repro.engine import get_engine

        _, run_fn = get_engine(engine)
        return run_fn(self, trace, limit)

    def publish_metrics(self, registry, prefix: str = "system") -> None:
        """Publish every structure's counters into a metrics registry.

        Sources are lazy (collected on demand), so this is safe to call
        before :meth:`run` and costs nothing during simulation.
        """
        for i, l1 in enumerate(self.l1s):
            l1.stats.publish(registry, f"{prefix}.l1.{i}")
        for i, l2 in enumerate(self.l2s):
            l2.stats.publish(registry, f"{prefix}.l2.{i}")
        self.wb_buffer.publish(registry, f"{prefix}.wb_buffer")
        self.memory.publish(registry, f"{prefix}.dram")
        if hasattr(self.llc, "publish_metrics"):
            self.llc.publish_metrics(registry, f"{prefix}.llc")
        registry.register_source(
            f"{prefix}.coherence",
            lambda: {
                "invalidations": self.coherence_invalidations,
                "back_invalidations": self.back_invalidations,
            },
        )
        registry.register_source(
            f"{prefix}.engine", self._engine_metrics
        )
        if self.fault_injector is not None:
            registry.register_source(
                f"{prefix}.faults", self.fault_injector.as_metrics
            )

    def _engine_metrics(self) -> Dict[str, float]:
        """Flattened per-class fast/slow-path tallies (lazy source).

        Empty until a run finishes — the engine attaches
        ``engine_stats`` to the system at the end of ``run()``
        (see ``docs/engine.md``).
        """
        return flatten_engine_stats(getattr(self, "engine_stats", None))

    def fault_summary(self) -> Optional[Dict[str, object]]:
        """Injected-fault report for this run (None without injection)."""
        if self.fault_injector is None:
            return None
        return self.fault_injector.summary()

    def _llc_accesses(self) -> int:
        """Demand accesses seen by the LLC, across organizations."""
        llc = self.llc
        if hasattr(llc, "cache"):
            return llc.cache.stats.accesses
        total = 0
        if hasattr(llc, "precise"):
            total += llc.precise.stats.accesses
        if hasattr(llc, "dopp"):
            total += llc.dopp.stats.accesses
        if hasattr(llc, "uni"):
            total += llc.uni.stats.accesses
        return total
