"""Trace-driven simulation of the full 4-core system (Table 1).

The :class:`System` consumes a multi-core :class:`~repro.trace.trace.Trace`
and models:

* private L1 (16 KB, 4-way, 1 cycle) and L2 (128 KB, 8-way, 3 cycles)
  caches per core, write-back/write-allocate;
* a pluggable shared, inclusive LLC (6 cycles): baseline conventional,
  split Doppelgänger, or uniDoppelgänger;
* MSI directory coherence: stores invalidate remote private copies via
  the LLC directory; back-invalidations from LLC evictions purge
  private copies (dirty ones write back to memory);
* a bounded LLC writeback buffer — the structure Sec. 3.5 points at
  when a single Doppelgänger data eviction generates many writebacks;
* a 160-cycle fixed-latency main memory with traffic counters.

Timing is cycle-accounting: each core accumulates its instruction gaps
(divided by the 4-wide issue width) plus the demand-load latency of
each access. Stores retire through the write buffer and are charged
only the L1 latency, but their functional effects (fills, dirtying,
coherence) are fully modelled. Runtimes are meaningful *relative to the
baseline* — exactly how the paper reports them (Figs. 9, 10, 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.writeback import WritebackBuffer
from repro.hierarchy.dram import MainMemory
from repro.trace.trace import Trace

KB = 1024


@dataclass(frozen=True)
class SystemConfig:
    """System parameters (defaults reproduce Table 1)."""

    num_cores: int = 4
    l1_bytes: int = 16 * KB
    l1_ways: int = 4
    l2_bytes: int = 128 * KB
    l2_ways: int = 8
    block_size: int = 64
    l1_latency: int = 1
    l2_latency: int = 3
    llc_latency: int = 6
    issue_width: int = 4
    wb_capacity: int = 16
    wb_drain_interval: int = 20
    policy: str = "lru"
    #: Minimum cycles between consecutive memory-miss completions on
    #: one core. The 4-wide OoO core of Table 1 overlaps independent
    #: misses (memory-level parallelism); a burst of misses therefore
    #: costs ~this interval each rather than the full 160-cycle
    #: latency, while an isolated miss still pays the full latency.
    mem_overlap_interval: int = 40
    #: Runahead window: if a core reaches its next memory miss within
    #: this many cycles of the previous miss resolving, the OoO front
    #: end had already issued it — the miss is part of a burst and
    #: pays only the overlap interval.
    runahead_window: int = 32

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")


class SystemResult(NamedTuple):
    """Summary of one simulated run."""

    cycles: int
    per_core_cycles: List[int]
    instructions: int
    llc_misses: int
    llc_accesses: int
    dram_reads: int
    dram_writes: int
    traffic_bytes: int
    coherence_invalidations: int
    back_invalidations: int
    wb_stall_cycles: int
    l1_stats: CacheStats
    l2_stats: CacheStats
    stall_breakdown: Dict[str, float] = {}

    @property
    def mpki(self) -> float:
        """LLC misses per thousand instructions."""
        return 1000.0 * self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def llc_miss_rate(self) -> float:
        """LLC demand miss rate."""
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0


class System:
    """Four cores, two private cache levels, a shared LLC and DRAM.

    Args:
        llc: LLC adapter (see :mod:`repro.hierarchy.llc`).
        config: system parameters.
        mem_latency: main memory latency in cycles.
        tracer: optional :class:`~repro.obs.events.Tracer`; when
            enabled it receives coherence, back-invalidation and
            writeback-buffer events, and is forwarded to the LLC for
            its protocol events. A disabled (or absent) tracer is
            normalized to None so the run loop pays one None-check.
    """

    def __init__(
        self,
        llc,
        config: Optional[SystemConfig] = None,
        mem_latency: int = 160,
        tracer=None,
    ):
        self.config = config or SystemConfig()
        cfg = self.config
        self.llc = llc
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        if self.tracer is not None and hasattr(llc, "attach_tracer"):
            llc.attach_tracer(self.tracer)
        self.memory = MainMemory(mem_latency, cfg.block_size)
        self.wb_buffer = WritebackBuffer(cfg.wb_capacity, cfg.wb_drain_interval)
        self.l1s = [
            SetAssociativeCache(
                cfg.l1_bytes, cfg.l1_ways, cfg.block_size, cfg.policy,
                name=f"L1-{c}", level="L1",
            )
            for c in range(cfg.num_cores)
        ]
        self.l2s = [
            SetAssociativeCache(
                cfg.l2_bytes, cfg.l2_ways, cfg.block_size, cfg.policy,
                name=f"L2-{c}", level="L2",
            )
            for c in range(cfg.num_cores)
        ]
        self.cycles = [0.0] * cfg.num_cores
        #: Cycle attribution by component, filled by run(): compute,
        #: l1, l2, llc, memory, coherence, writeback.
        self.stall_breakdown: Dict[str, float] = {
            k: 0.0 for k in ("compute", "l1", "l2", "llc", "memory",
                             "coherence", "writeback")
        }
        self.coherence_invalidations = 0
        self.back_invalidations = 0
        self._sharers: Dict[int, int] = {}
        self._cur_value: Dict[int, int] = {}
        self._region_cache: Dict[int, tuple] = {}
        self._regions = None
        self._values = None

    # ------------------------------------------------------------ region info

    def _region_info(self, addr: int) -> tuple:
        """(approx, region_id) for a block address, memoized."""
        info = self._region_cache.get(addr)
        if info is None:
            region_id = self._regions.find_id(addr) if self._regions is not None else -1
            approx = region_id >= 0 and self._regions[region_id].approx
            info = (approx, region_id)
            self._region_cache[addr] = info
        return info

    def _block_values(self, addr: int):
        """Current element values of a block, or None if untracked."""
        vid = self._cur_value.get(addr, -1)
        if vid < 0:
            return None, -1
        return self._values[vid], vid

    # ------------------------------------------------------------- plumbing

    def _apply_reply(self, reply, now: float, origin_addr: int) -> float:
        """Process an LLC reply's writebacks and back-invalidations.

        Returns stall cycles incurred at the writeback buffer.
        """
        stall = 0.0
        tr = self.tracer
        for wb_addr in reply.writebacks:
            wb_stall = self.wb_buffer.enqueue(wb_addr, int(now + stall))
            stall += wb_stall
            self.memory.write(wb_addr)
            if tr is not None:
                tr.emit("wb_enqueue", addr=wb_addr, stall=wb_stall)
        for inv_addr in reply.back_invalidations:
            if inv_addr == origin_addr:
                continue
            self.back_invalidations += 1
            self._purge_private(inv_addr)
            self._sharers.pop(inv_addr, None)
            if tr is not None:
                tr.emit("back_invalidation", addr=inv_addr, origin=origin_addr)
        return stall

    def _purge_private(self, addr: int) -> None:
        """Invalidate every private copy; dirty copies go to memory."""
        for c in range(self.config.num_cores):
            block = self.l1s[c].invalidate(addr)
            if block is not None and block.dirty:
                self.memory.write(addr)
            block = self.l2s[c].invalidate(addr)
            if block is not None and block.dirty:
                self.memory.write(addr)

    def _l2_writeback(self, core: int, addr: int, value_id: int, now: float) -> float:
        """A dirty block left the L2 toward the (inclusive) LLC."""
        approx, region_id = self._region_info(addr)
        values = None
        if approx:
            values, tracked_id = self._block_values(addr)
            if value_id < 0:
                value_id = tracked_id
            if values is None:
                raise KeyError(
                    f"approximate block {addr:#x} has no tracked values; "
                    "the workload must register its region data"
                )
        reply = self.llc.handle_writeback(
            addr, core, approx, region_id, value_id=value_id, values=values
        )
        return self._apply_reply(reply, now, addr)

    def _install_l1_victim(self, core: int, victim_addr: int, value_id: int, now: float) -> float:
        """Write a dirty L1 victim into the L2 (possibly cascading)."""
        result = self.l2s[core].access(victim_addr, is_write=True, value_id=value_id)
        stall = 0.0
        if result.evicted_block is not None and result.writeback:
            stall += self._l2_writeback(
                core, result.evicted_addr, result.evicted_block.value_id, now
            )
        return stall

    def _handle_store_coherence(self, core: int, addr: int) -> float:
        """Invalidate remote sharers on a store; returns extra latency.

        A remote MODIFIED copy writes its data back to the LLC
        (Sec. 3.6) — for the Doppelgänger side that walks the Sec. 3.4
        write path when the writing core's own dirty copy later leaves
        the L2; the values are tracked through ``_cur_value`` either
        way.
        """
        vec = self._sharers.get(addr, 0)
        others = vec & ~(1 << core)
        latency = 0.0
        if others:
            latency += self.config.llc_latency  # directory consult
            invalidated = 0
            c = 0
            while others:
                if others & 1:
                    self.l1s[c].invalidate(addr)
                    self.l2s[c].invalidate(addr)
                    self.coherence_invalidations += 1
                    invalidated += 1
                others >>= 1
                c += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "coherence_invalidation",
                    addr=addr, writer=core, sharers=invalidated,
                )
        self._sharers[addr] = 1 << core
        return latency

    # ----------------------------------------------------------------- run

    def run(self, trace: Trace, limit: Optional[int] = None) -> SystemResult:
        """Simulate ``trace`` (optionally only its first ``limit`` records)."""
        cfg = self.config
        self._regions = trace.regions
        self._values = trace.values
        self._cur_value = dict(trace.initial_image)

        block_mask = ~(cfg.block_size - 1)
        width = float(cfg.issue_width)
        l1_lat, l2_lat, llc_lat = cfg.l1_latency, cfg.l2_latency, cfg.llc_latency

        mem_interval = cfg.mem_overlap_interval
        mem_ready = [0.0] * cfg.num_cores  # last miss completion per core

        cores = trace.cores
        addrs = trace.addrs
        writes = trace.is_write
        approxes = trace.approx
        region_ids = trace.region_ids
        value_ids = trace.value_ids
        gaps = trace.gaps
        n = len(trace) if limit is None else min(limit, len(trace))

        cycles = self.cycles
        bd = self.stall_breakdown
        instructions = 0

        for i in range(n):
            core = cores[i]
            addr = int(addrs[i]) & block_mask
            is_write = bool(writes[i])
            approx = bool(approxes[i])
            region_id = int(region_ids[i])
            value_id = int(value_ids[i])
            gap = int(gaps[i])

            instructions += gap + 1
            now = cycles[core] + gap / width
            bd["compute"] += gap / width
            latency = float(l1_lat)
            bd["l1"] += l1_lat

            if is_write and value_id >= 0:
                self._cur_value[addr] = value_id
            if is_write:
                coherence_cost = self._handle_store_coherence(core, addr)
                latency += coherence_cost
                bd["coherence"] += coherence_cost
            else:
                self._sharers[addr] = self._sharers.get(addr, 0) | (1 << core)

            l1 = self.l1s[core]
            res1 = l1.access(addr, is_write, value_id)
            if not res1.hit:
                if res1.evicted_block is not None and res1.writeback:
                    wb_cost = self._install_l1_victim(
                        core, res1.evicted_addr, res1.evicted_block.value_id, now
                    )
                    latency += wb_cost
                    bd["writeback"] += wb_cost
                l2 = self.l2s[core]
                res2 = l2.access(addr, is_write, value_id)
                if not res2.hit:
                    if not is_write:
                        latency += l2_lat
                        bd["l2"] += l2_lat
                    if res2.evicted_block is not None and res2.writeback:
                        wb_cost = self._l2_writeback(
                            core, res2.evicted_addr, res2.evicted_block.value_id, now
                        )
                        latency += wb_cost
                        bd["writeback"] += wb_cost
                    llc_reply = self.llc.read(addr, core, approx, region_id)
                    if not is_write:
                        latency += llc_lat
                        bd["llc"] += llc_lat
                    if not llc_reply.hit:
                        if not is_write:
                            # Overlap-aware miss penalty: an isolated
                            # miss pays the full DRAM latency, but when
                            # the core reaches its next miss within the
                            # runahead window of the previous one
                            # resolving, the OoO engine had already
                            # issued it and the burst completes every
                            # mem_interval cycles (MLP).
                            arrival = now + latency
                            if arrival - mem_ready[core] < cfg.runahead_window:
                                completion = (
                                    max(mem_ready[core], arrival) + mem_interval
                                )
                            else:
                                completion = arrival + self.memory.latency
                            mem_ready[core] = completion
                            bd["memory"] += completion - now - latency
                            latency = completion - now
                        self.memory.read(addr)
                        values = None
                        fill_vid = self._cur_value.get(addr, -1)
                        if approx:
                            values, fill_vid = self._block_values(addr)
                            if values is None:
                                raise KeyError(
                                    f"approximate block {addr:#x} has no tracked "
                                    "values; register the region data in the trace"
                                )
                        fill_reply = self.llc.fill(
                            addr, core, approx, region_id,
                            value_id=fill_vid, values=values, dirty=False,
                        )
                        wb_cost = self._apply_reply(fill_reply, now, addr)
                        latency += wb_cost
                        bd["writeback"] += wb_cost
                elif not is_write:
                    latency += l2_lat
                    bd["l2"] += l2_lat

            if is_write:
                cycles[core] = now + l1_lat
            else:
                cycles[core] = now + latency

        per_core = [int(c) for c in cycles]
        l1_stats = CacheStats()
        for l1 in self.l1s:
            l1_stats = l1_stats.merge(l1.stats)
        l2_stats = CacheStats()
        for l2 in self.l2s:
            l2_stats = l2_stats.merge(l2.stats)

        llc_misses = self.llc.miss_count()
        llc_accesses = self._llc_accesses()
        return SystemResult(
            cycles=max(per_core) if per_core else 0,
            per_core_cycles=per_core,
            instructions=instructions,
            llc_misses=llc_misses,
            llc_accesses=llc_accesses,
            dram_reads=self.memory.reads,
            dram_writes=self.memory.writes,
            traffic_bytes=self.memory.traffic_bytes,
            coherence_invalidations=self.coherence_invalidations,
            back_invalidations=self.back_invalidations,
            wb_stall_cycles=self.wb_buffer.stall_cycles,
            l1_stats=l1_stats,
            l2_stats=l2_stats,
            stall_breakdown=dict(self.stall_breakdown),
        )

    def publish_metrics(self, registry, prefix: str = "system") -> None:
        """Publish every structure's counters into a metrics registry.

        Sources are lazy (collected on demand), so this is safe to call
        before :meth:`run` and costs nothing during simulation.
        """
        for i, l1 in enumerate(self.l1s):
            l1.stats.publish(registry, f"{prefix}.l1.{i}")
        for i, l2 in enumerate(self.l2s):
            l2.stats.publish(registry, f"{prefix}.l2.{i}")
        self.wb_buffer.publish(registry, f"{prefix}.wb_buffer")
        self.memory.publish(registry, f"{prefix}.dram")
        if hasattr(self.llc, "publish_metrics"):
            self.llc.publish_metrics(registry, f"{prefix}.llc")
        registry.register_source(
            f"{prefix}.coherence",
            lambda: {
                "invalidations": self.coherence_invalidations,
                "back_invalidations": self.back_invalidations,
            },
        )

    def _llc_accesses(self) -> int:
        """Demand accesses seen by the LLC, across organizations."""
        llc = self.llc
        if hasattr(llc, "cache"):
            return llc.cache.stats.accesses
        total = 0
        if hasattr(llc, "precise"):
            total += llc.precise.stats.accesses
        if hasattr(llc, "dopp"):
            total += llc.dopp.stats.accesses
        if hasattr(llc, "uni"):
            total += llc.uni.stats.accesses
        return total
