"""Coherent multi-level cache hierarchy (the FeS2 substitute).

Models the paper's simulated system (Table 1): four cores with private
L1 (16 KB, 4-way) and L2 (128 KB, 8-way) caches, a shared inclusive LLC
(pluggable: conventional 2 MB baseline, split precise+Doppelgänger, or
unified uniDoppelgänger), MSI directory coherence, a writeback buffer
and a fixed-latency main memory. The system consumes the multi-core
traces of :mod:`repro.trace` and produces the miss/traffic/latency
statistics that drive the runtime and energy results.
"""

from repro.hierarchy.dram import MainMemory
from repro.hierarchy.llc import (
    BaselineLLC,
    LLCReply,
    SplitDoppelgangerLLC,
    UnifiedDoppelgangerLLC,
)
from repro.hierarchy.system import System, SystemConfig, SystemResult

__all__ = [
    "BaselineLLC",
    "LLCReply",
    "MainMemory",
    "SplitDoppelgangerLLC",
    "System",
    "SystemConfig",
    "SystemResult",
    "UnifiedDoppelgangerLLC",
]
