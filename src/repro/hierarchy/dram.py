"""Main memory model.

A fixed-latency DRAM (160 cycles in Table 1) that counts reads and
writes; the off-chip traffic figure (Fig. 12) is derived directly from
these counters times the block size.
"""

from __future__ import annotations


class MainMemory:
    """Fixed-latency main memory with traffic accounting.

    Args:
        latency: access latency in cycles (Table 1: 160).
        block_size: transfer granularity in bytes.
    """

    def __init__(self, latency: int = 160, block_size: int = 64):
        if latency <= 0:
            raise ValueError(f"latency must be positive, got {latency}")
        self.latency = latency
        self.block_size = block_size
        self.reads = 0
        self.writes = 0

    def read(self, addr: int) -> int:
        """Fetch a block; returns the access latency in cycles."""
        self.reads += 1
        return self.latency

    def write(self, addr: int) -> int:
        """Write a block back; returns the access latency in cycles."""
        self.writes += 1
        return self.latency

    @property
    def total_accesses(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes

    @property
    def traffic_bytes(self) -> int:
        """Total off-chip traffic in bytes."""
        return self.total_accesses * self.block_size

    def reset(self) -> None:
        """Zero the counters."""
        self.reads = 0
        self.writes = 0

    def as_dict(self) -> dict:
        """Counters as a plain dict (for metrics collection)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "traffic_bytes": self.traffic_bytes,
        }

    def publish(self, registry, prefix: str = "dram") -> None:
        """Register the memory as a lazily-collected metrics source."""
        registry.register_source(prefix, self.as_dict)
