"""Shared-LLC adapters.

Three interchangeable LLC organizations, all speaking the same
three-call protocol the :class:`~repro.hierarchy.system.System` uses:

* ``read(addr, core, approx, region_id)`` — a demand access from an L2
  miss; never fills (the system fetches from memory first).
* ``fill(addr, ...)`` — install a block that arrived from memory.
* ``handle_writeback(addr, ...)`` — an L2 evicted a dirty block.

Each reply reports memory writebacks and (for the inclusive LLC)
back-invalidations the system must apply to the private caches.

Organizations:

* :class:`BaselineLLC` — the conventional 2 MB, 16-way LLC.
* :class:`SplitDoppelgangerLLC` — 1 MB precise cache + 1 MB
  tag-equivalent Doppelgänger cache (the paper's base design).
* :class:`UnifiedDoppelgangerLLC` — the uniDoppelgänger variant.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.cache.set_assoc import SetAssociativeCache
from repro.core.config import DoppelgangerConfig, UniDoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache
from repro.core.unidoppelganger import UniDoppelgangerCache

MB = 1024 * 1024


class LLCReply(NamedTuple):
    """Outcome of an LLC operation, as seen by the system."""

    hit: bool
    writebacks: tuple = ()
    back_invalidations: tuple = ()


#: Shared immutable replies for the two no-side-effect outcomes.
_REPLY_HIT = LLCReply(True)
_REPLY_MISS = LLCReply(False)


class BaselineLLC:
    """Conventional shared LLC (2 MB, 16-way, LRU, inclusive)."""

    name = "baseline"

    def __init__(
        self,
        size_bytes: int = 2 * MB,
        ways: int = 16,
        block_size: int = 64,
        policy: str = "lru",
        regions=None,
    ):
        self.cache = SetAssociativeCache(
            size_bytes, ways, block_size, policy, name="LLC", level="LLC"
        )
        self.block_size = block_size

    def read(self, addr: int, core: int, approx: bool, region_id: int) -> LLCReply:
        """Demand lookup; misses do not fill."""
        result = self.cache.access(addr, is_write=False, fill_on_miss=False)
        return _REPLY_HIT if result.hit else _REPLY_MISS

    def fill(
        self,
        addr: int,
        core: int,
        approx: bool,
        region_id: int,
        value_id: int = -1,
        values: Optional[np.ndarray] = None,
        dirty: bool = False,
    ) -> LLCReply:
        """Install a block fetched from memory."""
        result = self.cache.install(addr, dirty=dirty, value_id=value_id)
        writebacks = (result.evicted_addr,) if result.writeback else ()
        back_invals = (result.evicted_addr,) if result.evicted_addr is not None else ()
        self.cache.stats.back_invalidations += len(back_invals)
        return LLCReply(hit=False, writebacks=writebacks, back_invalidations=back_invals)

    def handle_writeback(
        self,
        addr: int,
        core: int,
        approx: bool,
        region_id: int,
        value_id: int = -1,
        values: Optional[np.ndarray] = None,
    ) -> LLCReply:
        """Absorb a dirty L2 eviction; forward to memory if not resident."""
        block = self.cache.probe(addr)
        if block is None:
            # Raced with an LLC eviction: the writeback goes to memory.
            return LLCReply(hit=False, writebacks=(addr,))
        block.dirty = True
        if value_id >= 0:
            block.value_id = value_id
        self.cache.stats.write_accesses += 1
        self.cache.stats.tag_lookups += 1
        self.cache.stats.data_writes += 1
        return _REPLY_HIT

    def energy_events(self) -> dict:
        """Access counts per physical structure, for the energy model."""
        s = self.cache.stats
        return {
            ("baseline_llc", "tag"): s.tag_lookups,
            ("baseline_llc", "data"): s.data_reads + s.data_writes,
        }

    def miss_count(self) -> int:
        """Demand misses at the LLC."""
        return self.cache.stats.misses

    def attach_tracer(self, tracer) -> None:
        """No Doppelgänger mechanics to trace in the baseline."""

    def publish_metrics(self, registry, prefix: str = "llc") -> None:
        """Publish cache counters into a metrics registry."""
        self.cache.stats.publish(registry, f"{prefix}.baseline")


class SplitDoppelgangerLLC:
    """1 MB precise conventional cache + Doppelgänger cache (Table 1)."""

    name = "doppelganger"

    def __init__(
        self,
        config: Optional[DoppelgangerConfig] = None,
        precise_bytes: int = 1 * MB,
        precise_ways: int = 16,
        policy: str = "lru",
        regions=None,
    ):
        self.config = config or DoppelgangerConfig()
        self.block_size = self.config.block_size
        self.precise = SetAssociativeCache(
            precise_bytes, precise_ways, self.block_size, policy, name="precise", level="LLC"
        )
        self.dopp = DoppelgangerCache(self.config, regions=regions)

    def read(self, addr: int, core: int, approx: bool, region_id: int) -> LLCReply:
        """Route by the access's approximate bit (ISA support, Sec. 4.1)."""
        if approx:
            outcome = self.dopp.lookup(addr, is_write=False, core=core)
            return _REPLY_HIT if outcome.hit else _REPLY_MISS
        result = self.precise.access(addr, is_write=False, fill_on_miss=False)
        return _REPLY_HIT if result.hit else _REPLY_MISS

    def fill(
        self,
        addr: int,
        core: int,
        approx: bool,
        region_id: int,
        value_id: int = -1,
        values: Optional[np.ndarray] = None,
        dirty: bool = False,
    ) -> LLCReply:
        """Install a fetched block in the appropriate half."""
        if approx:
            if values is None:
                raise ValueError(
                    f"approximate fill of {addr:#x} (region {region_id}) needs block values"
                )
            outcome = self.dopp.insert(
                addr, region_id, values, value_id=value_id, dirty=dirty, core=core
            )
            return LLCReply(False, outcome.writebacks, outcome.back_invalidations)
        result = self.precise.install(addr, dirty=dirty, value_id=value_id)
        writebacks = (result.evicted_addr,) if result.writeback else ()
        back_invals = (result.evicted_addr,) if result.evicted_addr is not None else ()
        self.precise.stats.back_invalidations += len(back_invals)
        return LLCReply(False, writebacks, back_invals)

    def handle_writeback(
        self,
        addr: int,
        core: int,
        approx: bool,
        region_id: int,
        value_id: int = -1,
        values: Optional[np.ndarray] = None,
    ) -> LLCReply:
        """Dirty L2 eviction: Sec. 3.4 path for approximate blocks."""
        if approx:
            if values is None:
                raise ValueError(
                    f"approximate writeback of {addr:#x} (region {region_id}) needs values"
                )
            outcome = self.dopp.writeback(addr, region_id, values, value_id=value_id, core=core)
            return LLCReply(outcome.hit, outcome.writebacks, outcome.back_invalidations)
        block = self.precise.probe(addr)
        if block is None:
            return LLCReply(hit=False, writebacks=(addr,))
        block.dirty = True
        if value_id >= 0:
            block.value_id = value_id
        self.precise.stats.write_accesses += 1
        self.precise.stats.tag_lookups += 1
        self.precise.stats.data_writes += 1
        return _REPLY_HIT

    def energy_events(self) -> dict:
        """Access counts per physical structure, for the energy model."""
        p = self.precise.stats
        d = self.dopp.stats
        return {
            ("precise_1mb", "tag"): p.tag_lookups,
            ("precise_1mb", "data"): p.data_reads + p.data_writes,
            ("dopp_tag", "tag"): d.tag_lookups,
            ("dopp_data", "tag"): d.mtag_lookups,
            ("dopp_data", "data"): d.data_reads + d.data_writes,
            ("map_generation", "op"): d.map_generations,
        }

    def miss_count(self) -> int:
        """Demand misses across both halves."""
        return self.precise.stats.misses + self.dopp.stats.misses

    def attach_tracer(self, tracer) -> None:
        """Route protocol events of the Doppelgänger half to ``tracer``."""
        self.dopp.tracer = tracer

    def seed_map_memo(self, pairs, values_table, stats=None) -> int:
        """Precompute map values for a trace (see engine precompute)."""
        return self.dopp.seed_map_memo(pairs, values_table, stats)

    def publish_metrics(self, registry, prefix: str = "llc") -> None:
        """Publish both halves' counters into a metrics registry."""
        self.precise.stats.publish(registry, f"{prefix}.precise")
        self.dopp.publish_metrics(registry, f"{prefix}.dopp")


class UnifiedDoppelgangerLLC:
    """uniDoppelgänger LLC (Sec. 3.8): one array pair for everything."""

    name = "unidoppelganger"

    def __init__(self, config: Optional[UniDoppelgangerConfig] = None, regions=None):
        self.config = config or UniDoppelgangerConfig()
        self.block_size = self.config.block_size
        self.uni = UniDoppelgangerCache(self.config, regions=regions)

    def read(self, addr: int, core: int, approx: bool, region_id: int) -> LLCReply:
        """Tag probe handles both kinds uniformly."""
        outcome = self.uni.lookup(addr, is_write=False, core=core)
        return _REPLY_HIT if outcome.hit else _REPLY_MISS

    def fill(
        self,
        addr: int,
        core: int,
        approx: bool,
        region_id: int,
        value_id: int = -1,
        values: Optional[np.ndarray] = None,
        dirty: bool = False,
    ) -> LLCReply:
        """Install a fetched block, precise or approximate."""
        outcome = self.uni.insert_block(
            addr, approx, region_id=region_id, values=values, value_id=value_id,
            dirty=dirty, core=core,
        )
        return LLCReply(False, outcome.writebacks, outcome.back_invalidations)

    def handle_writeback(
        self,
        addr: int,
        core: int,
        approx: bool,
        region_id: int,
        value_id: int = -1,
        values: Optional[np.ndarray] = None,
    ) -> LLCReply:
        """Dirty L2 eviction of either kind."""
        outcome = self.uni.writeback_block(
            addr, approx, region_id=region_id, values=values, value_id=value_id, core=core
        )
        return LLCReply(outcome.hit, outcome.writebacks, outcome.back_invalidations)

    def energy_events(self) -> dict:
        """Access counts per physical structure, for the energy model."""
        d = self.uni.stats
        return {
            ("uni_tag", "tag"): d.tag_lookups,
            ("uni_data", "tag"): d.mtag_lookups,
            ("uni_data", "data"): d.data_reads + d.data_writes,
            ("map_generation", "op"): d.map_generations,
        }

    def miss_count(self) -> int:
        """Demand misses at the unified LLC."""
        return self.uni.stats.misses

    def attach_tracer(self, tracer) -> None:
        """Route protocol events of the unified cache to ``tracer``."""
        self.uni.tracer = tracer

    def seed_map_memo(self, pairs, values_table, stats=None) -> int:
        """Precompute map values for a trace (see engine precompute)."""
        return self.uni.seed_map_memo(pairs, values_table, stats)

    def publish_metrics(self, registry, prefix: str = "llc") -> None:
        """Publish unified-cache counters into a metrics registry."""
        self.uni.publish_metrics(registry, f"{prefix}.uni")
