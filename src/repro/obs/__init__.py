"""Observability subsystem: metrics, event tracing, phase profiling.

The simulator's structures (:class:`~repro.cache.stats.CacheStats`,
:class:`~repro.cache.writeback.WritebackBuffer`,
:class:`~repro.hierarchy.dram.MainMemory`, the Doppelgänger arrays)
already count events internally; this package makes those counters —
and the interesting protocol events behind them — visible:

* :mod:`repro.obs.metrics` — a registry of counters / gauges /
  histograms / timers plus lazily-collected *sources* that structures
  publish their stats through (near-zero overhead when disabled);
* :mod:`repro.obs.events` — typed event tracing with pluggable sinks
  (in-memory ring buffer, JSONL file);
* :mod:`repro.obs.profiling` — wall-clock phase profiling built on
  ``perf_counter_ns``;
* :mod:`repro.obs.output` — machine-readable experiment output (JSON
  tables under ``results/json/`` and the ``BENCH_obs.json`` run
  summary);
* :mod:`repro.obs.logs` — the ``repro`` logger hierarchy;
* :mod:`repro.obs.store` — the sqlite run-history store every harness
  invocation appends to (``repro history``, ``store:`` compare refs);
* :mod:`repro.obs.livestream` — live worker heartbeats for parallel
  sweeps (``--progress``), retained into the store.

:class:`Observability` bundles one registry + tracer + profiler and is
what the harness passes around; ``Observability.disabled()`` (the
default everywhere) costs one attribute check per instrumented site.
"""

from repro.obs.context import Observability
from repro.obs.events import (
    EVENT_BACK_INVALIDATION,
    EVENT_COHERENCE_INVALIDATION,
    EVENT_CONTROLLER_CONVERGED,
    EVENT_CONTROLLER_DEGRADE,
    EVENT_CONTROLLER_STEP,
    EVENT_DATA_EVICTION,
    EVENT_ENGINE_FALLBACK,
    EVENT_FAULT_INJECTED,
    EVENT_MAP_GENERATION,
    EVENT_PHASE,
    EVENT_TAG_INSERT,
    EVENT_TAG_MOVE,
    EVENT_WB_ENQUEUE,
    EVENT_WORKER_RETRY,
    Event,
    EventSink,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
)
from repro.obs.livestream import LiveProgressSink, WorkerProgress
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.profiling import PhaseProfiler
from repro.obs.store import (
    RunStore,
    default_store_path,
    is_store_ref,
    load_bench_source,
)

__all__ = [
    "Observability",
    "Event",
    "EventSink",
    "RingBufferSink",
    "JsonlFileSink",
    "Tracer",
    "EVENT_MAP_GENERATION",
    "EVENT_TAG_INSERT",
    "EVENT_TAG_MOVE",
    "EVENT_DATA_EVICTION",
    "EVENT_BACK_INVALIDATION",
    "EVENT_COHERENCE_INVALIDATION",
    "EVENT_WB_ENQUEUE",
    "EVENT_PHASE",
    "EVENT_FAULT_INJECTED",
    "EVENT_ENGINE_FALLBACK",
    "EVENT_WORKER_RETRY",
    "EVENT_CONTROLLER_STEP",
    "EVENT_CONTROLLER_DEGRADE",
    "EVENT_CONTROLLER_CONVERGED",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "PhaseProfiler",
    "RunStore",
    "default_store_path",
    "is_store_ref",
    "load_bench_source",
    "LiveProgressSink",
    "WorkerProgress",
    "configure_logging",
    "get_logger",
]
