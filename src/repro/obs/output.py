"""Machine-readable experiment output.

Two artifacts make runs chartable across PRs:

* ``results/json/<experiment>.json`` — every table an experiment
  driver returned, serialized via :meth:`Table.as_dict` (title,
  headers, rows, notes), one file per experiment;
* ``results/json/BENCH_obs.json`` — a cumulative run summary: wall
  time per experiment, per-(workload, config) simulation throughput
  and hit rates, and the phase-profile breakdown. Successive runs
  merge into the existing file so the trajectory survives partial
  reruns.

Both are plain JSON so future tooling (or ``repro.cli report``) can
render them without importing the simulator.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

BENCH_SCHEMA = "repro-bench/v1"
BENCH_FILENAME = "BENCH_obs.json"
DEFAULT_JSON_DIR = os.path.join("results", "json")


def write_json(path: str, obj) -> str:
    """Pretty-print ``obj`` to ``path``, creating parent directories.

    The write is atomic: the JSON lands in a same-directory temp file
    that is ``os.replace``d over ``path``, so a crash (or SIGKILL) at
    any instant leaves either the old file or the new one — never a
    truncated merge. This matters most for the cumulative
    ``BENCH_obs.json``, which is read-modify-written on every run.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            json.dump(obj, fh, indent=2, default=str)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def load_json(path: str):
    """Load one JSON file."""
    with open(path) as fh:
        return json.load(fh)


def save_experiment_json(name: str, tables: Dict[str, object], directory: str) -> str:
    """Serialize an experiment's tables to ``<directory>/<name>.json``.

    ``tables`` maps sub-table keys (``""`` for single-table
    experiments) to :class:`~repro.harness.reporting.Table` objects.
    """
    payload = {
        "experiment": name,
        "tables": {key or "main": table.to_dict() for key, table in tables.items()},
    }
    return write_json(os.path.join(directory, f"{name}.json"), payload)


def update_bench_summary(
    directory: str,
    experiments: Optional[Dict[str, dict]] = None,
    runs: Optional[List[dict]] = None,
    profile: Optional[dict] = None,
    context: Optional[dict] = None,
) -> str:
    """Merge new results into ``<directory>/BENCH_obs.json``.

    Experiment entries replace same-named predecessors; runs replace
    entries with the same (workload, config) pair; profile and context
    overwrite wholesale (they describe the latest invocation).
    """
    path = os.path.join(directory, BENCH_FILENAME)
    summary = {"schema": BENCH_SCHEMA, "experiments": {}, "runs": []}
    if os.path.exists(path):
        try:
            existing = load_json(path)
            if isinstance(existing, dict) and existing.get("schema") == BENCH_SCHEMA:
                summary = existing
        except (OSError, ValueError):
            pass  # a corrupt summary is regenerated, not fatal
    summary["updated_unix"] = time.time()
    if experiments:
        summary.setdefault("experiments", {}).update(experiments)
    if runs:
        kept = [
            r
            for r in summary.get("runs", [])
            if (r.get("workload"), r.get("config"))
            not in {(n.get("workload"), n.get("config")) for n in runs}
        ]
        summary["runs"] = kept + list(runs)
    if profile is not None:
        summary["profile"] = profile
    if context is not None:
        summary["context"] = context
    return write_json(path, summary)


def render_report(directory: str) -> str:
    """Human-readable summary of a ``results/json`` directory.

    Used by ``python -m repro.cli report``. Imports Table lazily to
    keep this module importable without the harness.
    """
    from repro.harness.reporting import Table

    lines: List[str] = []
    bench_path = os.path.join(directory, BENCH_FILENAME)
    if not os.path.isdir(directory):
        return f"no JSON results at {directory!r}; run an experiment first"
    if os.path.exists(bench_path):
        bench = load_json(bench_path)
        exps = bench.get("experiments", {})
        if exps:
            table = Table(
                "Experiment wall time", ["experiment", "wall s", "tables"], precision=2
            )
            for name, entry in sorted(exps.items()):
                table.add_row(
                    name, entry.get("wall_s"), ", ".join(entry.get("tables", []))
                )
            lines.append(table.render())
        runs = bench.get("runs", [])
        if runs:
            table = Table(
                "Simulated runs",
                ["workload", "config", "sim s", "acc/s", "LLC miss %", "back-inv"],
                precision=2,
            )
            for r in runs:
                table.add_row(
                    r.get("workload"),
                    r.get("config"),
                    r.get("sim_wall_s"),
                    r.get("accesses_per_sec"),
                    100.0 * r.get("llc_miss_rate", 0.0),
                    r.get("back_invalidations"),
                )
            lines.append("")
            lines.append(table.render())
        stages = (bench.get("profile") or {}).get("stages", {})
        if stages:
            table = Table("Latest phase profile (by stage)", ["stage", "seconds"], precision=3)
            for stage, secs in sorted(stages.items(), key=lambda kv: -kv[1]):
                table.add_row(stage, secs)
            lines.append("")
            lines.append(table.render())
    else:
        lines.append(f"(no {BENCH_FILENAME} in {directory!r} yet)")
    table_files = sorted(
        f
        for f in os.listdir(directory)
        if f.endswith(".json")
        and f != BENCH_FILENAME
        and not f.startswith("metrics_")
    )
    if table_files:
        lines.append("")
        lines.append("serialized tables: " + ", ".join(table_files))
    return "\n".join(lines)
