"""The :class:`Observability` bundle the harness threads through runs.

One bundle = one metrics registry + one tracer + one profiler, all
sharing an enabled/disabled fate. ``Observability.disabled()`` is the
library-wide default: its registry hands out no-op instruments, its
tracer has no sinks, its profiler skips the clock — so uninstrumented
callers pay (almost) nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import JsonlFileSink, RingBufferSink, Tracer
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import PhaseProfiler


class Observability:
    """Bundle of one registry, tracer and profiler.

    Args:
        enabled: master switch; a disabled bundle is inert.
        trace_path: attach a JSONL file sink at this path.
        ring_capacity: attach an in-memory ring sink of this size
            (0 disables the ring; the CLI uses the ring for its
            end-of-run event summary).
        trace_sample: emit one traced event in every ``trace_sample``
            (``--trace-sample N``); lets full-scale runs keep
            ``--trace-out`` on without drowning in events.
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_path: Optional[str] = None,
        ring_capacity: int = 0,
        trace_sample: int = 1,
    ):
        """Build the bundle (see class docstring for the arguments)."""
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(sample=trace_sample)
        self.ring: Optional[RingBufferSink] = None
        self.jsonl: Optional[JsonlFileSink] = None
        self.log = get_logger("obs")
        if enabled and ring_capacity:
            self.ring = RingBufferSink(ring_capacity)
            self.tracer.add_sink(self.ring)
        if enabled and trace_path:
            self.jsonl = JsonlFileSink(trace_path)
            self.tracer.add_sink(self.jsonl)
        self.profiler = PhaseProfiler(enabled=enabled, tracer=None)

    @classmethod
    def disabled(cls) -> "Observability":
        """The inert default bundle."""
        return cls(enabled=False)

    def close(self) -> None:
        """Flush and close every sink."""
        self.tracer.close()
