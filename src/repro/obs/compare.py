"""Diff two ``BENCH_obs.json`` summaries and flag regressions.

Backs the ``repro compare`` subcommand (a ROADMAP item): after a
change, run the same experiments twice and ask whether simulation got
slower, caches got worse, or output error grew::

    python -m repro.cli table2 --json-out results/before
    ... hack hack hack ...
    python -m repro.cli table2 --json-out results/after
    python -m repro.cli compare results/before/BENCH_obs.json \\
                                results/after/BENCH_obs.json

Either side may also be a ``store:`` reference into the run-history
store (:mod:`repro.obs.store`), so the diff can run against recorded
history instead of a cached file::

    python -m repro.cli compare store:last-1 store:last

Runs are joined on their (workload, config) pair; experiments on
their name. Per metric, a *regression* is:

* ``sim_wall_s`` / experiment ``wall_s`` — relative slowdown beyond
  the threshold (``new > old * (1 + threshold)``);
* ``l1_hit_rate`` / ``l2_hit_rate`` — absolute drop beyond the
  threshold;
* ``llc_miss_rate`` / ``error`` — absolute increase beyond the
  threshold.

Functional metrics (rates, error) are deterministic, so any movement
is a real behaviour change; wall time is noisy, which is why the same
threshold is applied *relatively* there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: metric -> (kind, direction). ``relative`` compares (new-old)/old;
#: ``absolute`` compares new-old. Direction +1 means "bigger is worse".
_RUN_METRICS = (
    ("sim_wall_s", "relative", +1),
    ("l1_hit_rate", "absolute", -1),
    ("l2_hit_rate", "absolute", -1),
    ("llc_miss_rate", "absolute", +1),
    ("error", "absolute", +1),
)


@dataclass
class MetricDelta:
    """One compared metric of one joined row."""

    key: str  # "<workload>/<config>" or "experiment <name>"
    metric: str
    old: float
    new: float
    delta: float  # signed, in the metric's comparison units
    regression: bool

    def describe(self) -> str:
        """One-line human-readable form."""
        unit = "%" if self.metric.endswith(("_rate", "error")) else "s"
        mark = "REGRESSION" if self.regression else "ok"
        return (
            f"{self.key:40s} {self.metric:14s} "
            f"{self.old:10.4f} -> {self.new:10.4f}  [{mark}] ({unit})"
        )


@dataclass
class BenchComparison:
    """Outcome of :func:`compare_bench`."""

    threshold: float
    deltas: List[MetricDelta] = field(default_factory=list)
    #: (workload, config) pairs present in only one summary.
    unmatched_old: List[Tuple[str, str]] = field(default_factory=list)
    unmatched_new: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        """Deltas beyond the threshold, worst-first."""
        return sorted(
            (d for d in self.deltas if d.regression),
            key=lambda d: -abs(d.delta),
        )

    def render(self) -> str:
        """Plain-text report (regressions first, then the full diff)."""
        from repro.harness.reporting import Table

        lines: List[str] = []
        regs = self.regressions
        table = Table(
            f"BENCH comparison (threshold {self.threshold:g})",
            ["run", "metric", "old", "new", "delta", "verdict"],
            precision=4,
        )
        for d in sorted(self.deltas, key=lambda d: (d.key, d.metric)):
            table.add_row(
                d.key,
                d.metric,
                d.old,
                d.new,
                d.delta,
                "REGRESSION" if d.regression else "ok",
            )
        if self.unmatched_old:
            table.add_note(
                "only in old: "
                + ", ".join(f"{w}/{c}" for w, c in self.unmatched_old)
            )
        if self.unmatched_new:
            table.add_note(
                "only in new: "
                + ", ".join(f"{w}/{c}" for w, c in self.unmatched_new)
            )
        lines.append(table.render())
        lines.append("")
        if regs:
            lines.append(f"{len(regs)} regression(s):")
            lines.extend("  " + d.describe() for d in regs)
        else:
            lines.append("no regressions")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly form (unified ``to_dict`` schema)."""
        return {
            "threshold": self.threshold,
            "regression_count": len(self.regressions),
            "deltas": [vars(d) for d in self.deltas],
            "unmatched_old": [list(p) for p in self.unmatched_old],
            "unmatched_new": [list(p) for p in self.unmatched_new],
        }


def _index_runs(summary: dict) -> Dict[Tuple[str, str], dict]:
    """Index a summary's run rows by their (workload, config) pair."""
    return {
        (r.get("workload"), r.get("config")): r
        for r in summary.get("runs", [])
    }


def _compare_metric(
    key: str, metric: str, kind: str, direction: int,
    old: Optional[float], new: Optional[float], threshold: float,
) -> Optional[MetricDelta]:
    """Delta one metric of one joined row (None if either side is missing)."""
    if old is None or new is None:
        return None
    old = float(old)
    new = float(new)
    if kind == "relative":
        delta = (new - old) / old if old else 0.0
    else:
        delta = new - old
    regression = direction * delta > threshold
    return MetricDelta(key, metric, old, new, delta, regression)


def compare_bench(
    old_path: str,
    new_path: str,
    threshold: float = 0.05,
    wall_threshold: Optional[float] = None,
    store_path: Optional[str] = None,
) -> BenchComparison:
    """Compare two BENCH summaries; see the module docstring for rules.

    Args:
        old_path: baseline ``BENCH_obs.json`` path — or a ``store:``
            run reference (``store:last-1``) resolved against the
            run-history store (see :mod:`repro.obs.store`).
        new_path: candidate ``BENCH_obs.json`` path or ``store:`` ref.
        threshold: tolerance — relative for wall times, absolute for
            hit/miss rates and error.
        wall_threshold: separate tolerance for the (noisy) wall-time
            metrics; defaults to ``threshold``. CI smoke jobs use a
            loose wall threshold with a tight functional one.
        store_path: history database for ``store:`` refs (default:
            ``REPRO_STORE`` or ``results/json/history.db``).
    """
    from repro.obs.store import load_bench_source

    if wall_threshold is None:
        wall_threshold = threshold
    old_summary = load_bench_source(old_path, store_path)
    new_summary = load_bench_source(new_path, store_path)
    result = BenchComparison(threshold=threshold)

    old_runs = _index_runs(old_summary)
    new_runs = _index_runs(new_summary)
    result.unmatched_old = sorted(set(old_runs) - set(new_runs))
    result.unmatched_new = sorted(set(new_runs) - set(old_runs))
    for pair in sorted(set(old_runs) & set(new_runs)):
        key = f"{pair[0]}/{pair[1]}"
        for metric, kind, direction in _RUN_METRICS:
            delta = _compare_metric(
                key, metric, kind, direction,
                old_runs[pair].get(metric), new_runs[pair].get(metric),
                wall_threshold if kind == "relative" else threshold,
            )
            if delta is not None:
                result.deltas.append(delta)

    old_exps = old_summary.get("experiments", {})
    new_exps = new_summary.get("experiments", {})
    for name in sorted(set(old_exps) & set(new_exps)):
        delta = _compare_metric(
            f"experiment {name}", "wall_s", "relative", +1,
            old_exps[name].get("wall_s"), new_exps[name].get("wall_s"),
            wall_threshold,
        )
        if delta is not None:
            result.deltas.append(delta)
    return result
