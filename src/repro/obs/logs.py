"""Logging setup for the ``repro`` package.

Modules get a child of the ``repro`` logger via :func:`get_logger`;
the CLI's ``--log-level`` flag calls :func:`configure_logging` once.
Nothing is configured at import time, so library users keep full
control of handlers.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger under the ``repro`` hierarchy.

    ``get_logger("harness.runner")`` returns ``repro.harness.runner``;
    with no argument the root ``repro`` logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: str = "WARNING", stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger.

    Idempotent: reconfiguring replaces the handler installed by a
    previous call instead of stacking duplicates.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(numeric)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_installed", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    handler._repro_installed = True
    logger.addHandler(handler)
    logger.propagate = False
    return logger
