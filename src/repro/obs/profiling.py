"""Wall-clock phase profiling.

The harness brackets its pipeline stages — workload construction,
trace generation, simulation, energy accounting, functional error
runs — with :meth:`PhaseProfiler.phase`. Phase names are
slash-separated paths (``sim/canneal/dopp-14bit-1/4``) so the report
can both show leaf timings and roll totals up by top-level stage.

Timing uses ``perf_counter_ns`` (monotonic, ns resolution); a disabled
profiler's ``phase()`` yields immediately without reading the clock.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter_ns
from typing import Dict, Optional


class PhaseStat:
    """Accumulated time of one named phase."""

    __slots__ = ("total_ns", "count")

    def __init__(self):
        """Start at zero time, zero entries."""
        self.total_ns = 0
        self.count = 0

    @property
    def seconds(self) -> float:
        """Accumulated time in seconds."""
        return self.total_ns / 1e9

    def as_dict(self) -> dict:
        """JSON-friendly snapshot."""
        return {"seconds": self.seconds, "count": self.count}


class PhaseProfiler:
    """Accumulates wall time per named phase.

    Args:
        enabled: a disabled profiler times nothing and renders empty.
        tracer: optional :class:`~repro.obs.events.Tracer`; each
            completed phase also emits a ``phase`` event.
    """

    def __init__(self, enabled: bool = True, tracer=None):
        """Create an empty profiler (see class docstring)."""
        self.enabled = enabled
        self.tracer = tracer
        self._phases: Dict[str, PhaseStat] = {}

    @contextmanager
    def phase(self, name: str):
        """Time a block of code under ``name`` (re-entrant, additive)."""
        if not self.enabled:
            yield
            return
        start = perf_counter_ns()
        try:
            yield
        finally:
            elapsed = perf_counter_ns() - start
            stat = self._phases.get(name)
            if stat is None:
                stat = self._phases[name] = PhaseStat()
            stat.total_ns += elapsed
            stat.count += 1
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit("phase", name=name, ns=elapsed)

    # ------------------------------------------------------------ reporting

    @property
    def phases(self) -> Dict[str, PhaseStat]:
        """Recorded phases in first-seen order."""
        return dict(self._phases)

    def total_seconds(self) -> float:
        """Sum of *top-level* phase time (nested phases overlap parents)."""
        return sum(
            stat.seconds for name, stat in self._phases.items() if "/" not in name
        )

    def by_stage(self) -> Dict[str, float]:
        """Seconds per top-level stage (first path component)."""
        stages: Dict[str, float] = {}
        for name, stat in self._phases.items():
            stage = name.split("/", 1)[0]
            # Only leaves count toward a stage to avoid double-counting
            # when a parent phase with the same prefix is also recorded.
            if any(
                other != name and other.startswith(name + "/")
                for other in self._phases
            ):
                continue
            stages[stage] = stages.get(stage, 0.0) + stat.seconds
        return stages

    def report(self) -> dict:
        """JSON-friendly breakdown: per-phase and per-stage."""
        return {
            "phases": {name: stat.as_dict() for name, stat in self._phases.items()},
            "stages": self.by_stage(),
        }

    def render(self, min_seconds: float = 0.0) -> str:
        """Human-readable per-phase timing breakdown."""
        if not self._phases:
            return "phase profile: (no phases recorded)"
        stages = self.by_stage()
        grand = sum(stages.values()) or 1.0
        lines = ["phase profile", "============="]
        lines.append(f"{'stage':<12} {'seconds':>9}  {'%':>5}")
        for stage, secs in sorted(stages.items(), key=lambda kv: -kv[1]):
            lines.append(f"{stage:<12} {secs:>9.3f}  {100 * secs / grand:>5.1f}")
        lines.append("")
        lines.append(f"{'phase':<44} {'seconds':>9}  {'count':>5}")
        ordered = sorted(self._phases.items(), key=lambda kv: -kv[1].total_ns)
        for name, stat in ordered:
            if stat.seconds < min_seconds:
                continue
            lines.append(f"{name:<44} {stat.seconds:>9.3f}  {stat.count:>5}")
        return "\n".join(lines)

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's phases into this one."""
        for name, stat in other._phases.items():
            mine = self._phases.get(name)
            if mine is None:
                mine = self._phases[name] = PhaseStat()
            mine.total_ns += stat.total_ns
            mine.count += stat.count

    def reset(self) -> None:
        """Drop all recorded phases."""
        self._phases.clear()


def make_profiler(enabled: bool = True, tracer=None) -> PhaseProfiler:
    """Factory kept for symmetry with the other obs constructors."""
    return PhaseProfiler(enabled=enabled, tracer=tracer)
