"""Lightweight metrics registry.

Four instrument kinds cover everything the simulator needs to report:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (occupancies, ratios);
* :class:`Histogram` — distribution summary with power-of-two buckets
  (tag-list fan-out, stall lengths);
* :class:`Timer` — a histogram of ``perf_counter_ns`` durations.

Structures that already keep their own counters (``CacheStats``,
``DoppelgangerStats``, the writeback buffer, DRAM) publish through
*sources*: a source is a zero-argument callable returning a flat dict,
registered once and evaluated only when :meth:`MetricsRegistry.collect`
runs — so an attached-but-idle registry adds nothing to the simulation
hot path.

A disabled registry hands out a shared :data:`NULL` instrument whose
methods are no-ops, so call sites never need their own guard.
"""

from __future__ import annotations

import json
import os
from time import perf_counter_ns
from typing import Callable, Dict, Optional


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        """Create the counter at zero."""
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def as_dict(self) -> dict:
        """JSON-friendly snapshot."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        """Create the gauge at zero."""
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    def as_dict(self) -> dict:
        """JSON-friendly snapshot."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution summary with power-of-two buckets.

    ``buckets[k]`` counts observations ``v`` with ``2**(k-1) < v <=
    2**k`` (``buckets[0]`` counts ``v <= 1``); negative observations
    are clamped into bucket 0. Mean/min/max are exact.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        """Create an empty histogram."""
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = 0
        v = value
        while v > 1:
            v /= 2.0
            bucket += 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (count, mean, min/max, buckets)."""
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Timer:
    """Histogram of wall-clock durations in nanoseconds.

    Use as a context manager::

        with registry.timer("sim.canneal"):
            system.run(trace)
    """

    __slots__ = ("name", "hist", "_start")

    def __init__(self, name: str):
        """Create a timer over an empty histogram."""
        self.name = name
        self.hist = Histogram(name)
        self._start = 0

    def __enter__(self) -> "Timer":
        """Start timing a block."""
        self._start = perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        """Record the block's duration."""
        self.hist.observe(perf_counter_ns() - self._start)

    def observe_ns(self, duration_ns: int) -> None:
        """Record an externally measured duration."""
        self.hist.observe(duration_ns)

    @property
    def count(self) -> int:
        """Number of recorded durations."""
        return self.hist.count

    @property
    def total_ns(self) -> float:
        """Sum of recorded durations in nanoseconds."""
        return self.hist.total

    @property
    def total_seconds(self) -> float:
        """Sum of recorded durations in seconds."""
        return self.hist.total / 1e9

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (histogram plus total seconds)."""
        out = self.hist.as_dict()
        out["type"] = "timer"
        out["total_seconds"] = self.total_seconds
        return out


class _NullInstrument:
    """No-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    total_ns = 0.0
    total_seconds = 0.0

    def inc(self, n: int = 1) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def observe_ns(self, duration_ns: int) -> None:
        """No-op."""

    def __enter__(self) -> "_NullInstrument":
        """No-op context entry."""
        return self

    def __exit__(self, *exc) -> None:
        """No-op context exit."""


#: Shared no-op instrument (what a disabled registry returns).
NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments plus lazily-evaluated stat sources.

    Args:
        enabled: when False every accessor returns :data:`NULL` and
            ``collect()`` yields an empty dict.
    """

    def __init__(self, enabled: bool = True):
        """Create an empty registry (see class docstring)."""
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}
        self._sources: Dict[str, Callable[[], dict]] = {}

    # ---------------------------------------------------------- instruments

    def _get(self, name: str, cls):
        """Get-or-create instrument ``name`` of type ``cls``."""
        if not self.enabled:
            return NULL
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get-or-create a counter."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create a gauge."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get-or-create a histogram."""
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        """Get-or-create a timer."""
        return self._get(name, Timer)

    # -------------------------------------------------------------- sources

    def register_source(self, prefix: str, source: Callable[[], dict]) -> None:
        """Register a stats publisher evaluated only at collection time.

        ``source()`` must return a flat ``{name: number}`` dict; its
        keys appear in :meth:`collect` as ``"{prefix}.{name}"``.
        Re-registering a prefix replaces the previous source (a
        structure rebuilt for a new run supersedes the old one).
        """
        if not self.enabled:
            return
        self._sources[prefix] = source

    # ------------------------------------------------------------ reporting

    def collect(self) -> dict:
        """Snapshot every instrument and source as a flat dict."""
        out: Dict[str, object] = {}
        for name, inst in sorted(self._instruments.items()):
            out[name] = inst.as_dict()
        for prefix, source in sorted(self._sources.items()):
            for key, value in source().items():
                out[f"{prefix}.{key}"] = value
        return out

    def save_json(self, path: str) -> str:
        """Write the collected snapshot as pretty-printed JSON."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.collect(), fh, indent=2, default=str)
            fh.write("\n")
        return path

    def reset(self) -> None:
        """Drop every instrument and source."""
        self._instruments.clear()
        self._sources.clear()
