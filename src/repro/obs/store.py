"""Sqlite-backed run-history store (``--store`` / ``repro history``).

Every harness invocation appends one row to ``runs`` and one row per
simulated (workload, config) to ``results``, so the performance and
accuracy trajectory — the paper's trend claims: error vs. map bits,
traffic and energy deltas, ``accesses_per_sec`` — is a SQL query over
history instead of a diff between whichever ``BENCH_obs.json`` files
happened to be saved.

Schema (version |SCHEMA_VERSION|, migrated automatically on open):

=================  ==========================================================
table              contents
=================  ==========================================================
``runs``           one harness invocation: start time, wall/CPU seconds,
                   git SHA, config hash, experiment names + wall times,
                   workloads, engine, seed/scale/jobs, argv, context JSON
``results``        one (workload, config) simulation: the indexed BENCH
                   columns plus the verbatim summary row and the full
                   nested ``RunRecord.to_dict()`` JSON
``metrics``        flat (name, value) rows per run/result — per-site fault
                   counters land here as ``faults.<site>.<counter>``
``events``         timestamped observability events (worker heartbeats
                   from :mod:`repro.obs.livestream`, engine fallbacks…)
``engine_stats``   flattened per-class engine tallies per result
                   (``fast.read_hit`` …; see ``docs/engine.md``)
``jobs``           serve-daemon job journal: queued/running/terminal job
                   rows that survive daemon restarts, each linking to
                   its ``runs`` row once executed (``docs/serving.md``)
=================  ==========================================================

The schema version lives in sqlite's ``PRAGMA user_version``; opening
an old store applies every migration in :data:`MIGRATIONS` in order,
so a fresh database and an upgraded one are structurally identical
(creation itself is "create v1, then migrate to head").

Concurrency: the store is opened in WAL journal mode with a 5 s
``busy_timeout``, so the serve daemon's writer threads and concurrent
``repro history`` reader processes coexist without ``database is
locked`` errors — WAL readers never block the writer and vice versa.
The connection is created with ``check_same_thread=False`` and every
method serializes on an internal :class:`threading.RLock`, making one
:class:`RunStore` instance safe to share across threads (each
write method is execute+commit atomic under the lock, so transactions
from different threads never interleave).

Store *refs* name runs without knowing their ids: ``store:last`` is
the newest run, ``store:last-1`` the one before it, ``store:<id>`` an
explicit row id. ``repro compare store:last-1 store:last`` diffs the
two most recent runs with the same machinery (and thresholds) as the
file-based BENCH diff — :meth:`RunStore.export_run` reconstructs a
BENCH-shaped summary from the stored rows.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import subprocess
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.output import BENCH_SCHEMA

#: Current schema version (``PRAGMA user_version``).
SCHEMA_VERSION = 3

#: Default on-disk location, overridable with ``REPRO_STORE``.
DEFAULT_STORE_PATH = os.path.join("results", "json", "history.db")

#: Prefix marking a run reference (``store:last``, ``store:last-1``,
#: ``store:<id>``) in CLI arguments that otherwise take file paths.
STORE_REF_PREFIX = "store:"

#: Seconds sqlite retries a locked database before giving up — applied
#: both as the connect timeout and the connection's ``busy_timeout``.
BUSY_TIMEOUT_S = 5.0

_SCHEMA_V1 = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        started_unix REAL NOT NULL,
        wall_s REAL,
        git_sha TEXT,
        config_hash TEXT,
        experiments TEXT,
        workloads TEXT,
        engine TEXT,
        seed INTEGER,
        scale REAL,
        jobs INTEGER,
        argv TEXT,
        context TEXT,
        finished INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS results (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
        workload TEXT NOT NULL,
        config TEXT NOT NULL,
        sim_wall_s REAL,
        accesses INTEGER,
        accesses_per_sec REAL,
        cycles INTEGER,
        llc_miss_rate REAL,
        l1_hit_rate REAL,
        l2_hit_rate REAL,
        traffic_bytes INTEGER,
        error REAL,
        engine_used TEXT,
        slow_path_fraction REAL,
        summary TEXT NOT NULL,
        record TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS metrics (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
        result_id INTEGER REFERENCES results(id) ON DELETE CASCADE,
        name TEXT NOT NULL,
        value REAL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS engine_stats (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        result_id INTEGER NOT NULL REFERENCES results(id) ON DELETE CASCADE,
        key TEXT NOT NULL,
        value REAL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_results_run ON results(run_id)",
    "CREATE INDEX IF NOT EXISTS idx_metrics_run ON metrics(run_id, name)",
)

_MIGRATION_V2 = (
    # Live worker progress: heartbeats and other observability events
    # land per run so a stuck worker is diagnosable after the fact.
    """
    CREATE TABLE IF NOT EXISTS events (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
        ts_unix REAL NOT NULL,
        kind TEXT NOT NULL,
        unit TEXT,
        payload TEXT
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_events_run ON events(run_id, kind)",
    "ALTER TABLE runs ADD COLUMN cpu_s REAL",
)

_MIGRATION_V3 = (
    # Serve-daemon job journal: job rows outlive the daemon process so
    # a restart re-reports terminal jobs and re-enqueues queued ones;
    # run_id links an executed job to its history run (SET NULL keeps
    # the job row meaningful after `repro history gc`).
    """
    CREATE TABLE IF NOT EXISTS jobs (
        id TEXT PRIMARY KEY,
        submitted_unix REAL NOT NULL,
        started_unix REAL,
        finished_unix REAL,
        state TEXT NOT NULL,
        spec TEXT NOT NULL,
        run_id INTEGER REFERENCES runs(id) ON DELETE SET NULL,
        error TEXT,
        daemon TEXT
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state)",
)


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """v1 → v2: add the ``events`` table and the ``runs.cpu_s`` column."""
    for stmt in _MIGRATION_V2:
        conn.execute(stmt)


def _migrate_2_to_3(conn: sqlite3.Connection) -> None:
    """v2 → v3: add the serve-daemon ``jobs`` journal table."""
    for stmt in _MIGRATION_V3:
        conn.execute(stmt)


#: version N -> migration applying everything needed to reach N+1.
#: Opening a store walks from ``user_version`` to :data:`SCHEMA_VERSION`.
MIGRATIONS = {1: _migrate_1_to_2, 2: _migrate_2_to_3}


def default_store_path(json_dir: Optional[str] = None) -> str:
    """Resolve the store path: ``REPRO_STORE`` env, else the default.

    With ``json_dir`` given (the CLI's ``--json-out``), the fallback is
    ``<json_dir>/history.db`` so redirected output directories carry
    their history alongside the JSON artifacts.
    """
    env = os.environ.get("REPRO_STORE")
    if env:
        return env
    if json_dir:
        return os.path.join(json_dir, "history.db")
    return DEFAULT_STORE_PATH


def is_store_ref(source: str) -> bool:
    """True when ``source`` is a ``store:`` run reference, not a path."""
    return isinstance(source, str) and source.startswith(STORE_REF_PREFIX)


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit SHA, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def config_digest(obj) -> str:
    """Short stable hash of a JSON-serializable configuration."""
    blob = json.dumps(obj, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _json_or_none(value) -> Optional[str]:
    """Serialize ``value`` to JSON, passing None through."""
    return None if value is None else json.dumps(value, default=str)


def _load_or_none(blob: Optional[str]):
    """Inverse of :func:`_json_or_none`."""
    return None if blob is None else json.loads(blob)


class RunStore:
    """One sqlite database of run history.

    Opens (creating and migrating as needed) eagerly; use as a context
    manager or call :meth:`close`. All writes commit immediately — a
    crashed harness leaves the completed rows behind, which is the
    point of a history store.

    The connection runs in WAL mode with a :data:`BUSY_TIMEOUT_S`
    busy timeout and is safe to share across threads: every method
    holds an internal reentrant lock for its whole execute+commit (or
    execute+fetch) span, so the serve daemon's writer threads and
    in-process readers never interleave transactions.
    """

    def __init__(self, path: str):
        """Open (or create) the store at ``path``."""
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            path, timeout=BUSY_TIMEOUT_S, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        try:
            # WAL lets history readers run while the daemon writes.
            # Silently unavailable on some filesystems (and :memory:);
            # the busy timeout still prevents hard lock errors there.
            self._conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.DatabaseError:  # pragma: no cover - exotic fs
            pass
        self._conn.execute(f"PRAGMA busy_timeout = {int(BUSY_TIMEOUT_S * 1000)}")
        self._ensure_schema()

    # ------------------------------------------------------------ lifecycle

    def _ensure_schema(self) -> None:
        """Create a fresh schema or migrate an old one to head.

        Creation is "build v1, then run every migration", so a database
        created today and one upgraded from v1 are structurally
        identical.
        """
        with self._lock:
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                for stmt in _SCHEMA_V1:
                    self._conn.execute(stmt)
                version = 1
            if version > SCHEMA_VERSION:
                raise ConfigError(
                    f"store {self.path!r} has schema version {version}, newer "
                    f"than this build's {SCHEMA_VERSION}; upgrade repro",
                    field="store",
                )
            while version < SCHEMA_VERSION:
                MIGRATIONS[version](self._conn)
                version += 1
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            self._conn.commit()

    @property
    def schema_version(self) -> int:
        """The database's current ``PRAGMA user_version``."""
        with self._lock:
            return self._conn.execute("PRAGMA user_version").fetchone()[0]

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "RunStore":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit; closes the connection."""
        self.close()

    # --------------------------------------------------------------- writes

    def start_run(
        self,
        *,
        experiments: Optional[Sequence[str]] = None,
        workloads: Optional[Sequence[str]] = None,
        engine: Optional[str] = None,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        jobs: Optional[int] = None,
        argv: Optional[Sequence[str]] = None,
        context: Optional[dict] = None,
        sha: Optional[str] = None,
        config_hash: Optional[str] = None,
        started_unix: Optional[float] = None,
    ) -> int:
        """Insert the invocation row up front; returns its run id.

        Recording starts before simulation so live events have a run to
        attach to; :meth:`finish_run` stamps the final timings and
        flips ``finished``.
        """
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO runs (started_unix, git_sha, config_hash, "
                "experiments, workloads, engine, seed, scale, jobs, argv, "
                "context) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    time.time() if started_unix is None else started_unix,
                    sha,
                    config_hash,
                    _json_or_none(
                        {name: {} for name in experiments}
                        if experiments
                        else None
                    ),
                    _json_or_none(list(workloads) if workloads else None),
                    engine,
                    seed,
                    scale,
                    jobs,
                    _json_or_none(list(argv) if argv else None),
                    _json_or_none(context),
                ),
            )
            self._conn.commit()
            return cur.lastrowid

    def finish_run(
        self,
        run_id: int,
        *,
        wall_s: Optional[float] = None,
        cpu_s: Optional[float] = None,
        experiments: Optional[Dict[str, dict]] = None,
        context: Optional[dict] = None,
    ) -> None:
        """Stamp final timings / experiment wall times on a run row."""
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET wall_s = ?, cpu_s = ?, finished = 1, "
                "experiments = COALESCE(?, experiments), "
                "context = COALESCE(?, context) WHERE id = ?",
                (
                    wall_s,
                    cpu_s,
                    _json_or_none(experiments),
                    _json_or_none(context),
                    run_id,
                ),
            )
            self._conn.commit()

    def add_result(
        self, run_id: int, summary: dict, record: Optional[dict] = None
    ) -> int:
        """Insert one (workload, config) result row; returns its id.

        ``summary`` is a BENCH run row
        (:meth:`~repro.harness.runner.RunRecord.summary_row`); its
        queryable metrics become indexed columns while the verbatim
        dict is kept for lossless export. ``record`` is the full nested
        ``RunRecord.to_dict()``. Per-site fault counters and flattened
        engine stats fan out into the ``metrics`` and ``engine_stats``
        tables so error-vs-fault-rate curves are one SQL join away.
        """
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO results (run_id, workload, config, sim_wall_s, "
                "accesses, accesses_per_sec, cycles, llc_miss_rate, "
                "l1_hit_rate, l2_hit_rate, traffic_bytes, error, "
                "engine_used, slow_path_fraction, summary, record) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    summary.get("workload"),
                    summary.get("config"),
                    summary.get("sim_wall_s"),
                    summary.get("accesses"),
                    summary.get("accesses_per_sec"),
                    summary.get("cycles"),
                    summary.get("llc_miss_rate"),
                    summary.get("l1_hit_rate"),
                    summary.get("l2_hit_rate"),
                    summary.get("traffic_bytes"),
                    summary.get("error"),
                    summary.get("engine_used"),
                    summary.get("slow_path_fraction"),
                    json.dumps(summary, default=str),
                    _json_or_none(record),
                ),
            )
            result_id = cur.lastrowid
            faults = summary.get("faults") or {}
            for site, counters in sorted((faults.get("sites") or {}).items()):
                for name, value in sorted(counters.items()):
                    self.add_metric(
                        run_id,
                        f"faults.{site}.{name}",
                        value,
                        result_id=result_id,
                    )
            engine_stats = summary.get("engine_stats")
            if engine_stats:
                from repro.hierarchy.system import flatten_engine_stats

                self._conn.executemany(
                    "INSERT INTO engine_stats (result_id, key, value) "
                    "VALUES (?, ?, ?)",
                    [
                        (result_id, key, float(value))
                        for key, value in flatten_engine_stats(
                            engine_stats
                        ).items()
                    ],
                )
            self._conn.commit()
            return result_id

    def add_metric(
        self, run_id: int, name: str, value, result_id: Optional[int] = None
    ) -> None:
        """Insert one flat (name, value) metric row."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO metrics (run_id, result_id, name, value) "
                "VALUES (?, ?, ?, ?)",
                (
                    run_id,
                    result_id,
                    name,
                    None if value is None else float(value),
                ),
            )
            self._conn.commit()

    def add_event(
        self,
        run_id: int,
        kind: str,
        *,
        unit: Optional[str] = None,
        payload: Optional[dict] = None,
        ts_unix: Optional[float] = None,
    ) -> None:
        """Insert one observability event row."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO events (run_id, ts_unix, kind, unit, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    run_id,
                    time.time() if ts_unix is None else ts_unix,
                    kind,
                    unit,
                    _json_or_none(payload),
                ),
            )
            self._conn.commit()

    def add_events(self, run_id: int, events: Iterable[dict]) -> int:
        """Bulk-insert event dicts (heartbeats); returns the count.

        Each dict needs ``kind``; ``ts_unix`` and ``unit`` are lifted
        out, everything else lands in the JSON payload.
        """
        rows = []
        for ev in events:
            ev = dict(ev)
            kind = ev.pop("kind", "event")
            ts = ev.pop("ts_unix", None)
            unit = ev.pop("unit", None)
            rows.append(
                (
                    run_id,
                    time.time() if ts is None else ts,
                    kind,
                    unit,
                    _json_or_none(ev) if ev else None,
                )
            )
        with self._lock:
            self._conn.executemany(
                "INSERT INTO events (run_id, ts_unix, kind, unit, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        return len(rows)

    # ----------------------------------------------------------------- jobs

    def save_job(self, row: dict) -> None:
        """Upsert one serve-daemon job journal row (keyed by ``id``).

        ``row`` carries the columns of the ``jobs`` table; ``spec`` may
        be a dict (serialized here) or an already-encoded JSON string.
        Used by :class:`repro.serve.queue.JobQueue` on every state
        transition so a restarted daemon recovers the queue.
        """
        spec = row["spec"]
        if not isinstance(spec, str):
            spec = json.dumps(spec, default=str)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO jobs (id, submitted_unix, "
                "started_unix, finished_unix, state, spec, run_id, error, "
                "daemon) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    row["id"],
                    row["submitted_unix"],
                    row.get("started_unix"),
                    row.get("finished_unix"),
                    row["state"],
                    spec,
                    row.get("run_id"),
                    row.get("error"),
                    row.get("daemon"),
                ),
            )
            self._conn.commit()

    def load_jobs(self, states: Optional[Sequence[str]] = None) -> List[dict]:
        """Job journal rows, oldest submission first, specs decoded.

        ``states`` filters to the given job states (e.g. ``("queued",
        "running")`` when a restarted daemon recovers its backlog).
        """
        sql = "SELECT * FROM jobs"
        params: List[object] = []
        if states:
            marks = ", ".join("?" for _ in states)
            sql += f" WHERE state IN ({marks})"
            params = list(states)
        sql += " ORDER BY submitted_unix, id"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        out = []
        for row in rows:
            decoded = dict(row)
            decoded["spec"] = _load_or_none(decoded.get("spec"))
            out.append(decoded)
        return out

    def job_row(self, job_id: str) -> Optional[dict]:
        """One job journal row by id (spec decoded), or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            return None
        decoded = dict(row)
        decoded["spec"] = _load_or_none(decoded.get("spec"))
        return decoded

    # ---------------------------------------------------------------- reads

    def run_ids(self) -> List[int]:
        """Every run id, oldest first."""
        with self._lock:
            return [
                row[0]
                for row in self._conn.execute("SELECT id FROM runs ORDER BY id")
            ]

    def resolve_ref(self, ref: str) -> int:
        """Resolve ``store:last[-N]`` / ``store:<id>`` to a run id.

        The bare forms (``last``, ``last-1``, ``7``) are accepted too.

        Raises:
            ConfigError: malformed ref, unknown id, or empty store.
        """
        name = ref[len(STORE_REF_PREFIX):] if is_store_ref(ref) else ref
        ids = self.run_ids()
        if not ids:
            raise ConfigError(
                f"store {self.path!r} has no recorded runs", field="store"
            )
        if name == "last":
            return ids[-1]
        if name.startswith("last-"):
            try:
                back = int(name[len("last-"):])
            except ValueError:
                back = -1
            if back < 0:
                raise ConfigError(
                    f"bad store ref {ref!r}: expected store:last, "
                    "store:last-N or store:<id>", field="store",
                )
            if back >= len(ids):
                raise ConfigError(
                    f"store ref {ref!r} reaches past history "
                    f"({len(ids)} runs recorded)", field="store",
                )
            return ids[-1 - back]
        try:
            run_id = int(name)
        except ValueError:
            raise ConfigError(
                f"bad store ref {ref!r}: expected store:last, store:last-N "
                "or store:<id>", field="store",
            ) from None
        if run_id not in ids:
            raise ConfigError(
                f"store {self.path!r} has no run {run_id}", field="store"
            )
        return run_id

    def run_row(self, run_id: int) -> dict:
        """One ``runs`` row as a dict with JSON columns decoded."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise ConfigError(
                f"store {self.path!r} has no run {run_id}", field="store"
            )
        out = dict(row)
        for key in ("experiments", "workloads", "argv", "context"):
            out[key] = _load_or_none(out.get(key))
        return out

    def results_for(self, run_id: int) -> List[dict]:
        """The verbatim summary rows of a run, (workload, config)-sorted."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT summary FROM results WHERE run_id = ? "
                "ORDER BY workload, config", (run_id,),
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def records_for(self, run_id: int) -> Dict[Tuple[str, str], Optional[dict]]:
        """Full nested records keyed by (workload, config)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT workload, config, record FROM results "
                "WHERE run_id = ? ORDER BY workload, config", (run_id,),
            ).fetchall()
        return {
            (row[0], row[1]): _load_or_none(row[2]) for row in rows
        }

    def export_run(self, run_id: int) -> dict:
        """Reconstruct a BENCH-shaped summary from the stored rows.

        The result is accepted anywhere a loaded ``BENCH_obs.json``
        dict is (notably :func:`repro.obs.compare.compare_bench` via
        ``store:`` refs), with the run's provenance under ``store``.
        """
        run = self.run_row(run_id)
        return {
            "schema": BENCH_SCHEMA,
            "experiments": run.get("experiments") or {},
            "runs": self.results_for(run_id),
            "context": run.get("context"),
            "store": {
                "path": self.path,
                "run_id": run_id,
                "started_unix": run.get("started_unix"),
                "git_sha": run.get("git_sha"),
                "config_hash": run.get("config_hash"),
            },
        }

    def list_runs(self, limit: Optional[int] = None) -> List[dict]:
        """Newest-first run rows joined with their result counts."""
        sql = (
            "SELECT r.*, COUNT(s.id) AS results "
            "FROM runs r LEFT JOIN results s ON s.run_id = r.id "
            "GROUP BY r.id ORDER BY r.id DESC"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            rows = self._conn.execute(sql).fetchall()
        out = []
        for row in rows:
            decoded = dict(row)
            for key in ("experiments", "workloads", "argv", "context"):
                decoded[key] = _load_or_none(decoded.get(key))
            out.append(decoded)
        return out

    def top(
        self,
        metric: str = "accesses_per_sec",
        *,
        workload: Optional[str] = None,
        config: Optional[str] = None,
        limit: int = 10,
        best: str = "max",
    ) -> List[dict]:
        """Best results across all history by one indexed metric.

        ``metric`` must be a ``results`` column (it is validated against
        the table schema, so user input cannot inject SQL).
        """
        with self._lock:
            columns = {
                row[1]
                for row in self._conn.execute("PRAGMA table_info(results)")
            }
        if metric not in columns or metric in ("summary", "record"):
            queryable = sorted(columns - {"summary", "record"})
            raise ConfigError(
                f"unknown metric {metric!r}; choose from {queryable}",
                field="metric",
            )
        if best not in ("max", "min"):
            raise ConfigError(
                f"best must be 'max' or 'min', got {best!r}", field="best"
            )
        sql = (
            f"SELECT run_id, workload, config, {metric} AS value "
            f"FROM results WHERE {metric} IS NOT NULL"
        )
        params: List[object] = []
        if workload is not None:
            sql += " AND workload = ?"
            params.append(workload)
        if config is not None:
            sql += " AND config = ?"
            params.append(config)
        order = "DESC" if best == "max" else "ASC"
        sql += f" ORDER BY value {order}, run_id DESC LIMIT {int(limit)}"
        with self._lock:
            return [dict(row) for row in self._conn.execute(sql, params)]

    def query(self, sql: str, params: Sequence = ()) -> Tuple[List[str], List[tuple]]:
        """Raw SQL passthrough; returns (column names, rows).

        Backs ``repro history query 'SELECT …'`` — the escape hatch the
        cookbook in ``docs/observability.md`` builds on. The statement
        runs verbatim against the user's own local database.
        """
        with self._lock:
            cur = self._conn.execute(sql, params)
            headers = [d[0] for d in cur.description] if cur.description else []
            return headers, [tuple(row) for row in cur.fetchall()]

    def events_for(
        self, run_id: int, kind: Optional[str] = None
    ) -> List[dict]:
        """A run's event rows (oldest first), payloads decoded."""
        sql = "SELECT ts_unix, kind, unit, payload FROM events WHERE run_id = ?"
        params: List[object] = [run_id]
        if kind is not None:
            sql += " AND kind = ?"
            params.append(kind)
        sql += " ORDER BY id"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        out = []
        for ts, k, unit, payload in rows:
            ev = {"ts_unix": ts, "kind": k, "unit": unit}
            ev.update(_load_or_none(payload) or {})
            out.append(ev)
        return out

    def gc(self, keep: int) -> int:
        """Delete all but the newest ``keep`` runs; returns rows dropped.

        Foreign keys cascade, so a run's results, metrics, events and
        engine stats go with it (job rows keep their ids with ``run_id``
        nulled); the file is vacuumed afterwards.
        """
        if keep < 0:
            raise ConfigError(f"keep must be >= 0, got {keep}", field="keep")
        ids = self.run_ids()
        doomed = ids[: max(0, len(ids) - keep)]
        if not doomed:
            return 0
        with self._lock:
            self._conn.executemany(
                "DELETE FROM runs WHERE id = ?", [(i,) for i in doomed]
            )
            self._conn.commit()
            self._conn.execute("VACUUM")
        return len(doomed)


def load_bench_source(source: str, store_path: Optional[str] = None) -> dict:
    """Load a BENCH summary from a JSON path or a ``store:`` ref.

    The one-stop resolver for CLI arguments that accept either form
    (``repro compare``): ``store:`` refs open the history store at
    ``store_path`` (default: :func:`default_store_path`), anything else
    is read as a JSON file.
    """
    if is_store_ref(source):
        with RunStore(store_path or default_store_path()) as store:
            return store.export_run(store.resolve_ref(source))
    from repro.obs.output import load_json

    return load_json(source)
