"""Structured event tracing with pluggable sinks.

Events are the *interesting* Doppelgänger mechanics — the ones the
paper's Secs. 3.3-3.6 reason about — not every cache access:

========================  =====================================================
kind                      payload fields
========================  =====================================================
``map_generation``        ``addr``, ``region``, ``map`` (Sec. 3.7 hash+bin)
``tag_insert``            ``addr``, ``map``, ``shared`` (joined existing list?)
``tag_move``              ``addr``, ``old_map``, ``new_map`` (Sec. 3.4 write)
``data_eviction``         ``map``, ``tags``, ``dirty`` (Sec. 3.5 fan-out)
``back_invalidation``     ``addr``, ``origin`` (inclusive-LLC purge)
``coherence_invalidation``  ``addr``, ``writer``, ``sharers`` (MSI store)
``wb_enqueue``            ``addr``, ``stall`` (writeback-buffer pressure)
``phase``                 ``name``, ``ns`` (one per completed profiler phase)
``fault_injected``        ``site``, ``addr``, ``detected`` (resilience layer)
``engine_fallback``       ``engine``, ``error``, ``workload``, ``config``
``worker_retry``          ``workload``, ``attempt``, ``delay_s``, ``error``
``controller_step``       ``workload``, ``step``, ``vdd``, ``error``, ``verdict``
``controller_degrade``    ``workload``, ``action``, ``step``, ``error``
``controller_converged``  ``workload``, ``frontier``, ``survivable_rate``
========================  =====================================================

The later kinds come from the resilience layer (``docs/robustness.md``):
``fault_injected`` marks one injected fault (``detected`` tells an
ECC-detected refetch from a silent approximate-array corruption),
``engine_fallback`` records a batched-engine failure that degraded to
the reference interpreter, and ``worker_retry`` records a parallel
worker being retried after a crash or timeout. The ``controller_*``
kinds trace the error-budget controller's frontier search
(:mod:`repro.resilience.controller`): one ``controller_step`` per
evaluated voltage step with its within/over verdict and bracket, a
``controller_degrade`` whenever a blown budget steps the voltage back
up (``action="raise_voltage"``) or abandons approximation entirely
(``action="precise_fallback"``), and one ``controller_converged`` per
workload with the final frontier and operating point.

A :class:`Tracer` fans each event out to its sinks. With no sinks
attached ``tracer.enabled`` is False and instrumented code skips the
emit entirely; the harness-wide default is a disabled tracer, so the
simulation hot path pays one attribute check.
"""

from __future__ import annotations

import json
import os
from time import perf_counter_ns
from typing import Deque, List, NamedTuple, Optional

from collections import deque

EVENT_MAP_GENERATION = "map_generation"
EVENT_TAG_INSERT = "tag_insert"
EVENT_TAG_MOVE = "tag_move"
EVENT_DATA_EVICTION = "data_eviction"
EVENT_BACK_INVALIDATION = "back_invalidation"
EVENT_COHERENCE_INVALIDATION = "coherence_invalidation"
EVENT_WB_ENQUEUE = "wb_enqueue"
EVENT_PHASE = "phase"
EVENT_FAULT_INJECTED = "fault_injected"
EVENT_ENGINE_FALLBACK = "engine_fallback"
EVENT_WORKER_RETRY = "worker_retry"
EVENT_CONTROLLER_STEP = "controller_step"
EVENT_CONTROLLER_DEGRADE = "controller_degrade"
EVENT_CONTROLLER_CONVERGED = "controller_converged"

#: Every kind an instrumented structure may emit (docs + validation).
EVENT_KINDS = (
    EVENT_MAP_GENERATION,
    EVENT_TAG_INSERT,
    EVENT_TAG_MOVE,
    EVENT_DATA_EVICTION,
    EVENT_BACK_INVALIDATION,
    EVENT_COHERENCE_INVALIDATION,
    EVENT_WB_ENQUEUE,
    EVENT_PHASE,
    EVENT_FAULT_INJECTED,
    EVENT_ENGINE_FALLBACK,
    EVENT_WORKER_RETRY,
    EVENT_CONTROLLER_STEP,
    EVENT_CONTROLLER_DEGRADE,
    EVENT_CONTROLLER_CONVERGED,
)


class Event(NamedTuple):
    """One traced event."""

    seq: int
    ts_ns: int
    kind: str
    fields: dict

    def as_dict(self) -> dict:
        """Flat JSON-friendly representation."""
        out = {"seq": self.seq, "ts_ns": self.ts_ns, "kind": self.kind}
        out.update(self.fields)
        return out


class EventSink:
    """Sink interface; subclasses override :meth:`emit`."""

    def emit(self, event: Event) -> None:
        """Consume one event (abstract)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def summary(self) -> dict:
        """Sink health for :meth:`Tracer.summary`; subclasses extend."""
        return {"sink": type(self).__name__}


class RingBufferSink(EventSink):
    """Keeps the last ``capacity`` events in memory.

    When the ring wraps, the overwritten events are counted in
    ``dropped_events`` — ``total_emitted == len(events) +
    dropped_events`` always holds (until :meth:`clear`), so a
    truncated trace is detectable instead of silently looking
    complete.
    """

    def __init__(self, capacity: int = 4096):
        """Allocate a ring holding the last ``capacity`` events."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buf: Deque[Event] = deque(maxlen=capacity)
        self.total_emitted = 0
        #: Events overwritten by ring wrap-around (lost to readers).
        self.dropped_events = 0

    def emit(self, event: Event) -> None:
        """Append one event, counting a drop when the ring is full."""
        if len(self._buf) == self.capacity:
            self.dropped_events += 1
        self._buf.append(event)
        self.total_emitted += 1

    @property
    def events(self) -> List[Event]:
        """Buffered events, oldest first."""
        return list(self._buf)

    def counts_by_kind(self) -> dict:
        """Histogram of buffered event kinds."""
        counts: dict = {}
        for ev in self._buf:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop buffered events (``total_emitted`` keeps counting).

        A deliberate clear is not data loss: ``dropped_events`` keeps
        counting wrap-around only.
        """
        self._buf.clear()

    def summary(self) -> dict:
        """Capacity, fill level and drop accounting for this ring."""
        return {
            "sink": type(self).__name__,
            "capacity": self.capacity,
            "buffered": len(self._buf),
            "total_emitted": self.total_emitted,
            "dropped_events": self.dropped_events,
        }


class JsonlFileSink(EventSink):
    """Appends one JSON object per event to a file.

    The file is opened lazily on the first event so constructing a
    tracer never touches the filesystem.
    """

    def __init__(self, path: str):
        """Bind the sink to ``path`` without opening it yet."""
        self.path = path
        self._fh = None
        self.written = 0

    def emit(self, event: Event) -> None:
        """Append one JSON line, opening the file on first use."""
        if self._fh is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "w")
        self._fh.write(json.dumps(event.as_dict(), default=str))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        """Close the file handle if it was opened."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def summary(self) -> dict:
        """Path and line count for this file sink."""
        return {
            "sink": type(self).__name__,
            "path": self.path,
            "written": self.written,
        }


def read_jsonl(path: str) -> List[dict]:
    """Load a JSONL trace back into a list of dicts."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class Tracer:
    """Fans events out to attached sinks.

    ``enabled`` is kept in sync with sink attachment so hot code can
    guard with ``if tracer is not None and tracer.enabled``.

    Args:
        sinks: initial sinks (more can be attached later).
        sample: emit one event in every ``sample`` (1 = every event).
            Sequence numbers keep counting *all* events, so a sampled
            trace still reveals the true event volume — consecutive
            ``seq`` values in the file differ by ``sample``.
    """

    def __init__(self, sinks: Optional[List[EventSink]] = None, sample: int = 1):
        """Create a tracer over ``sinks`` with 1-in-``sample`` emission."""
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self._sinks: List[EventSink] = list(sinks) if sinks else []
        self.enabled = bool(self._sinks)
        self.sample = int(sample)
        self._seq = 0
        self._forwarded = 0
        self._t0 = perf_counter_ns()

    def add_sink(self, sink: EventSink) -> EventSink:
        """Attach a sink (enables the tracer); returns it."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    @property
    def sinks(self) -> List[EventSink]:
        """The attached sinks (a copy)."""
        return list(self._sinks)

    def emit(self, kind: str, **fields) -> None:
        """Emit one event; a no-op without sinks.

        With ``sample > 1`` only every ``sample``-th event reaches the
        sinks (the first one always does), but every call advances the
        sequence counter.
        """
        if not self.enabled:
            return
        self._seq += 1
        if (self._seq - 1) % self.sample:
            return
        event = Event(self._seq, perf_counter_ns() - self._t0, kind, fields)
        self._forwarded += 1
        for sink in self._sinks:
            sink.emit(event)

    def summary(self) -> dict:
        """Emission accounting across the tracer and its sinks.

        ``emitted`` counts every :meth:`emit` call, ``forwarded`` the
        events that survived sampling, and ``dropped_events`` sums the
        sinks' wrap-around losses (ring buffers) — nonzero means the
        buffered trace is truncated and conclusions drawn from it
        should say so.
        """
        sinks = [sink.summary() for sink in self._sinks]
        return {
            "emitted": self._seq,
            "forwarded": self._forwarded,
            "sample": self.sample,
            "dropped_events": sum(
                s.get("dropped_events", 0) for s in sinks
            ),
            "sinks": sinks,
        }

    def close(self) -> None:
        """Close every sink."""
        for sink in self._sinks:
            sink.close()
