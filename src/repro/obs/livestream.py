"""Live worker progress streaming for parallel sweeps (``--progress``).

A ``--jobs N`` sweep used to be a black box between "prefetching…" and
the merged tables: a stuck or thrashing worker was only visible when
``--timeout`` finally fired. This module gives each worker a channel —
a ``multiprocessing`` queue — over which it emits *heartbeats*: small
dicts naming the work unit, the (workload, config) just simulated,
accesses done, accesses/second, the engine's slow-path fraction and
the worker's peak RSS.

On the parent side a :class:`LiveProgressSink` drains the queue on a
daemon thread, keeps the latest state per unit, renders an in-place
one-line terminal status under ``--progress``, and retains every
heartbeat so the CLI can land them in the run-history store
(:mod:`repro.obs.store`) — making mid-run worker behaviour queryable
after the fact (``SELECT … FROM events WHERE kind =
'worker_heartbeat'``).

Heartbeats are plain dicts (not classes) so they cross process
boundaries with no import coupling, and emission is best-effort: a
worker never fails its task because the parent's queue died.
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
import time
from typing import Dict, List, Optional

#: Event kind heartbeats carry in the queue, sink and store.
HEARTBEAT_KIND = "worker_heartbeat"

#: Heartbeat lifecycle phases, in emission order per unit.
HEARTBEAT_PHASES = ("start", "trace", "run", "error", "done")


def rss_kb() -> int:
    """Peak resident set size of this process in KB (0 if unknown)."""
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, ValueError, OSError):
        return 0
    # Linux reports KB; macOS reports bytes.
    return int(usage // 1024) if usage > 1 << 30 else int(usage)


def make_heartbeat(
    unit: str,
    phase: str,
    *,
    workload: Optional[str] = None,
    config: Optional[str] = None,
    done: int = 0,
    total: int = 0,
    accesses: int = 0,
    accesses_per_sec: float = 0.0,
    slow_path_fraction: Optional[float] = None,
) -> dict:
    """Build one heartbeat dict (adds timestamp, pid and RSS)."""
    return {
        "kind": HEARTBEAT_KIND,
        "unit": unit,
        "phase": phase,
        "workload": workload,
        "config": config,
        "done": done,
        "total": total,
        "accesses": accesses,
        "accesses_per_sec": accesses_per_sec,
        "slow_path_fraction": slow_path_fraction,
        "rss_kb": rss_kb(),
        "pid": os.getpid(),
        "ts_unix": time.time(),
    }


class WorkerProgress:
    """Worker-side heartbeat emitter (lives in the child process).

    Wraps the parent's queue; :meth:`emit` never raises — once the
    queue breaks (parent gone, manager shut down) emission turns
    itself off so the simulation finishes regardless.
    """

    def __init__(self, channel, unit: str):
        """Bind to the parent's ``channel`` for work unit ``unit``."""
        self._channel = channel
        self.unit = unit

    def emit(self, phase: str, **fields) -> None:
        """Send one heartbeat (best-effort; see class docstring)."""
        if self._channel is None:
            return
        try:
            self._channel.put(make_heartbeat(self.unit, phase, **fields))
        except Exception:
            self._channel = None


def _format_rate(value: float) -> str:
    """Compact accesses/second rendering (``450k/s``, ``1.2M/s``)."""
    if value >= 1e6:
        return f"{value / 1e6:.1f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.0f}k/s"
    return f"{value:.0f}/s"


class LiveProgressSink:
    """Parent-side heartbeat consumer: status line + event retention.

    Args:
        stream: where the in-place status line goes (``None`` disables
            rendering; the CLI passes ``sys.stderr``).
        render: force rendering on/off; default renders only when
            ``stream`` is a TTY, so piped output stays clean.
        width: maximum status-line width before truncation.
    """

    def __init__(self, stream=None, render: Optional[bool] = None, width: int = 110):
        """See class docstring for the arguments."""
        self.stream = stream
        if render is None:
            render = stream is not None and getattr(stream, "isatty", lambda: False)()
        self.render = render
        self.width = width
        self.heartbeats: List[dict] = []
        self.units: Dict[str, dict] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._wrote_line = False

    # ------------------------------------------------------------- consume

    def handle(self, beat: dict) -> None:
        """Record one heartbeat and refresh the status line."""
        with self._lock:
            self.heartbeats.append(beat)
            unit = beat.get("unit") or "?"
            self.units[unit] = beat
        if self.render:
            self._render_line()

    def start(self, channel) -> None:
        """Drain ``channel`` on a daemon thread until :meth:`stop`."""
        self._stop.clear()

        def _drain() -> None:
            """Pull heartbeats until stopped and the queue is empty."""
            while True:
                try:
                    beat = channel.get(timeout=0.1)
                except (queue_mod.Empty, OSError, EOFError):
                    if self._stop.is_set():
                        return
                    continue
                except Exception:
                    return  # manager torn down under us
                if beat is None:
                    return
                self.handle(beat)

        self._thread = threading.Thread(
            target=_drain, name="repro-progress", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop draining, join the thread, finish the status line."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.render and self._wrote_line:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote_line = False

    # -------------------------------------------------------------- render

    def status_line(self) -> str:
        """One-line summary of every unit's latest heartbeat."""
        with self._lock:
            parts = []
            for unit in sorted(self.units):
                beat = self.units[unit]
                phase = beat.get("phase", "?")
                if phase == "done":
                    parts.append(f"{unit}: done")
                    continue
                bit = f"{unit}: {beat.get('done', 0)}/{beat.get('total', 0)}"
                rate = beat.get("accesses_per_sec") or 0.0
                if rate:
                    bit += f" @{_format_rate(rate)}"
                slow = beat.get("slow_path_fraction")
                if slow is not None:
                    bit += f" slow={100.0 * slow:.0f}%"
                rss = beat.get("rss_kb") or 0
                if rss:
                    bit += f" rss={rss // 1024}MB"
                parts.append(bit)
        line = f"[{len(self.units)} workers] " + " | ".join(parts)
        if len(line) > self.width:
            line = line[: self.width - 1] + "…"
        return line

    def _render_line(self) -> None:
        """Write the status line in place (carriage return, no newline)."""
        line = self.status_line()
        self.stream.write("\r" + line.ljust(self.width))
        self.stream.flush()
        self._wrote_line = True

    # --------------------------------------------------------------- state

    def events_for_store(self) -> List[dict]:
        """Heartbeats shaped for :meth:`repro.obs.store.RunStore.add_events`."""
        with self._lock:
            return [dict(beat) for beat in self.heartbeats]

    def summary(self) -> dict:
        """Counts for the end-of-run report: units seen, beats, stalls."""
        with self._lock:
            per_unit = {
                unit: beat.get("phase") for unit, beat in self.units.items()
            }
            return {
                "heartbeats": len(self.heartbeats),
                "units": len(self.units),
                "unfinished": sorted(
                    unit for unit, phase in per_unit.items() if phase != "done"
                ),
            }
