"""The ``repro history`` CLI family over the run-history store.

Subcommands (all read the sqlite store described in
:mod:`repro.obs.store`; path from ``--store``, ``REPRO_STORE``, or the
default ``results/json/history.db``):

* ``history list`` — newest-first invocation rows (git SHA, config
  hash, experiments, wall/CPU seconds, result counts);
* ``history show REF`` — one run in full: provenance, per-result
  metrics, recorded events;
* ``history top`` — best results across *all* history by one metric
  (``--metric accesses_per_sec`` answers "did this PR actually make
  the simulator faster?");
* ``history export REF`` — reconstruct a BENCH-shaped JSON summary
  (what ``compare`` consumes) to stdout or ``--out``;
* ``history gc --keep N`` — prune old runs (cascades to results,
  metrics, events, engine stats);
* ``history query 'SELECT …'`` — raw SQL passthrough, rendered as an
  aligned table (``--csv`` for scripts). See the cookbook in
  ``docs/observability.md``.

Run references: ``last``, ``last-N``, a numeric id, or any of those
with a ``store:`` prefix (the form ``repro compare`` shares).
"""

from __future__ import annotations

import argparse
import json
import time
from typing import List, Optional

from repro.obs.store import RunStore, default_store_path


def _fmt_when(ts: Optional[float]) -> str:
    """Compact local timestamp for table cells."""
    if not ts:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def _short(value: Optional[str], width: int = 10) -> str:
    """Truncate a hash-ish string for display."""
    if not value:
        return "-"
    return value[:width]


def _open_store(path: Optional[str]) -> RunStore:
    """Open the store at ``path`` or the resolved default."""
    return RunStore(path or default_store_path())


def _cmd_list(store: RunStore, args) -> int:
    """``history list``: newest-first run rows."""
    from repro.harness.reporting import Table

    rows = store.list_runs(limit=args.limit)
    table = Table(
        f"Run history ({store.path})",
        ["id", "started", "git", "cfg", "experiments", "engine",
         "wall s", "cpu s", "results"],
        precision=1,
    )
    for row in rows:
        experiments = ",".join((row.get("experiments") or {}).keys()) or "-"
        table.add_row(
            row["id"],
            _fmt_when(row.get("started_unix")),
            _short(row.get("git_sha")),
            _short(row.get("config_hash")),
            experiments[:28],
            row.get("engine") or "batched",
            row.get("wall_s"),
            row.get("cpu_s"),
            row.get("results"),
        )
    if not rows:
        table.add_note("no runs recorded yet")
    print(table.render())
    return 0


def _cmd_show(store: RunStore, args) -> int:
    """``history show REF``: one run's provenance, results and events."""
    from repro.harness.reporting import Table

    run_id = store.resolve_ref(args.ref)
    run = store.run_row(run_id)
    print(f"run {run_id} @ {_fmt_when(run.get('started_unix'))}")
    for key in ("git_sha", "config_hash", "engine", "seed", "scale",
                "jobs", "wall_s", "cpu_s"):
        value = run.get(key)
        if value is not None:
            print(f"  {key}: {value}")
    workloads = run.get("workloads")
    if workloads:
        print(f"  workloads: {', '.join(workloads)}")
    experiments = run.get("experiments") or {}
    if experiments:
        shown = ", ".join(
            f"{name} ({entry.get('wall_s', 0) or 0:.1f}s)"
            if isinstance(entry, dict) else name
            for name, entry in experiments.items()
        )
        print(f"  experiments: {shown}")
    results = store.results_for(run_id)
    if results:
        table = Table(
            "Results",
            ["workload", "config", "sim s", "acc/s", "LLC miss %",
             "error", "slow %"],
            precision=2,
        )
        for row in results:
            slow = row.get("slow_path_fraction")
            table.add_row(
                row.get("workload"),
                row.get("config"),
                row.get("sim_wall_s"),
                row.get("accesses_per_sec"),
                100.0 * (row.get("llc_miss_rate") or 0.0),
                row.get("error"),
                None if slow is None else 100.0 * slow,
            )
        print()
        print(table.render())
    events = store.events_for(run_id)
    if events:
        counts: dict = {}
        for ev in events:
            counts[ev["kind"]] = counts.get(ev["kind"], 0) + 1
        print()
        print(
            "events: "
            + ", ".join(f"{kind} x{n}" for kind, n in sorted(counts.items()))
        )
        if args.events:
            for ev in events:
                print(f"  {json.dumps(ev, default=str)}")
    return 0


def _cmd_top(store: RunStore, args) -> int:
    """``history top``: best results across history by one metric."""
    from repro.harness.reporting import Table

    rows = store.top(
        args.metric,
        workload=args.workload,
        config=args.config,
        limit=args.limit,
        best="min" if args.min else "max",
    )
    table = Table(
        f"Top {args.metric} ({'min' if args.min else 'max'} first)",
        ["run", "workload", "config", args.metric],
        precision=3,
    )
    for row in rows:
        table.add_row(
            row["run_id"], row["workload"], row["config"], row["value"]
        )
    if not rows:
        table.add_note("no matching results")
    print(table.render())
    return 0


def _cmd_export(store: RunStore, args) -> int:
    """``history export REF``: BENCH-shaped JSON to stdout or --out."""
    summary = store.export_run(store.resolve_ref(args.ref))
    if args.out:
        from repro.obs.output import write_json

        write_json(args.out, summary)
        print(f"exported run {summary['store']['run_id']} to {args.out}")
    else:
        print(json.dumps(summary, indent=2, default=str))
    return 0


def _cmd_gc(store: RunStore, args) -> int:
    """``history gc``: prune all but the newest ``--keep`` runs."""
    dropped = store.gc(args.keep)
    print(f"dropped {dropped} run(s); {len(store.run_ids())} kept")
    return 0


def _cmd_query(store: RunStore, args) -> int:
    """``history query``: raw SQL passthrough, aligned or CSV."""
    headers, rows = store.query(args.sql)
    if args.csv:
        import csv
        import sys

        # The csv default terminator is \r\n, which trips shell
        # comparisons on the captured output ("2\r" is not an integer).
        writer = csv.writer(sys.stdout, lineterminator="\n")
        if args.header:
            writer.writerow(headers)
        writer.writerows(rows)
        return 0
    from repro.harness.reporting import Table

    table = Table("query", headers or ["(no columns)"], precision=4)
    for row in rows:
        table.add_row(*row)
    if not rows:
        table.add_note("no rows")
    print(table.render())
    return 0


def build_history_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``history`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro history",
        description="Inspect the sqlite run-history store "
        "(docs/observability.md).",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="history database (default: REPRO_STORE or "
        "results/json/history.db)",
    )
    sub = parser.add_subparsers(dest="action")
    p_list = sub.add_parser("list", help="newest-first recorded runs")
    p_list.add_argument(
        "--limit", type=int, default=20, help="rows to show (default 20)"
    )
    p_show = sub.add_parser("show", help="one run in full")
    p_show.add_argument("ref", help="run ref: last, last-N or an id")
    p_show.add_argument(
        "--events", action="store_true",
        help="also dump the run's recorded events as JSON lines",
    )
    p_top = sub.add_parser(
        "top", help="best results across history by one metric"
    )
    p_top.add_argument(
        "--metric", default="accesses_per_sec",
        help="results column to rank by (default accesses_per_sec)",
    )
    p_top.add_argument("--workload", default=None, help="filter by workload")
    p_top.add_argument("--config", default=None, help="filter by config label")
    p_top.add_argument(
        "--limit", type=int, default=10, help="rows to show (default 10)"
    )
    p_top.add_argument(
        "--min", action="store_true",
        help="rank ascending (lower is better, e.g. error)",
    )
    p_export = sub.add_parser(
        "export", help="reconstruct a BENCH-shaped JSON summary"
    )
    p_export.add_argument("ref", help="run ref: last, last-N or an id")
    p_export.add_argument(
        "--out", default=None, help="write here instead of stdout"
    )
    p_gc = sub.add_parser("gc", help="prune old runs")
    p_gc.add_argument(
        "--keep", type=int, required=True, help="newest runs to keep"
    )
    p_query = sub.add_parser("query", help="raw SQL over the store")
    p_query.add_argument("sql", help="SELECT statement to run")
    p_query.add_argument(
        "--csv", action="store_true", help="CSV output for scripts"
    )
    p_query.add_argument(
        "--header", action="store_true", help="with --csv: emit a header row"
    )
    return parser


def main_history(argv: List[str]) -> int:
    """Entry point for ``repro history …`` (returns an exit code)."""
    parser = build_history_parser()
    args = parser.parse_args(argv)
    if args.action is None:
        parser.print_help()
        return 2
    handlers = {
        "list": _cmd_list,
        "show": _cmd_show,
        "top": _cmd_top,
        "export": _cmd_export,
        "gc": _cmd_gc,
        "query": _cmd_query,
    }
    with _open_store(args.store) as store:
        return handlers[args.action](store, args)
