"""Pluggable simulation engines for :meth:`repro.hierarchy.system.System.run`.

Two engines share one per-access slow path (:mod:`repro.engine.step`):

* ``reference`` — the straightforward interpreter: every trace record
  walks the full coherence + hierarchy slow path, one at a time.
* ``batched`` — the production engine: trace columns are converted and
  pre-masked in bulk, and nearly every access class retires on an
  inline fast path — private hits, LLC hits, DRAM fills with eviction
  and back-invalidation, adapter-protocol fills, store coherence —
  with per-class tallies published as ``system.engine_stats`` (see
  ``docs/engine.md``); only a handful of entangled cases fall through
  to the shared slow path. Produces *bit-identical* results (stats,
  cycle counts, stall breakdowns) — enforced by
  ``tests/test_engine_equivalence.py`` — and transparently falls back
  to ``reference`` for configurations whose arithmetic or replacement
  policy cannot be batched exactly (non-power-of-two issue width,
  ``random`` replacement).

Select an engine per call (``System.run(trace, engine="reference")``),
per process (``REPRO_ENGINE=reference``), or via the public API
(``repro.simulate(..., engine="reference")``).
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

from repro.engine import batched, reference

DEFAULT_ENGINE = "batched"

#: name -> run(system, trace, limit) callable
ENGINES = {
    "batched": batched.run,
    "reference": reference.run,
}


def engine_names() -> list:
    """Registered engine names, default first."""
    names = sorted(ENGINES)
    names.remove(DEFAULT_ENGINE)
    return [DEFAULT_ENGINE] + names


def get_engine(name: Optional[str] = None) -> Tuple[str, Callable]:
    """Resolve an engine by name.

    ``None`` falls back to the ``REPRO_ENGINE`` environment variable,
    then to :data:`DEFAULT_ENGINE`.
    """
    resolved = name or os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    try:
        return resolved, ENGINES[resolved]
    except KeyError:
        raise ValueError(
            f"unknown engine {resolved!r}; choose from {engine_names()}"
        ) from None
