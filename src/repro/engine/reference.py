"""The reference engine: one slow-path step per trace record.

This is the semantics oracle — the batched engine must match it
bit-for-bit (``tests/test_engine_equivalence.py``). It still benefits
from the trace-level precomputation (list columns, map seeding) because
those are behavior-preserving.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.precompute import trace_columns
from repro.engine.step import finalize, make_state, prepare, process_access


def run(system, trace, limit: Optional[int] = None):
    """Simulate ``trace`` (optionally only its first ``limit`` records)."""
    st = make_state(system)
    prepare(system, trace)
    cols = trace_columns(trace, system.config.block_size)

    cores = cols.cores
    baddrs = cols.baddrs
    writes = cols.writes
    approxes = cols.approx
    region_ids = cols.region_ids
    value_ids = cols.value_ids
    gaps = cols.gaps
    n = len(baddrs) if limit is None else min(limit, len(baddrs))

    step = process_access
    for i in range(n):
        step(
            system, st, cores[i], baddrs[i], writes[i], approxes[i],
            region_ids[i], value_ids[i], gaps[i],
        )
    system.engine_stats = {
        "engine": "reference",
        "accesses": n,
        "fast": {},
        "slow": {"interpreted": n},
        "slow_fraction": 1.0 if n else 0.0,
    }
    return finalize(system, st)
