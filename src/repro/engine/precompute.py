"""Trace-level precomputation shared by the simulation engines.

Two kinds of work are hoisted out of the per-access loop:

* **Column conversion** — the trace's numpy columns are converted to
  plain Python lists (scalar indexing into numpy arrays allocates a
  numpy scalar per touch and dominated the seed profile) and block
  addresses are pre-masked once for the whole trace.
* **Map seeding** — every (region, value-id) pair the run can possibly
  feed to the Doppelgänger map-generation path is enumerated from the
  trace (initial memory image + write records) and its avg/range map is
  computed once, in one :meth:`~repro.core.maps.MapGenerator.compute_batch`
  call per region, instead of per cold miss. Seeding only pre-fills the
  cache's memo — ``map_generations`` (the energy-model counter) still
  counts every hardware computation, so stats are unchanged.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

import numpy as np


class TraceColumns(NamedTuple):
    """Per-run plain-Python views of a trace, block-aligned."""

    cores: List[int]
    baddrs: List[int]  # byte addresses with offset bits stripped
    writes: List[bool]
    approx: List[bool]
    region_ids: List[int]
    value_ids: List[int]
    gaps: List[int]
    baddr_np: np.ndarray  # int64 block-aligned byte addresses


def trace_columns(trace, block_size: int) -> TraceColumns:
    """Convert a trace's columns for fast per-access iteration."""
    baddr_np = trace.addrs & np.int64(~(block_size - 1))
    return TraceColumns(
        cores=trace.cores.tolist(),
        baddrs=baddr_np.tolist(),
        writes=trace.is_write.tolist(),
        approx=trace.approx.tolist(),
        region_ids=trace.region_ids.tolist(),
        value_ids=trace.value_ids.tolist(),
        gaps=trace.gaps.tolist(),
        baddr_np=baddr_np,
    )


def map_seed_pairs(trace) -> List[Tuple[int, int]]:
    """Reachable (region_id, value_id) map keys of a trace, sorted.

    A block's value id only ever comes from the initial memory image or
    from a write record, so the union of the two is a superset of every
    key the Doppelgänger map memo can be asked for. Cached on the trace
    (the set is identical for every config simulated over it).
    """
    cached = getattr(trace, "_map_seed_pairs", None)
    if cached is not None:
        return cached
    pairs = set()
    mask = trace.approx & (trace.value_ids >= 0)
    if mask.any():
        pairs.update(
            zip(trace.region_ids[mask].tolist(), trace.value_ids[mask].tolist())
        )
    regions = trace.regions
    for addr, vid in trace.initial_image.items():
        rid = regions.find_id(addr)
        if rid >= 0 and regions[rid].approx:
            pairs.add((rid, vid))
    result = sorted(pairs)
    trace._map_seed_pairs = result
    return result


def quantize_region_values(trace) -> dict:
    """Clamped ``(avg, range)`` hash per reachable map key, cached.

    The hash step of map generation (Sec. 3.7) — clamp to the region's
    declared ``[vmin, vmax]``, then average and max-minus-min — depends
    only on the region annotations, never on the map-space config. So
    it is quantized once per trace and cached; every config simulated
    over the trace (baseline vs dopp vs uni, any map-bit ablation)
    rebins the same stats via
    :meth:`~repro.core.maps.MapGenerator.compute_from_stats` instead
    of redoing the numpy reductions per cold-miss seed. Keys are the
    ``(region_id, value_id)`` pairs of :func:`map_seed_pairs`.
    """
    cached = getattr(trace, "_region_value_stats", None)
    if cached is not None:
        return cached
    stats: dict = {}
    by_region: dict = {}
    for rid, vid in map_seed_pairs(trace):
        by_region.setdefault(rid, []).append(vid)
    values = trace.values
    for rid, vids in by_region.items():
        region = trace.regions[rid]
        vmin, vmax = float(region.vmin), float(region.vmax)
        # Rows of one region share a length, but group defensively.
        by_len: dict = {}
        for vid in vids:
            by_len.setdefault(len(values[vid]), []).append(vid)
        for same_len in by_len.values():
            blocks = np.stack(
                [np.asarray(values[v], dtype=np.float64) for v in same_len]
            )
            clamped = np.clip(np.nan_to_num(blocks, nan=vmin), vmin, vmax)
            avgs = clamped.mean(axis=1)
            rngs = clamped.max(axis=1) - clamped.min(axis=1)
            for i, vid in enumerate(same_len):
                stats[(rid, vid)] = (avgs[i], rngs[i])
    trace._region_value_stats = stats
    return stats
