"""The per-access slow path, shared by every engine.

:func:`process_access` is the reference semantics of one trace record —
the loop body that used to live inline in ``System.run``. The reference
engine calls it for every access; the batched engine calls it for every
access its fast path cannot prove safe (writes, private-cache misses,
anything that can touch coherence, the LLC, or memory timing). Keeping
a single copy is what makes the two engines identical by construction
on the slow path; the equivalence suite then only has to pin down the
fast path.

:func:`make_state` / :func:`prepare` / :func:`finalize` factor the
run() preamble and postamble so both engines share those too.
"""

from __future__ import annotations

from typing import Optional


class RunState:
    """Mutable per-run timing state shared across the access stream."""

    __slots__ = (
        "cycles", "bd", "mem_ready", "width",
        "l1_lat", "l2_lat", "llc_lat",
        "mem_interval", "runahead", "mem_latency",
        "instructions", "faults", "approx_llc",
    )


def make_state(system) -> RunState:
    """Hoist the per-run constants and counters out of the loop."""
    cfg = system.config
    st = RunState()
    st.cycles = system.cycles
    st.bd = system.stall_breakdown
    st.mem_ready = [0.0] * cfg.num_cores  # last miss completion per core
    st.width = float(cfg.issue_width)
    st.l1_lat = cfg.l1_latency
    st.l2_lat = cfg.l2_latency
    st.llc_lat = cfg.llc_latency
    st.mem_interval = cfg.mem_overlap_interval
    st.runahead = cfg.runahead_window
    st.mem_latency = system.memory.latency
    st.instructions = 0
    st.faults = system.fault_injector
    # Silent (unprotected) faults only exist in the approximate
    # organizations: a baseline LLC stores approximate lines in its
    # ordinary ECC-protected array, so every fault there is detected.
    from repro.hierarchy.llc import BaselineLLC

    st.approx_llc = not isinstance(system.llc, BaselineLLC)
    return st


def prepare(system, trace) -> None:
    """Bind the trace's regions/values and seed the LLC's map memo."""
    system._regions = trace.regions
    system._values = trace.values
    system._cur_value = dict(trace.initial_image)
    seed = getattr(system.llc, "seed_map_memo", None)
    if seed is not None:
        from repro.engine.precompute import map_seed_pairs, quantize_region_values

        seed(
            map_seed_pairs(trace),
            trace.values,
            stats=quantize_region_values(trace),
        )


def process_access(
    system,
    st: RunState,
    core: int,
    addr: int,
    is_write: bool,
    approx: bool,
    region_id: int,
    value_id: int,
    gap: int,
) -> None:
    """Simulate one access with full coherence/hierarchy semantics.

    ``addr`` must already be block-aligned.
    """
    cycles = st.cycles
    bd = st.bd
    width = st.width
    l1_lat = st.l1_lat

    st.instructions += gap + 1
    now = cycles[core] + gap / width
    bd["compute"] += gap / width
    latency = float(l1_lat)
    bd["l1"] += l1_lat

    if is_write and value_id >= 0:
        system._cur_value[addr] = value_id
    if is_write:
        coherence_cost = system._handle_store_coherence(core, addr)
        latency += coherence_cost
        bd["coherence"] += coherence_cost
    else:
        sharers = system._sharers
        sharers[addr] = sharers.get(addr, 0) | (1 << core)

    res1 = system.l1s[core].access(addr, is_write, value_id)
    if not res1.hit:
        if res1.evicted_block is not None and res1.writeback:
            wb_cost = system._install_l1_victim(
                core, res1.evicted_addr, res1.evicted_block.value_id, now
            )
            latency += wb_cost
            bd["writeback"] += wb_cost
        l2 = system.l2s[core]
        res2 = l2.access(addr, is_write, value_id)
        if not res2.hit:
            l2_lat = st.l2_lat
            if not is_write:
                latency += l2_lat
                bd["l2"] += l2_lat
            if res2.evicted_block is not None and res2.writeback:
                wb_cost = system._l2_writeback(
                    core, res2.evicted_addr, res2.evicted_block.value_id, now
                )
                latency += wb_cost
                bd["writeback"] += wb_cost
            llc_reply = system.llc.read(addr, core, approx, region_id)
            if not is_write:
                latency += st.llc_lat
                bd["llc"] += st.llc_lat
            fi = st.faults
            if fi is not None and llc_reply.hit and not is_write:
                # Resilience layer: a demand read returned data from a
                # possibly-faulty structure. Precise structures are
                # ECC-protected — a detected fault refetches the line
                # from DRAM (full latency + traffic, never wrong);
                # the approximate data array is unprotected — a fault
                # is silent here (counted; its value corruption is
                # modelled in the functional error path).
                if approx and st.approx_llc:
                    if fi.silent("approx_data") and system.tracer is not None:
                        system.tracer.emit(
                            "fault_injected",
                            site="approx_data", addr=addr, detected=False,
                        )
                elif fi.detected("llc"):
                    system.memory.read(addr)
                    latency += st.mem_latency
                    bd["memory"] += st.mem_latency
                    if system.tracer is not None:
                        system.tracer.emit(
                            "fault_injected",
                            site="llc", addr=addr, detected=True,
                        )
            if not llc_reply.hit:
                if not is_write:
                    # Overlap-aware miss penalty: an isolated miss pays
                    # the full DRAM latency, but when the core reaches
                    # its next miss within the runahead window of the
                    # previous one resolving, the OoO engine had
                    # already issued it and the burst completes every
                    # mem_interval cycles (MLP).
                    arrival = now + latency
                    if arrival - st.mem_ready[core] < st.runahead:
                        completion = (
                            max(st.mem_ready[core], arrival) + st.mem_interval
                        )
                    else:
                        completion = arrival + st.mem_latency
                    st.mem_ready[core] = completion
                    bd["memory"] += completion - now - latency
                    latency = completion - now
                system.memory.read(addr)
                if fi is not None:
                    # A DRAM transfer can fault too: precise lines are
                    # ECC-checked and retried (extra traffic +
                    # latency); approximate fills arrive silently
                    # corrupted (functional path models the values).
                    if approx and st.approx_llc:
                        if fi.silent("dram") and system.tracer is not None:
                            system.tracer.emit(
                                "fault_injected",
                                site="dram", addr=addr, detected=False,
                            )
                    elif fi.detected("dram"):
                        system.memory.read(addr)
                        if not is_write:
                            latency += st.mem_latency
                            bd["memory"] += st.mem_latency
                        if system.tracer is not None:
                            system.tracer.emit(
                                "fault_injected",
                                site="dram", addr=addr, detected=True,
                            )
                values = None
                fill_vid = system._cur_value.get(addr, -1)
                if approx:
                    values, fill_vid = system._block_values(addr)
                    if values is None:
                        raise KeyError(
                            f"approximate block {addr:#x} has no tracked "
                            "values; register the region data in the trace"
                        )
                fill_reply = system.llc.fill(
                    addr, core, approx, region_id,
                    value_id=fill_vid, values=values, dirty=False,
                )
                wb_cost = system._apply_reply(fill_reply, now, addr)
                latency += wb_cost
                bd["writeback"] += wb_cost
        elif not is_write:
            l2_lat = st.l2_lat
            latency += l2_lat
            bd["l2"] += l2_lat

    if is_write:
        cycles[core] = now + l1_lat
    else:
        cycles[core] = now + latency


def finalize(system, st: RunState):
    """Assemble the :class:`~repro.hierarchy.system.SystemResult`."""
    from repro.cache.stats import CacheStats
    from repro.hierarchy.system import SystemResult

    per_core = [int(c) for c in st.cycles]
    l1_stats = CacheStats()
    for l1 in system.l1s:
        l1_stats = l1_stats.merge(l1.stats)
    l2_stats = CacheStats()
    for l2 in system.l2s:
        l2_stats = l2_stats.merge(l2.stats)

    return SystemResult(
        cycles=max(per_core) if per_core else 0,
        per_core_cycles=per_core,
        instructions=st.instructions,
        llc_misses=system.llc.miss_count(),
        llc_accesses=system._llc_accesses(),
        dram_reads=system.memory.reads,
        dram_writes=system.memory.writes,
        traffic_bytes=system.memory.traffic_bytes,
        coherence_invalidations=system.coherence_invalidations,
        back_invalidations=system.back_invalidations,
        wb_stall_cycles=system.wb_buffer.stall_cycles,
        l1_stats=l1_stats,
        l2_stats=l2_stats,
        stall_breakdown=dict(system.stall_breakdown),
    )
