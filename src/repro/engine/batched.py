"""The batched engine: bulk trace precomputation + inline fast paths.

The trace's columns are converted and block-aligned in one numpy pass
(:mod:`repro.engine.precompute`), every reachable Doppelgänger map is
computed in bulk before the scan, and the scan itself retires accesses
on inline fast paths:

* a read that hits the issuing core's L1 is retired with a replacement
  touch, a sharer-bit OR and a timing update — no cache-model calls;
* a read that misses the L1 but hits the core's L2 replays the L1 fill
  (including a dirty victim written — or write-filled — into the L2,
  cascading a dirty L2 victim into the LLC writeback path) and the L2
  read touch inline;
* a store with remote sharer bits set first replays the directory
  consult inline — the remote private copies are popped and the sharer
  vector collapses to the writer, exactly as
  ``System._handle_store_coherence`` — and then retires through the
  ordinary store paths below (runs of writes to the same producer
  region batch into consecutive inline invalidations);
* a store that hits the L1, or misses the L1 but hits or misses the
  L2, replays the same fill logic with the store semantics (dirty/
  MODIFIED, value tracking, sharer reset) — a write always retires at
  ``now + l1_lat``. Store double-misses replay the LLC probe and, on a
  miss, the memory fetch and LLC fill as well;
* a read that misses both private levels replays the whole miss path
  inline: against a conventional baseline LLC the probe, fill, dirty-
  victim writeback (through the bounded writeback buffer) and
  back-invalidation purge are raw dict operations; against a
  Doppelgänger organization the engine speaks the same three-call
  adapter protocol the reference uses (``read`` / ``fill`` /
  ``_apply_reply``), so groups of approximate fills that share an MTag
  entry are resolved by the precomputed map memo in one pass and each
  evicted data block's tag linked list is walked once, inside the
  adapter, per eviction — not once per access;
* the few remaining cases — traced stores that must emit coherence
  events, approximate blocks with no tracked value, a victim fill that
  would evict the very block the demand is about to hit, and any
  access under fault injection that reaches a fault site — fall
  through to the shared slow path of :mod:`repro.engine.step`. The
  per-class tallies are published as ``system.engine_stats`` (see
  ``docs/engine.md``).

Eligibility is decided by probing the caches' live tag→way maps
directly. An earlier design pre-masked each chunk against a snapshot of
the per-core L2 resident sets (numpy ``isin``), but measurement showed
the snapshot goes stale within ~1K accesses on streaming workloads —
the scaled L2 holds only a few hundred blocks and turns over completely
many times per chunk, collapsing fast-path coverage to the L1 hits.
The live probes are exact at every instant and cost two dict lookups.

Fixed-shape statistics and exact dyadic timing terms (gap sums, hit
latencies) are accumulated in plain integers and flushed once at the
end, which is what makes the fast path cheap *and* bit-identical: with
a power-of-two issue width every timing term is a dyadic rational far
below 2^52, so regrouped float sums equal the reference's sequential
sums exactly. Configurations where that argument fails (non-power-of-
two issue width) or where victim selection is stateful (``random``
replacement, whose RNG advances per query) delegate to the reference
engine wholesale.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.block import BlockState, CacheBlock
from repro.engine import reference
from repro.hierarchy.llc import BaselineLLC
from repro.engine.precompute import trace_columns
from repro.engine.step import finalize, make_state, prepare, process_access

#: Replacement policies whose ``victim()`` is a pure query, so the fast
#: path may peek at the victim before deciding to commit or abort.
_PURE_VICTIM_POLICIES = ("lru", "fifo", "plru")

#: Test seam for the resilience layer: when set, called as
#: ``_FAIL_HOOK(system, trace)`` at the top of :func:`run` so the
#: harness's batched-to-reference fallback can be exercised with a
#: synthetic failure (see ``tests/test_resilience.py``). Always None
#: in production.
_FAIL_HOOK = None


def run(system, trace, limit: Optional[int] = None):
    """Simulate ``trace``, bit-identically to the reference engine."""
    if _FAIL_HOOK is not None:
        _FAIL_HOOK(system, trace)
    cfg = system.config
    width_i = cfg.issue_width
    if width_i & (width_i - 1) or cfg.policy not in _PURE_VICTIM_POLICIES:
        result = reference.run(system, trace, limit)
        es = getattr(system, "engine_stats", None)
        if es is not None:
            es["engine"] = "batched"
            es["delegated"] = True
        return result

    st = make_state(system)
    prepare(system, trace)
    cols = trace_columns(trace, cfg.block_size)

    cores_l = cols.cores
    baddrs = cols.baddrs
    writes_l = cols.writes
    approx_l = cols.approx
    rids_l = cols.region_ids
    vids_l = cols.value_ids
    gaps_l = cols.gaps
    n = len(baddrs) if limit is None else min(limit, len(baddrs))

    bshift = cfg.block_size.bit_length() - 1
    blocks_l = (cols.baddr_np >> bshift).tolist()

    num_cores = cfg.num_cores
    l1s, l2s = system.l1s, system.l2s
    l1_maps = [c._tag_to_way for c in l1s]
    l1_ways = [c._ways for c in l1s]
    l1_pols = [c._policies for c in l1s]
    l2_maps = [c._tag_to_way for c in l2s]
    l2_ways = [c._ways for c in l2s]
    l2_pols = [c._policies for c in l2s]
    l1stats = [c.stats for c in l1s]
    l2stats = [c.stats for c in l2s]

    l1_sets = l1s[0].num_sets
    l1_mask = l1_sets - 1
    l1_bits = l1_sets.bit_length() - 1
    l1_assoc = l1s[0].ways
    l2_sets = l2s[0].num_sets
    l2_mask = l2_sets - 1
    l2_bits = l2_sets.bit_length() - 1
    l2_assoc = l2s[0].ways

    # The raw (dict-op) LLC fast paths need a conventional single-array,
    # approx-oblivious LLC whose victim choice is a pure query. Any
    # other organization — or a traced run, whose writeback and
    # back-invalidation events the raw ops would not emit — goes
    # through the adapter-call ("semi") path below, which speaks the
    # exact three-call protocol of the reference. Fault injection
    # decides per LLC/DRAM read, so under it every double-miss must
    # reach the slow path's hooks — the private L1/L2 fast paths never
    # touch a fault site and stay eligible.
    faults_none = st.faults is None
    llc_plain = (isinstance(system.llc, BaselineLLC) and faults_none
                 and system.tracer is None)
    if llc_plain:
        lcache = system.llc.cache
        llc_plain = (lcache.policy_name in _PURE_VICTIM_POLICIES
                     and lcache.block_size == cfg.block_size)
    if llc_plain:
        llc_maps = lcache._tag_to_way
        llc_ways_arr = lcache._ways
        llc_pols = lcache._policies
        llc_assoc = lcache.ways
        llc_nsets = lcache.num_sets
        llc_mask = llc_nsets - 1
        llc_sbits = llc_nsets.bit_length() - 1
        llc_stats = lcache.stats

    cycles = st.cycles
    sharers = system._sharers
    cur_value = system._cur_value
    width = st.width
    l1_lat = st.l1_lat
    l2_lat = st.l2_lat
    l1f = float(l1_lat)
    lat12f = float(l1_lat) + l2_lat  # matches the reference's += order
    lat123f = float(l1_lat) + l2_lat + st.llc_lat
    core_bit = [1 << c for c in range(num_cores)]

    tracer = system.tracer
    l2wb = system._l2_writeback
    llc_read = system.llc.read
    llc_fill = system.llc.fill
    apply_reply = system._apply_reply
    block_values = system._block_values
    wb_enqueue = system.wb_buffer.enqueue
    mem_read = system.memory.read
    mem_write = system.memory.write

    # LRU is the paper's policy everywhere; its touch/fill/victim are
    # two dict ops, worth inlining past the method dispatch.
    is_lru = cfg.policy == "lru"
    llc_lru = llc_plain and lcache.policy_name == "lru"
    shared = BlockState.SHARED
    modified = BlockState.MODIFIED
    new_block = CacheBlock
    step = process_access

    # Fixed-shape bulk counters, flushed once after the scan. The _w
    # variants count the store fast paths.
    n_l1hit = [0] * num_cores  # fast L1 read hits
    n_fill_free = [0] * num_cores  # fast L2 hits, L1 fill into a free way
    n_fill_clean = [0] * num_cores  # ... evicting a clean L1 victim
    n_fill_dirty = [0] * num_cores  # ... dirty L1 victim hitting the L2
    n_casc = [0] * num_cores  # ... dirty L1 victim write-filling the L2
    n_l1whit = [0] * num_cores
    n_wfill_free = [0] * num_cores
    n_wfill_clean = [0] * num_cores
    n_wfill_dirty = [0] * num_cores
    n_wcasc = [0] * num_cores  # store L2 hits whose victim fills the L2
    n_wmiss = [0] * num_cores  # store double-misses retired inline
    n_llchit = [0] * num_cores  # fast LLC read hits (L1+L2 read misses)
    n_mem = [0] * num_cores  # fast LLC read misses served by memory
    n_semi_hit = [0] * num_cores  # adapter-path LLC read hits
    n_semi_mem = [0] * num_cores  # adapter-path LLC read misses
    n_le1_clean = [0] * num_cores  # ... evicting a clean L1 victim
    n_le1_dirty = [0] * num_cores  # ... dirty L1 victim hitting the L2
    n_le2 = [0] * num_cores  # ... evicting an L2 victim
    n_pinv_l1 = [0] * num_cores  # back-invalidation purges, per holder
    n_pinv_l2 = [0] * num_cores
    n_llc_evict = 0  # LLC evictions on the read path (each back-invalidates)
    n_coh_dir = 0  # inline store-coherence directory consults
    n_coh_inv = 0  # inline remote-sharer invalidations
    mem_wr = 0  # memory writes from purged dirty private copies
    mem_bd = 0.0  # exact dyadic sum of per-miss memory-stall terms
    wb_bd = 0.0  # exact sum of inline writeback-buffer stalls
    mem_ready_l = st.mem_ready
    runahead = st.runahead
    mem_interval = st.mem_interval
    mem_latency = st.mem_latency
    comp_gaps = 0  # gap sum over fast-path accesses
    insns = 0  # instruction count over fast-path accesses
    # Slow-path (fall-through) tallies, by reason.
    n_slow_coh = 0  # traced stores with remote sharers
    n_slow_untracked = 0  # approximate fills with no tracked value
    n_slow_entangled = 0  # victim fill would evict the demand block
    n_slow_faults = 0  # double-misses under fault injection

    def purge(ebn, ea):
        """Pop every private copy of an evicted LLC block (back-inval).

        Returns the number of dirty copies, each of which the reference
        writes to memory (flushed in bulk via ``mem_wr``).
        """
        vec = sharers.get(ea, 0)
        dirty_wb = 0
        c2 = 0
        while vec:
            if vec & 1:
                se = ebn & l1_mask
                wA = l1_maps[c2][se].pop(ebn >> l1_bits, None)
                if wA is not None:
                    if l1_ways[c2][se].pop(wA).dirty:
                        dirty_wb += 1
                    n_pinv_l1[c2] += 1
                se = ebn & l2_mask
                wB = l2_maps[c2][se].pop(ebn >> l2_bits, None)
                if wB is not None:
                    if l2_ways[c2][se].pop(wB).dirty:
                        dirty_wb += 1
                    n_pinv_l2[c2] += 1
            vec >>= 1
            c2 += 1
        sharers.pop(ea, None)
        return dirty_wb

    for p in range(n):
        c = cores_l[p]
        b = blocks_l[p]
        s1 = b & l1_mask
        m1 = l1_maps[c][s1]
        t1 = b >> l1_bits
        w1 = m1.get(t1)
        if writes_l[p]:
            a = baddrs[p]
            if sharers.get(a, 0) & ~core_bit[c]:
                # Remote sharers: replay the directory consult inline —
                # pop every remote private copy and collapse the sharer
                # vector to the writer. The slow path also emits the
                # coherence event, so traced runs keep using it.
                if tracer is not None:
                    n_slow_coh += 1
                    step(system, st, c, a, True, approx_l[p], rids_l[p],
                         vids_l[p], gaps_l[p])
                    continue
                rem = sharers[a] & ~core_bit[c]
                c2 = 0
                while rem:
                    if rem & 1:
                        se = b & l1_mask
                        wA = l1_maps[c2][se].pop(b >> l1_bits, None)
                        if wA is not None:
                            l1_ways[c2][se].pop(wA)
                            l1stats[c2].invalidations += 1
                        se = b & l2_mask
                        wB = l2_maps[c2][se].pop(b >> l2_bits, None)
                        if wB is not None:
                            l2_ways[c2][se].pop(wB)
                            l2stats[c2].invalidations += 1
                        n_coh_inv += 1
                    rem >>= 1
                    c2 += 1
                n_coh_dir += 1
                sharers[a] = core_bit[c]
            vid = vids_l[p]
            if w1 is not None:
                # Fast path: store hit in the L1, no remote copies.
                if vid >= 0:
                    cur_value[a] = vid
                sharers[a] = core_bit[c]
                blk = l1_ways[c][s1][w1]
                blk.dirty = True
                blk.state = modified
                if vid >= 0:
                    blk.value_id = vid
                if is_lru:
                    o = l1_pols[c][s1]._order
                    del o[w1]
                    o[w1] = None
                else:
                    l1_pols[c][s1].on_access(w1)
                g = gaps_l[p]
                comp_gaps += g
                insns += g + 1
                cycles[c] = cycles[c] + g / width + l1f
                n_l1whit[c] += 1
                continue
            cm2 = l2_maps[c]
            s2 = b & l2_mask
            t2 = b >> l2_bits
            w2 = cm2[s2].get(t2)
            # L1 victim peek (pure), shared by both store-miss shapes.
            ws1 = l1_ways[c][s1]
            vb = None
            if len(ws1) < l1_assoc:
                for way in range(l1_assoc):
                    if way not in ws1:
                        break
            else:
                way = (next(iter(l1_pols[c][s1]._order)) if is_lru
                       else l1_pols[c][s1].victim())
                vb = ws1[way]
            if w2 is not None:
                # Store missing the L1, hitting the L2. A dirty L1
                # victim either write-hits the L2 or write-fills it
                # (possibly cascading a dirty L2 victim to the LLC).
                wv = None
                vfill = False
                vb2v = None
                if vb is not None and vb.dirty:
                    vbn = (vb.tag << l1_bits) | s1
                    sv = vbn & l2_mask
                    tv = vbn >> l2_bits
                    wv = cm2[sv].get(tv)
                    if wv is None:
                        vfill = True
                        wsv = l2_ways[c][sv]
                        if len(wsv) < l2_assoc:
                            for wayv in range(l2_assoc):
                                if wayv not in wsv:
                                    break
                        else:
                            wayv = (next(iter(l2_pols[c][sv]._order))
                                    if is_lru else l2_pols[c][sv].victim())
                            if sv == s2 and wayv == w2:
                                # The victim fill would evict the very
                                # block the store is about to hit.
                                n_slow_entangled += 1
                                step(system, st, c, a, True, approx_l[p],
                                     rids_l[p], vids_l[p], gaps_l[p])
                                continue
                            vb2v = wsv[wayv]
                g = gaps_l[p]
                now = cycles[c] + g / width
                if vid >= 0:
                    cur_value[a] = vid
                sharers[a] = core_bit[c]
                if vb is not None:
                    del m1[vb.tag]
                ws1[way] = new_block(t1, state=modified, dirty=True,
                                     value_id=vid)
                m1[t1] = way
                if is_lru:
                    o = l1_pols[c][s1]._order
                    del o[way]
                    o[way] = None
                else:
                    l1_pols[c][s1].on_fill(way)
                wb = 0.0
                if vb is None:
                    n_wfill_free[c] += 1
                elif not vb.dirty:
                    n_wfill_clean[c] += 1
                elif not vfill:
                    n_wfill_dirty[c] += 1
                    b2 = l2_ways[c][sv][wv]
                    b2.dirty = True
                    b2.state = modified
                    if vb.value_id >= 0:
                        b2.value_id = vb.value_id
                    if is_lru:
                        o = l2_pols[c][sv]._order
                        del o[wv]
                        o[wv] = None
                    else:
                        l2_pols[c][sv].on_access(wv)
                else:
                    # Victim write-fill, with direct stats (the bulk
                    # flush only covers the fixed-shape classes).
                    n_wcasc[c] += 1
                    st1 = l1stats[c]
                    st2 = l2stats[c]
                    st1.evictions += 1
                    st1.writebacks += 1
                    st2.accesses += 1
                    st2.tag_lookups += 1
                    st2.write_accesses += 1
                    st2.misses += 1
                    st2.fills += 1
                    st2.data_writes += 1
                    if vb2v is not None:
                        del cm2[sv][vb2v.tag]
                        st2.evictions += 1
                        if vb2v.dirty:
                            st2.writebacks += 1
                    wsv[wayv] = new_block(tv, state=modified, dirty=True,
                                          value_id=vb.value_id)
                    cm2[sv][tv] = wayv
                    if is_lru:
                        o = l2_pols[c][sv]._order
                        del o[wayv]
                        o[wayv] = None
                    else:
                        l2_pols[c][sv].on_fill(wayv)
                    if vb2v is not None and vb2v.dirty:
                        wb += l2wb(c, ((vb2v.tag << l2_bits) | sv) << bshift,
                                   vb2v.value_id, now)
                # Demand L2 write hit.
                b2 = l2_ways[c][s2][w2]
                b2.dirty = True
                b2.state = modified
                if vid >= 0:
                    b2.value_id = vid
                if is_lru:
                    o = l2_pols[c][s2]._order
                    del o[w2]
                    o[w2] = None
                else:
                    l2_pols[c][s2].on_access(w2)
                comp_gaps += g
                insns += g + 1
                cycles[c] = now + l1f
                if wb:
                    wb_bd += wb
                continue
            # Store double-miss: replay the fills, the LLC probe and
            # (on an LLC miss) the memory fetch and LLC fill inline. A
            # store never adds latency past the L1, so the MLP state is
            # untouched; only writeback-buffer stalls accrue to bd.
            if not faults_none:
                n_slow_faults += 1
                step(system, st, c, a, True, approx_l[p], rids_l[p],
                     vids_l[p], gaps_l[p])
                continue
            ap = approx_l[p]
            if ap and vid < 0 and cur_value.get(a, -1) < 0:
                # An approximate fill with no tracked value raises in
                # the reference; keep that on the shared path.
                n_slow_untracked += 1
                step(system, st, c, a, True, ap, rids_l[p],
                     vids_l[p], gaps_l[p])
                continue
            g = gaps_l[p]
            now = cycles[c] + g / width
            if vid >= 0:
                cur_value[a] = vid
            sharers[a] = core_bit[c]
            st1 = l1stats[c]
            st2 = l2stats[c]
            wb = 0.0
            # L1 store fill.
            if vb is not None:
                del m1[vb.tag]
                st1.evictions += 1
                if vb.dirty:
                    st1.writebacks += 1
            ws1[way] = new_block(t1, state=modified, dirty=True, value_id=vid)
            m1[t1] = way
            if is_lru:
                o = l1_pols[c][s1]._order
                del o[way]
                o[way] = None
            else:
                l1_pols[c][s1].on_fill(way)
            st1.accesses += 1
            st1.tag_lookups += 1
            st1.write_accesses += 1
            st1.misses += 1
            st1.fills += 1
            st1.data_writes += 1
            if vb is not None and vb.dirty:
                # Install the dirty victim into the L2 (write).
                vbn = (vb.tag << l1_bits) | s1
                sv = vbn & l2_mask
                tv = vbn >> l2_bits
                wv = cm2[sv].get(tv)
                st2.accesses += 1
                st2.tag_lookups += 1
                st2.write_accesses += 1
                st2.data_writes += 1
                if wv is not None:
                    st2.hits += 1
                    bv = l2_ways[c][sv][wv]
                    bv.dirty = True
                    bv.state = modified
                    if vb.value_id >= 0:
                        bv.value_id = vb.value_id
                    if is_lru:
                        o = l2_pols[c][sv]._order
                        del o[wv]
                        o[wv] = None
                    else:
                        l2_pols[c][sv].on_access(wv)
                else:
                    st2.misses += 1
                    st2.fills += 1
                    wsv = l2_ways[c][sv]
                    vb2v = None
                    if len(wsv) < l2_assoc:
                        for wayv in range(l2_assoc):
                            if wayv not in wsv:
                                break
                    else:
                        wayv = (next(iter(l2_pols[c][sv]._order)) if is_lru
                                else l2_pols[c][sv].victim())
                        vb2v = wsv[wayv]
                        del cm2[sv][vb2v.tag]
                        st2.evictions += 1
                        if vb2v.dirty:
                            st2.writebacks += 1
                    wsv[wayv] = new_block(tv, state=modified, dirty=True,
                                          value_id=vb.value_id)
                    cm2[sv][tv] = wayv
                    if is_lru:
                        o = l2_pols[c][sv]._order
                        del o[wayv]
                        o[wayv] = None
                    else:
                        l2_pols[c][sv].on_fill(wayv)
                    if vb2v is not None and vb2v.dirty:
                        wb += l2wb(c, ((vb2v.tag << l2_bits) | sv) << bshift,
                                   vb2v.value_id, now)
            # Demand L2 store fill (set state may have just changed).
            ws2 = l2_ways[c][s2]
            vb2 = None
            if len(ws2) < l2_assoc:
                for way2 in range(l2_assoc):
                    if way2 not in ws2:
                        break
            else:
                way2 = (next(iter(l2_pols[c][s2]._order)) if is_lru
                        else l2_pols[c][s2].victim())
                vb2 = ws2[way2]
                del cm2[s2][vb2.tag]
                st2.evictions += 1
                if vb2.dirty:
                    st2.writebacks += 1
            ws2[way2] = new_block(t2, state=modified, dirty=True, value_id=vid)
            cm2[s2][t2] = way2
            if is_lru:
                o = l2_pols[c][s2]._order
                del o[way2]
                o[way2] = None
            else:
                l2_pols[c][s2].on_fill(way2)
            st2.accesses += 1
            st2.tag_lookups += 1
            st2.write_accesses += 1
            st2.misses += 1
            st2.fills += 1
            st2.data_writes += 1
            if vb2 is not None and vb2.dirty:
                wb += l2wb(c, ((vb2.tag << l2_bits) | s2) << bshift,
                           vb2.value_id, now)
            # The LLC sees the store as a demand read probe.
            rid = rids_l[p]
            if llc_plain:
                sl = b & llc_mask
                tl = b >> llc_sbits
                lls = llc_stats
                lls.accesses += 1
                lls.tag_lookups += 1
                lls.read_accesses += 1
                wl = llc_maps[sl].get(tl)
                if wl is not None:
                    lls.hits += 1
                    lls.data_reads += 1
                    if llc_lru:
                        o = llc_pols[sl]._order
                        del o[wl]
                        o[wl] = None
                    else:
                        llc_pols[sl].on_access(wl)
                else:
                    lls.misses += 1
                    mem_read(a)
                    fill_vid = cur_value.get(a, -1)
                    wsl = llc_ways_arr[sl]
                    vbl = None
                    if len(wsl) < llc_assoc:
                        for wayl in range(llc_assoc):
                            if wayl not in wsl:
                                break
                    else:
                        wayl = (next(iter(llc_pols[sl]._order)) if llc_lru
                                else llc_pols[sl].victim())
                        vbl = wsl[wayl]
                        ebn = (vbl.tag << llc_sbits) | sl
                        del llc_maps[sl][vbl.tag]
                        lls.evictions += 1
                        if vbl.dirty:
                            lls.writebacks += 1
                    wsl[wayl] = new_block(tl, state=shared, value_id=fill_vid)
                    llc_maps[sl][tl] = wayl
                    if llc_lru:
                        o = llc_pols[sl]._order
                        del o[wayl]
                        o[wayl] = None
                    else:
                        llc_pols[sl].on_fill(wayl)
                    lls.fills += 1
                    lls.data_reads += 1
                    if vbl is not None:
                        lls.back_invalidations += 1
                        ea = ebn << bshift
                        if vbl.dirty:
                            wb += wb_enqueue(ea, int(now))
                            mem_write(ea)
                        system.back_invalidations += 1
                        mem_wr += purge(ebn, ea)
            else:
                reply = llc_read(a, c, ap, rid)
                if not reply.hit:
                    mem_read(a)
                    values = None
                    fill_vid = cur_value.get(a, -1)
                    if ap:
                        values, fill_vid = block_values(a)
                    fr = llc_fill(a, c, ap, rid, value_id=fill_vid,
                                  values=values, dirty=False)
                    wb += apply_reply(fr, now, a)
            comp_gaps += g
            insns += g + 1
            cycles[c] = now + l1f
            n_wmiss[c] += 1
            if wb:
                wb_bd += wb
            continue
        if w1 is not None:
            # Fast path: L1 read hit.
            if is_lru:
                o = l1_pols[c][s1]._order
                del o[w1]
                o[w1] = None
            else:
                l1_pols[c][s1].on_access(w1)
            a = baddrs[p]
            sharers[a] = sharers.get(a, 0) | core_bit[c]
            g = gaps_l[p]
            comp_gaps += g
            insns += g + 1
            cycles[c] = cycles[c] + g / width + l1f
            n_l1hit[c] += 1
            continue
        cm2 = l2_maps[c]
        s2 = b & l2_mask
        t2 = b >> l2_bits
        w2 = cm2[s2].get(t2)
        if w2 is None:
            # The read misses both private levels. Replay the whole
            # miss path inline: raw dict ops against a conventional
            # LLC, the adapter protocol against any other organization.
            # The only pre-mutation aborts are the reference's raise
            # (untracked approximate value) and fault injection.
            a = baddrs[p]
            ap = approx_l[p]
            if llc_plain:
                sl = b & llc_mask
                tl = b >> llc_sbits
                wl = llc_maps[sl].get(tl)
                fill_vid = -1
                if wl is None:
                    fill_vid = cur_value.get(a, -1)
                    if ap and fill_vid < 0:
                        n_slow_untracked += 1
                        step(system, st, c, a, False, True, rids_l[p],
                             vids_l[p], gaps_l[p])
                        continue
            elif faults_none:
                if ap and cur_value.get(a, -1) < 0:
                    n_slow_untracked += 1
                    step(system, st, c, a, False, True, rids_l[p],
                         vids_l[p], gaps_l[p])
                    continue
            else:
                n_slow_faults += 1
                step(system, st, c, a, False, ap, rids_l[p],
                     vids_l[p], gaps_l[p])
                continue
            # Commit: live sequential replay, no aborts past this
            # point. Order matches the slow path: L1 fill, dirty victim
            # into the L2 (write hit or write fill, cascading a dirty
            # L2 victim to the LLC), demand L2 fill (same cascade),
            # then the LLC probe/fill.
            g = gaps_l[p]
            now = cycles[c] + g / width
            comp_gaps += g
            insns += g + 1
            vid = vids_l[p]
            sharers[a] = sharers.get(a, 0) | core_bit[c]
            wb = 0.0
            ws1 = l1_ways[c][s1]
            vb = None
            if len(ws1) < l1_assoc:
                for way in range(l1_assoc):
                    if way not in ws1:
                        break
            else:
                way = (next(iter(l1_pols[c][s1]._order)) if is_lru
                       else l1_pols[c][s1].victim())
                vb = ws1[way]
                del m1[vb.tag]
            ws1[way] = new_block(t1, state=shared, value_id=vid)
            m1[t1] = way
            if is_lru:
                o = l1_pols[c][s1]._order
                del o[way]
                o[way] = None
            else:
                l1_pols[c][s1].on_fill(way)
            if vb is None:
                pass
            elif not vb.dirty:
                n_le1_clean[c] += 1
            else:
                vbn = (vb.tag << l1_bits) | s1
                sv = vbn & l2_mask
                tv = vbn >> l2_bits
                wv = cm2[sv].get(tv)
                if wv is not None:
                    n_le1_dirty[c] += 1
                    b2 = l2_ways[c][sv][wv]
                    b2.dirty = True
                    b2.state = modified
                    if vb.value_id >= 0:
                        b2.value_id = vb.value_id
                    if is_lru:
                        o = l2_pols[c][sv]._order
                        del o[wv]
                        o[wv] = None
                    else:
                        l2_pols[c][sv].on_access(wv)
                else:
                    # Victim write-fill, with direct stats.
                    st1 = l1stats[c]
                    st2 = l2stats[c]
                    st1.evictions += 1
                    st1.writebacks += 1
                    st2.accesses += 1
                    st2.tag_lookups += 1
                    st2.write_accesses += 1
                    st2.misses += 1
                    st2.fills += 1
                    st2.data_writes += 1
                    wsv = l2_ways[c][sv]
                    vb2v = None
                    if len(wsv) < l2_assoc:
                        for wayv in range(l2_assoc):
                            if wayv not in wsv:
                                break
                    else:
                        wayv = (next(iter(l2_pols[c][sv]._order)) if is_lru
                                else l2_pols[c][sv].victim())
                        vb2v = wsv[wayv]
                        del cm2[sv][vb2v.tag]
                        st2.evictions += 1
                        if vb2v.dirty:
                            st2.writebacks += 1
                    wsv[wayv] = new_block(tv, state=modified, dirty=True,
                                          value_id=vb.value_id)
                    cm2[sv][tv] = wayv
                    if is_lru:
                        o = l2_pols[c][sv]._order
                        del o[wayv]
                        o[wayv] = None
                    else:
                        l2_pols[c][sv].on_fill(wayv)
                    if vb2v is not None and vb2v.dirty:
                        wb += l2wb(c, ((vb2v.tag << l2_bits) | sv) << bshift,
                                   vb2v.value_id, now)
            # Demand L2 fill (live peek — the victim ops above may have
            # reordered or refilled this very set).
            ws2 = l2_ways[c][s2]
            vb2 = None
            if len(ws2) < l2_assoc:
                for way2 in range(l2_assoc):
                    if way2 not in ws2:
                        break
            else:
                way2 = (next(iter(l2_pols[c][s2]._order)) if is_lru
                        else l2_pols[c][s2].victim())
                vb2 = ws2[way2]
                del cm2[s2][vb2.tag]
                n_le2[c] += 1
                if vb2.dirty:
                    l2stats[c].writebacks += 1
            ws2[way2] = new_block(t2, state=shared, value_id=vid)
            cm2[s2][t2] = way2
            if is_lru:
                o = l2_pols[c][s2]._order
                del o[way2]
                o[way2] = None
            else:
                l2_pols[c][s2].on_fill(way2)
            if vb2 is not None and vb2.dirty:
                wb += l2wb(c, ((vb2.tag << l2_bits) | s2) << bshift,
                           vb2.value_id, now)
            if llc_plain:
                if wl is not None:
                    # LLC read hit.
                    if llc_lru:
                        o = llc_pols[sl]._order
                        del o[wl]
                        o[wl] = None
                    else:
                        llc_pols[sl].on_access(wl)
                    cycles[c] = now + lat123f + wb
                    n_llchit[c] += 1
                    if wb:
                        wb_bd += wb
                    continue
                # LLC read miss, served by memory. The eviction
                # back-invalidates every private copy (the inclusive
                # hierarchy); a dirty victim additionally retires
                # through the bounded writeback buffer.
                wbf = 0.0
                wsl = llc_ways_arr[sl]
                vbl = None
                if len(wsl) < llc_assoc:
                    for wayl in range(llc_assoc):
                        if wayl not in wsl:
                            break
                else:
                    wayl = (next(iter(llc_pols[sl]._order)) if llc_lru
                            else llc_pols[sl].victim())
                    vbl = wsl[wayl]
                    ebn = (vbl.tag << llc_sbits) | sl
                    ea = ebn << bshift
                    if vbl.dirty:
                        llc_stats.writebacks += 1
                        wbf += wb_enqueue(ea, int(now))
                        mem_write(ea)
                    mem_wr += purge(ebn, ea)
                    del llc_maps[sl][vbl.tag]
                    n_llc_evict += 1
                wsl[wayl] = new_block(tl, state=shared, value_id=fill_vid)
                llc_maps[sl][tl] = wayl
                if llc_lru:
                    o = llc_pols[sl]._order
                    del o[wayl]
                    o[wayl] = None
                else:
                    llc_pols[sl].on_fill(wayl)
                n_mem[c] += 1
                # Overlap-aware miss timing, exactly as the slow path:
                # cascade stalls are part of the arrival latency, the
                # fill's own stall lands after the overlap window.
                lat = lat123f + wb
                arrival = now + lat
                mr = mem_ready_l[c]
                if arrival - mr < runahead:
                    completion = (mr if mr >= arrival else arrival) + mem_interval
                else:
                    completion = arrival + mem_latency
                mem_ready_l[c] = completion
                mem_bd += completion - now - lat
                cycles[c] = completion + wbf
                wb += wbf
                if wb:
                    wb_bd += wb
                continue
            # Adapter ("semi") path: any other LLC organization — the
            # split or unified Doppelgänger, or a baseline with an
            # exotic policy — via the exact reference protocol calls.
            rid = rids_l[p]
            reply = llc_read(a, c, ap, rid)
            lat = lat123f + wb
            if reply.hit:
                cycles[c] = now + lat
                n_semi_hit[c] += 1
                if wb:
                    wb_bd += wb
                continue
            arrival = now + lat
            mr = mem_ready_l[c]
            if arrival - mr < runahead:
                completion = (mr if mr >= arrival else arrival) + mem_interval
            else:
                completion = arrival + mem_latency
            mem_ready_l[c] = completion
            mem_bd += completion - now - lat
            mem_read(a)
            values = None
            fill_vid = cur_value.get(a, -1)
            if ap:
                values, fill_vid = block_values(a)
            fr = llc_fill(a, c, ap, rid, value_id=fill_vid,
                          values=values, dirty=False)
            wbf = apply_reply(fr, now, a)
            cycles[c] = completion + wbf
            wb += wbf
            if wb:
                wb_bd += wb
            n_semi_mem[c] += 1
            continue
        # Fast path: L1 read miss, L2 read hit. Decide the L1 victim
        # before mutating anything so the one ineligible case (a victim
        # fill that would evict the demand block itself) can abort
        # cleanly.
        ws1 = l1_ways[c][s1]
        vb = None
        vfill = False
        vb2v = None
        if len(ws1) < l1_assoc:
            for way in range(l1_assoc):
                if way not in ws1:
                    break
        else:
            way = (next(iter(l1_pols[c][s1]._order)) if is_lru
                   else l1_pols[c][s1].victim())
            vb = ws1[way]
            if vb.dirty:
                vbn = (vb.tag << l1_bits) | s1
                sv = vbn & l2_mask
                tv = vbn >> l2_bits
                wv = cm2[sv].get(tv)
                if wv is None:
                    vfill = True
                    wsv = l2_ways[c][sv]
                    if len(wsv) < l2_assoc:
                        for wayv in range(l2_assoc):
                            if wayv not in wsv:
                                break
                    else:
                        wayv = (next(iter(l2_pols[c][sv]._order)) if is_lru
                                else l2_pols[c][sv].victim())
                        if sv == s2 and wayv == w2:
                            # The victim fill would evict the very
                            # block the read is about to hit.
                            n_slow_entangled += 1
                            step(system, st, c, baddrs[p], False, approx_l[p],
                                 rids_l[p], vids_l[p], gaps_l[p])
                            continue
                        vb2v = wsv[wayv]
        # Commit: replay l1.access(miss) -> _fill exactly.
        g = gaps_l[p]
        now = cycles[c] + g / width
        if vb is not None:
            del m1[vb.tag]
        vid = vids_l[p]
        ws1[way] = new_block(t1, state=shared, value_id=vid)
        m1[t1] = way
        if is_lru:
            o = l1_pols[c][s1]._order
            del o[way]
            o[way] = None
        else:
            l1_pols[c][s1].on_fill(way)
        wb = 0.0
        if vb is None:
            n_fill_free[c] += 1
        elif not vb.dirty:
            n_fill_clean[c] += 1
        elif not vfill:
            # _install_l1_victim: a write hit in the L2.
            n_fill_dirty[c] += 1
            b2 = l2_ways[c][sv][wv]
            b2.dirty = True
            b2.state = modified
            if vb.value_id >= 0:
                b2.value_id = vb.value_id
            l2_pols[c][sv].on_access(wv)
        else:
            # _install_l1_victim: a write fill, with direct stats;
            # a dirty L2 victim cascades into the LLC writeback path.
            n_casc[c] += 1
            st1 = l1stats[c]
            st2 = l2stats[c]
            st1.evictions += 1
            st1.writebacks += 1
            st2.accesses += 1
            st2.tag_lookups += 1
            st2.write_accesses += 1
            st2.misses += 1
            st2.fills += 1
            st2.data_writes += 1
            if vb2v is not None:
                del cm2[sv][vb2v.tag]
                st2.evictions += 1
                if vb2v.dirty:
                    st2.writebacks += 1
            wsv[wayv] = new_block(tv, state=modified, dirty=True,
                                  value_id=vb.value_id)
            cm2[sv][tv] = wayv
            if is_lru:
                o = l2_pols[c][sv]._order
                del o[wayv]
                o[wayv] = None
            else:
                l2_pols[c][sv].on_fill(wayv)
            if vb2v is not None and vb2v.dirty:
                wb += l2wb(c, ((vb2v.tag << l2_bits) | sv) << bshift,
                           vb2v.value_id, now)
        # Demand L2 read hit.
        if is_lru:
            o = l2_pols[c][s2]._order
            del o[w2]
            o[w2] = None
        else:
            l2_pols[c][s2].on_access(w2)
        a = baddrs[p]
        sharers[a] = sharers.get(a, 0) | core_bit[c]
        comp_gaps += g
        insns += g + 1
        if wb:
            cycles[c] = now + lat12f + wb
            wb_bd += wb
        else:
            cycles[c] = now + lat12f

    # Flush the bulk counters. Every term is an integer (or a dyadic
    # rational for the gap sum), so regrouping is exact.
    fast_all = 0
    l2_lat_hits = 0
    llc_hits = 0
    llc_misses = 0
    semi_reads = 0
    for c in range(num_cores):
        k1r = n_l1hit[c]
        kc = n_casc[c]
        k2r = n_fill_free[c] + n_fill_clean[c] + n_fill_dirty[c] + kc
        k1w = n_l1whit[c]
        k2w = (n_wfill_free[c] + n_wfill_clean[c] + n_wfill_dirty[c]
               + n_wcasc[c])
        # Private double-misses all share the demand-fill shape.
        k3 = n_llchit[c] + n_mem[c] + n_semi_hit[c] + n_semi_mem[c]
        fast_all += k1r + k2r + k1w + k2w + k3 + n_wmiss[c]
        l2_lat_hits += k2r + k3
        llc_hits += n_llchit[c]
        llc_misses += n_mem[c]
        semi_reads += n_semi_hit[c] + n_semi_mem[c]
        dr = n_fill_dirty[c]
        dw = n_wfill_dirty[c]
        dl = n_le1_dirty[c]
        s1 = l1stats[c]
        s1.accesses += k1r + k2r + k1w + k2w + k3
        s1.tag_lookups += k1r + k2r + k1w + k2w + k3
        s1.read_accesses += k1r + k2r + k3
        s1.write_accesses += k1w + k2w
        s1.hits += k1r + k1w
        s1.misses += k2r + k2w + k3
        s1.fills += k2r + k2w + k3
        s1.data_reads += k1r + k2r + k3
        s1.data_writes += k1w + k2w
        s1.evictions += (n_fill_clean[c] + dr + n_wfill_clean[c] + dw
                         + n_le1_clean[c] + dl)
        s1.writebacks += dr + dw + dl
        s1.invalidations += n_pinv_l1[c]
        s2 = l2stats[c]
        s2.accesses += k2r + dr + k2w + dw + k3 + dl
        s2.tag_lookups += k2r + dr + k2w + dw + k3 + dl
        s2.read_accesses += k2r + k3
        s2.write_accesses += dr + k2w + dw + dl
        s2.hits += k2r + dr + k2w + dw + dl
        s2.misses += k3
        s2.fills += k3
        s2.data_reads += k2r + k3
        s2.data_writes += dr + k2w + dw + dl
        s2.evictions += n_le2[c]
        s2.invalidations += n_pinv_l2[c]
    if llc_plain and (llc_hits or llc_misses or n_llc_evict):
        ls = llc_stats
        ls.accesses += llc_hits + llc_misses
        ls.tag_lookups += llc_hits + llc_misses
        ls.read_accesses += llc_hits + llc_misses
        ls.hits += llc_hits
        ls.misses += llc_misses
        ls.fills += llc_misses
        ls.data_reads += llc_hits + llc_misses
        ls.evictions += n_llc_evict
        ls.back_invalidations += n_llc_evict
        system.back_invalidations += n_llc_evict
    system.memory.reads += llc_misses
    system.memory.writes += mem_wr
    system.coherence_invalidations += n_coh_inv
    bd = st.bd
    bd["compute"] += comp_gaps / width
    bd["l1"] += fast_all * l1_lat
    bd["l2"] += l2_lat_hits * l2_lat
    bd["llc"] += (llc_hits + llc_misses + semi_reads) * st.llc_lat
    bd["memory"] += mem_bd
    bd["coherence"] += n_coh_dir * float(st.llc_lat)
    bd["writeback"] += wb_bd
    st.instructions += insns

    slow_total = (n_slow_coh + n_slow_untracked + n_slow_entangled
                  + n_slow_faults)
    system.engine_stats = {
        "engine": "batched",
        "accesses": n,
        "fast": {
            "l1_read_hit": sum(n_l1hit),
            "l1_write_hit": sum(n_l1whit),
            "l2_read_hit": (sum(n_fill_free) + sum(n_fill_clean)
                            + sum(n_fill_dirty) + sum(n_casc)),
            "l2_write_hit": (sum(n_wfill_free) + sum(n_wfill_clean)
                             + sum(n_wfill_dirty) + sum(n_wcasc)),
            "llc_read_hit": sum(n_llchit),
            "mem_fill": sum(n_mem),
            "llc_adapter_hit": sum(n_semi_hit),
            "llc_adapter_fill": sum(n_semi_mem),
            "write_fill": sum(n_wmiss),
        },
        "slow": {
            "coherence_traced": n_slow_coh,
            "untracked_values": n_slow_untracked,
            "victim_entangled": n_slow_entangled,
            "faults": n_slow_faults,
        },
        "aux": {
            "coherence_inlined": n_coh_dir,
            "remote_invalidations_inlined": n_coh_inv,
            "llc_evictions_inlined": n_llc_evict,
        },
        "slow_fraction": (slow_total / n) if n else 0.0,
    }
    return finalize(system, st)
