"""The batched engine: bulk trace precomputation + an inline hit fast path.

The trace's columns are converted and block-aligned in one numpy pass
(:mod:`repro.engine.precompute`), every reachable Doppelgänger map is
computed in bulk before the scan, and the scan itself retires private
cache read hits on an inline fast path:

* a read that hits the issuing core's L1 is retired with a replacement
  touch, a sharer-bit OR and a timing update — no cache-model calls;
* a read that misses the L1 but hits the core's L2 replays the L1 fill
  (including a possible dirty-victim write into the L2) and the L2 read
  touch inline;
* a write with no *remote* sharer bits set (so store coherence is a
  no-op) that hits the L1, or misses the L1 but hits the L2, replays
  the same fill logic with the store semantics (dirty/MODIFIED, value
  tracking, sharer reset) — a write always retires at ``now + l1_lat``;
* a read that misses both private levels but hits a conventional
  baseline LLC replays the L1 and L2 fills and the LLC's read touch,
  provided no eviction on the way can cascade (dirty victims must stay
  within the fast path's reach) — the access never reaches memory, so
  the MLP state is untouched;
* everything else — misses that reach memory, stores that must
  invalidate remote copies, anything structurally outside the replayed
  cases — falls through to the shared slow path of
  :mod:`repro.engine.step`.

Eligibility is decided by probing the caches' live tag→way maps
directly. An earlier design pre-masked each chunk against a snapshot of
the per-core L2 resident sets (numpy ``isin``), but measurement showed
the snapshot goes stale within ~1K accesses on streaming workloads —
the scaled L2 holds only a few hundred blocks and turns over completely
many times per chunk, collapsing fast-path coverage to the L1 hits.
The live probes are exact at every instant and cost two dict lookups.

Fixed-shape statistics and exact dyadic timing terms (gap sums, hit
latencies) are accumulated in plain integers and flushed once at the
end, which is what makes the fast path cheap *and* bit-identical: with
a power-of-two issue width every timing term is a dyadic rational far
below 2^52, so regrouped float sums equal the reference's sequential
sums exactly. Configurations where that argument fails (non-power-of-
two issue width) or where victim selection is stateful (``random``
replacement, whose RNG advances per query) delegate to the reference
engine wholesale.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.block import BlockState, CacheBlock
from repro.engine import reference
from repro.hierarchy.llc import BaselineLLC
from repro.engine.precompute import trace_columns
from repro.engine.step import finalize, make_state, prepare, process_access

#: Replacement policies whose ``victim()`` is a pure query, so the fast
#: path may peek at the victim before deciding to commit or abort.
_PURE_VICTIM_POLICIES = ("lru", "fifo", "plru")

#: Test seam for the resilience layer: when set, called as
#: ``_FAIL_HOOK(system, trace)`` at the top of :func:`run` so the
#: harness's batched-to-reference fallback can be exercised with a
#: synthetic failure (see ``tests/test_resilience.py``). Always None
#: in production.
_FAIL_HOOK = None


def run(system, trace, limit: Optional[int] = None):
    """Simulate ``trace``, bit-identically to the reference engine."""
    if _FAIL_HOOK is not None:
        _FAIL_HOOK(system, trace)
    cfg = system.config
    width_i = cfg.issue_width
    if width_i & (width_i - 1) or cfg.policy not in _PURE_VICTIM_POLICIES:
        return reference.run(system, trace, limit)

    st = make_state(system)
    prepare(system, trace)
    cols = trace_columns(trace, cfg.block_size)

    cores_l = cols.cores
    baddrs = cols.baddrs
    writes_l = cols.writes
    approx_l = cols.approx
    rids_l = cols.region_ids
    vids_l = cols.value_ids
    gaps_l = cols.gaps
    n = len(baddrs) if limit is None else min(limit, len(baddrs))

    bshift = cfg.block_size.bit_length() - 1
    blocks_l = (cols.baddr_np >> bshift).tolist()

    num_cores = cfg.num_cores
    l1s, l2s = system.l1s, system.l2s
    l1_maps = [c._tag_to_way for c in l1s]
    l1_ways = [c._ways for c in l1s]
    l1_pols = [c._policies for c in l1s]
    l2_maps = [c._tag_to_way for c in l2s]
    l2_ways = [c._ways for c in l2s]
    l2_pols = [c._policies for c in l2s]

    l1_sets = l1s[0].num_sets
    l1_mask = l1_sets - 1
    l1_bits = l1_sets.bit_length() - 1
    l1_assoc = l1s[0].ways
    l2_sets = l2s[0].num_sets
    l2_mask = l2_sets - 1
    l2_bits = l2_sets.bit_length() - 1
    l2_assoc = l2s[0].ways

    # The LLC fast paths need direct access to a conventional
    # (single-array, approx-oblivious) LLC whose victim choice is a
    # pure query; Doppelgänger organizations take the slow path on
    # every private miss. Fault injection decides per LLC/DRAM read,
    # so those reads must all reach the slow path's hooks — the private
    # L1/L2 fast paths never touch a fault site and stay eligible.
    llc_plain = isinstance(system.llc, BaselineLLC) and st.faults is None
    if llc_plain:
        lcache = system.llc.cache
        llc_plain = (lcache.policy_name in _PURE_VICTIM_POLICIES
                     and lcache.block_size == cfg.block_size)
    if llc_plain:
        llc_maps = lcache._tag_to_way
        llc_ways_arr = lcache._ways
        llc_pols = lcache._policies
        llc_assoc = lcache.ways
        llc_nsets = lcache.num_sets
        llc_mask = llc_nsets - 1
        llc_sbits = llc_nsets.bit_length() - 1

    cycles = st.cycles
    sharers = system._sharers
    cur_value = system._cur_value
    width = st.width
    l1_lat = st.l1_lat
    l2_lat = st.l2_lat
    l1f = float(l1_lat)
    lat12f = float(l1_lat) + l2_lat  # matches the reference's += order
    lat123f = float(l1_lat) + l2_lat + st.llc_lat
    core_bit = [1 << c for c in range(num_cores)]

    # LRU is the paper's policy everywhere; its touch/fill/victim are
    # two dict ops, worth inlining past the method dispatch.
    is_lru = cfg.policy == "lru"
    llc_lru = llc_plain and lcache.policy_name == "lru"
    shared = BlockState.SHARED
    modified = BlockState.MODIFIED
    new_block = CacheBlock
    step = process_access

    # Fixed-shape bulk counters, flushed once after the scan. The _w
    # variants count the store fast paths.
    n_l1hit = [0] * num_cores  # fast L1 read hits
    n_fill_free = [0] * num_cores  # fast L2 hits, L1 fill into a free way
    n_fill_clean = [0] * num_cores  # ... evicting a clean L1 victim
    n_fill_dirty = [0] * num_cores  # ... evicting a dirty L1 victim
    n_l1whit = [0] * num_cores
    n_wfill_free = [0] * num_cores
    n_wfill_clean = [0] * num_cores
    n_wfill_dirty = [0] * num_cores
    n_llchit = [0] * num_cores  # fast LLC read hits (L1+L2 read misses)
    n_mem = [0] * num_cores  # fast LLC read misses served by memory
    n_le1_clean = [0] * num_cores  # ... evicting a clean L1 victim
    n_le1_dirty = [0] * num_cores  # ... evicting a dirty L1 victim
    n_le2 = [0] * num_cores  # ... evicting a (clean) L2 victim
    n_pinv_l1 = [0] * num_cores  # back-invalidation purges, per holder
    n_pinv_l2 = [0] * num_cores
    n_llc_evict = 0  # clean LLC evictions (each back-invalidates)
    mem_wr = 0  # memory writes from purged dirty private copies
    mem_bd = 0.0  # exact dyadic sum of per-miss memory-stall terms
    mem_ready_l = st.mem_ready
    runahead = st.runahead
    mem_interval = st.mem_interval
    mem_latency = st.mem_latency
    comp_gaps = 0  # gap sum over fast-path accesses
    insns = 0  # instruction count over fast-path accesses

    for p in range(n):
        c = cores_l[p]
        b = blocks_l[p]
        s1 = b & l1_mask
        m1 = l1_maps[c][s1]
        t1 = b >> l1_bits
        w1 = m1.get(t1)
        if writes_l[p]:
            a = baddrs[p]
            if sharers.get(a, 0) & ~core_bit[c]:
                # Remote sharers: the store must invalidate them.
                step(system, st, c, a, True, approx_l[p], rids_l[p],
                     vids_l[p], gaps_l[p])
                continue
            vid = vids_l[p]
            if w1 is not None:
                # Fast path: store hit in the L1, no remote copies.
                if vid >= 0:
                    cur_value[a] = vid
                sharers[a] = core_bit[c]
                blk = l1_ways[c][s1][w1]
                blk.dirty = True
                blk.state = modified
                if vid >= 0:
                    blk.value_id = vid
                if is_lru:
                    o = l1_pols[c][s1]._order
                    del o[w1]
                    o[w1] = None
                else:
                    l1_pols[c][s1].on_access(w1)
                g = gaps_l[p]
                comp_gaps += g
                insns += g + 1
                cycles[c] = cycles[c] + g / width + l1f
                n_l1whit[c] += 1
                continue
            cm2 = l2_maps[c]
            s2 = b & l2_mask
            w2 = cm2[s2].get(b >> l2_bits)
            if w2 is None:
                step(system, st, c, a, True, approx_l[p], rids_l[p],
                     vids_l[p], gaps_l[p])
                continue
            # Fast path: store missing the L1, hitting the L2.
            ws1 = l1_ways[c][s1]
            vb = None
            if len(ws1) < l1_assoc:
                for way in range(l1_assoc):
                    if way not in ws1:
                        break
            else:
                way = (next(iter(l1_pols[c][s1]._order)) if is_lru
                       else l1_pols[c][s1].victim())
                vb = ws1[way]
                if vb.dirty:
                    vbn = (vb.tag << l1_bits) | s1
                    sv = vbn & l2_mask
                    wv = cm2[sv].get(vbn >> l2_bits)
                    if wv is None:
                        # Dirty victim would cascade into the LLC.
                        step(system, st, c, a, True, approx_l[p],
                             rids_l[p], vids_l[p], gaps_l[p])
                        continue
            if vid >= 0:
                cur_value[a] = vid
            sharers[a] = core_bit[c]
            if vb is not None:
                del m1[vb.tag]
            ws1[way] = new_block(t1, state=modified, dirty=True, value_id=vid)
            m1[t1] = way
            if is_lru:
                o = l1_pols[c][s1]._order
                del o[way]
                o[way] = None
            else:
                l1_pols[c][s1].on_fill(way)
            if vb is None:
                n_wfill_free[c] += 1
            elif not vb.dirty:
                n_wfill_clean[c] += 1
            else:
                n_wfill_dirty[c] += 1
                b2 = l2_ways[c][sv][wv]
                b2.dirty = True
                b2.state = modified
                if vb.value_id >= 0:
                    b2.value_id = vb.value_id
                if is_lru:
                    o = l2_pols[c][sv]._order
                    del o[wv]
                    o[wv] = None
                else:
                    l2_pols[c][sv].on_access(wv)
            # Demand L2 write hit.
            b2 = l2_ways[c][s2][w2]
            b2.dirty = True
            b2.state = modified
            if vid >= 0:
                b2.value_id = vid
            if is_lru:
                o = l2_pols[c][s2]._order
                del o[w2]
                o[w2] = None
            else:
                l2_pols[c][s2].on_access(w2)
            g = gaps_l[p]
            comp_gaps += g
            insns += g + 1
            cycles[c] = cycles[c] + g / width + l1f
            continue
        if w1 is not None:
            # Fast path: L1 read hit.
            if is_lru:
                o = l1_pols[c][s1]._order
                del o[w1]
                o[w1] = None
            else:
                l1_pols[c][s1].on_access(w1)
            a = baddrs[p]
            sharers[a] = sharers.get(a, 0) | core_bit[c]
            g = gaps_l[p]
            comp_gaps += g
            insns += g + 1
            cycles[c] = cycles[c] + g / width + l1f
            n_l1hit[c] += 1
            continue
        cm2 = l2_maps[c]
        s2 = b & l2_mask
        t2 = b >> l2_bits
        w2 = cm2[s2].get(t2)
        if w2 is None:
            # The read misses both private levels. With a conventional
            # LLC both remaining outcomes — LLC hit, and LLC miss with
            # a contained (free or clean) LLC victim — replay inline.
            # All checks are pure; the first failure falls through to
            # the slow path.
            if not llc_plain:
                step(system, st, c, baddrs[p], False, approx_l[p], rids_l[p],
                     vids_l[p], gaps_l[p])
                continue
            a = baddrs[p]
            sl = b & llc_mask
            tl = b >> llc_sbits
            wl = llc_maps[sl].get(tl)
            if wl is None:
                # Miss-only checks: the reference raises for an approx
                # block with no tracked value, and a dirty LLC victim
                # goes through the writeback buffer — both slow.
                fill_vid = cur_value.get(a, -1)
                if approx_l[p] and fill_vid < 0:
                    step(system, st, c, a, False, True, rids_l[p],
                         vids_l[p], gaps_l[p])
                    continue
                wsl = llc_ways_arr[sl]
                vbl = None
                if len(wsl) < llc_assoc:
                    for wayl in range(llc_assoc):
                        if wayl not in wsl:
                            break
                else:
                    wayl = (next(iter(llc_pols[sl]._order)) if llc_lru
                            else llc_pols[sl].victim())
                    vbl = wsl[wayl]
                    if vbl.dirty:
                        step(system, st, c, a, False, approx_l[p],
                             rids_l[p], vids_l[p], gaps_l[p])
                        continue
            ws1 = l1_ways[c][s1]
            vb = None
            if len(ws1) < l1_assoc:
                for way in range(l1_assoc):
                    if way not in ws1:
                        break
            else:
                way = (next(iter(l1_pols[c][s1]._order)) if is_lru
                       else l1_pols[c][s1].victim())
                vb = ws1[way]
                if vb.dirty:
                    vbn = (vb.tag << l1_bits) | s1
                    sv = vbn & l2_mask
                    # sv == s2 would let the victim's touch reorder the
                    # set the demand fill is about to pick a victim
                    # from, invalidating the pure peek below.
                    if sv == s2 or cm2[sv].get(vbn >> l2_bits) is None:
                        step(system, st, c, a, False, approx_l[p],
                             rids_l[p], vids_l[p], gaps_l[p])
                        continue
                    wv = cm2[sv][vbn >> l2_bits]
            ws2 = l2_ways[c][s2]
            vb2 = None
            if len(ws2) < l2_assoc:
                for way2 in range(l2_assoc):
                    if way2 not in ws2:
                        break
            else:
                way2 = (next(iter(l2_pols[c][s2]._order)) if is_lru
                        else l2_pols[c][s2].victim())
                vb2 = ws2[way2]
                if vb2.dirty:
                    # Dirty L2 victim would write back into the LLC.
                    step(system, st, c, a, False, approx_l[p],
                         rids_l[p], vids_l[p], gaps_l[p])
                    continue
            # Commit. Order replays the slow path: L1 fill, dirty
            # victim into the L2, demand L2 fill, then the LLC.
            vid = vids_l[p]
            sharers[a] = sharers.get(a, 0) | core_bit[c]
            if vb is not None:
                del m1[vb.tag]
            ws1[way] = new_block(t1, state=shared, value_id=vid)
            m1[t1] = way
            if is_lru:
                o = l1_pols[c][s1]._order
                del o[way]
                o[way] = None
            else:
                l1_pols[c][s1].on_fill(way)
            if vb is None:
                pass
            elif not vb.dirty:
                n_le1_clean[c] += 1
            else:
                n_le1_dirty[c] += 1
                b2 = l2_ways[c][sv][wv]
                b2.dirty = True
                b2.state = modified
                if vb.value_id >= 0:
                    b2.value_id = vb.value_id
                if is_lru:
                    o = l2_pols[c][sv]._order
                    del o[wv]
                    o[wv] = None
                else:
                    l2_pols[c][sv].on_access(wv)
            if vb2 is not None:
                del cm2[s2][vb2.tag]
                n_le2[c] += 1
            ws2[way2] = new_block(t2, state=shared, value_id=vid)
            cm2[s2][t2] = way2
            if is_lru:
                o = l2_pols[c][s2]._order
                del o[way2]
                o[way2] = None
            else:
                l2_pols[c][s2].on_fill(way2)
            g = gaps_l[p]
            comp_gaps += g
            insns += g + 1
            if wl is not None:
                # LLC read hit.
                if llc_lru:
                    o = llc_pols[sl]._order
                    del o[wl]
                    o[wl] = None
                else:
                    llc_pols[sl].on_access(wl)
                cycles[c] = cycles[c] + g / width + lat123f
                n_llchit[c] += 1
                continue
            # LLC read miss, served by memory. The clean LLC eviction
            # back-invalidates every private copy (the inclusive
            # hierarchy), which is a pure pop per holding core.
            if vbl is not None:
                ebn = (vbl.tag << llc_sbits) | sl
                ea = ebn << bshift
                vec = sharers.get(ea, 0)
                c2 = 0
                while vec:
                    if vec & 1:
                        se = ebn & l1_mask
                        wA = l1_maps[c2][se].pop(ebn >> l1_bits, None)
                        if wA is not None:
                            if l1_ways[c2][se].pop(wA).dirty:
                                mem_wr += 1
                            n_pinv_l1[c2] += 1
                        se = ebn & l2_mask
                        wB = l2_maps[c2][se].pop(ebn >> l2_bits, None)
                        if wB is not None:
                            if l2_ways[c2][se].pop(wB).dirty:
                                mem_wr += 1
                            n_pinv_l2[c2] += 1
                    vec >>= 1
                    c2 += 1
                sharers.pop(ea, None)
                del llc_maps[sl][vbl.tag]
                n_llc_evict += 1
            wsl[wayl] = new_block(tl, state=shared, value_id=fill_vid)
            llc_maps[sl][tl] = wayl
            if llc_lru:
                o = llc_pols[sl]._order
                del o[wayl]
                o[wayl] = None
            else:
                llc_pols[sl].on_fill(wayl)
            n_mem[c] += 1
            # Overlap-aware miss timing, exactly as the slow path.
            now = cycles[c] + g / width
            arrival = now + lat123f
            mr = mem_ready_l[c]
            if arrival - mr < runahead:
                completion = (mr if mr >= arrival else arrival) + mem_interval
            else:
                completion = arrival + mem_latency
            mem_ready_l[c] = completion
            mem_bd += completion - now - lat123f
            cycles[c] = completion
            continue
        # Fast path: L1 read miss, L2 read hit. Decide the L1 victim
        # before mutating anything so the one ineligible case (a dirty
        # victim that would cascade past the L2) can abort cleanly.
        ws1 = l1_ways[c][s1]
        vb = None
        if len(ws1) < l1_assoc:
            for way in range(l1_assoc):
                if way not in ws1:
                    break
        else:
            way = (next(iter(l1_pols[c][s1]._order)) if is_lru
                   else l1_pols[c][s1].victim())
            vb = ws1[way]
            if vb.dirty:
                vbn = (vb.tag << l1_bits) | s1
                sv = vbn & l2_mask
                wv = cm2[sv].get(vbn >> l2_bits)
                if wv is None:
                    # Dirty victim would cascade into the LLC.
                    step(system, st, c, baddrs[p], False, approx_l[p],
                         rids_l[p], vids_l[p], gaps_l[p])
                    continue
        # Commit: replay l1.access(miss) -> _fill exactly.
        if vb is not None:
            del m1[vb.tag]
        vid = vids_l[p]
        ws1[way] = new_block(t1, state=shared, value_id=vid)
        m1[t1] = way
        if is_lru:
            o = l1_pols[c][s1]._order
            del o[way]
            o[way] = None
        else:
            l1_pols[c][s1].on_fill(way)
        if vb is None:
            n_fill_free[c] += 1
        elif not vb.dirty:
            n_fill_clean[c] += 1
        else:
            # _install_l1_victim: a write hit in the L2.
            n_fill_dirty[c] += 1
            b2 = l2_ways[c][sv][wv]
            b2.dirty = True
            b2.state = modified
            if vb.value_id >= 0:
                b2.value_id = vb.value_id
            l2_pols[c][sv].on_access(wv)
        # Demand L2 read hit.
        if is_lru:
            o = l2_pols[c][s2]._order
            del o[w2]
            o[w2] = None
        else:
            l2_pols[c][s2].on_access(w2)
        a = baddrs[p]
        sharers[a] = sharers.get(a, 0) | core_bit[c]
        g = gaps_l[p]
        comp_gaps += g
        insns += g + 1
        cycles[c] = cycles[c] + g / width + lat12f

    # Flush the bulk counters. Every term is an integer (or a dyadic
    # rational for the gap sum), so regrouping is exact.
    fast_all = 0
    l2_lat_hits = 0
    llc_hits = 0
    llc_misses = 0
    for c in range(num_cores):
        k1r = n_l1hit[c]
        k2r = n_fill_free[c] + n_fill_clean[c] + n_fill_dirty[c]
        k1w = n_l1whit[c]
        k2w = n_wfill_free[c] + n_wfill_clean[c] + n_wfill_dirty[c]
        k3 = n_llchit[c] + n_mem[c]  # private double-misses, same shape
        fast_all += k1r + k2r + k1w + k2w + k3
        l2_lat_hits += k2r + k3
        llc_hits += n_llchit[c]
        llc_misses += n_mem[c]
        dr = n_fill_dirty[c]
        dw = n_wfill_dirty[c]
        dl = n_le1_dirty[c]
        s1 = l1s[c].stats
        s1.accesses += k1r + k2r + k1w + k2w + k3
        s1.tag_lookups += k1r + k2r + k1w + k2w + k3
        s1.read_accesses += k1r + k2r + k3
        s1.write_accesses += k1w + k2w
        s1.hits += k1r + k1w
        s1.misses += k2r + k2w + k3
        s1.fills += k2r + k2w + k3
        s1.data_reads += k1r + k2r + k3
        s1.data_writes += k1w + k2w
        s1.evictions += (n_fill_clean[c] + dr + n_wfill_clean[c] + dw
                         + n_le1_clean[c] + dl)
        s1.writebacks += dr + dw + dl
        s1.invalidations += n_pinv_l1[c]
        s2 = l2s[c].stats
        s2.accesses += k2r + dr + k2w + dw + k3 + dl
        s2.tag_lookups += k2r + dr + k2w + dw + k3 + dl
        s2.read_accesses += k2r + k3
        s2.write_accesses += dr + k2w + dw + dl
        s2.hits += k2r + dr + k2w + dw + dl
        s2.misses += k3
        s2.fills += k3
        s2.data_reads += k2r + k3
        s2.data_writes += dr + k2w + dw + dl
        s2.evictions += n_le2[c]
        s2.invalidations += n_pinv_l2[c]
    if llc_hits or llc_misses:
        ls = lcache.stats
        ls.accesses += llc_hits + llc_misses
        ls.tag_lookups += llc_hits + llc_misses
        ls.read_accesses += llc_hits + llc_misses
        ls.hits += llc_hits
        ls.misses += llc_misses
        ls.fills += llc_misses
        ls.data_reads += llc_hits + llc_misses
        ls.evictions += n_llc_evict
        ls.back_invalidations += n_llc_evict
        system.back_invalidations += n_llc_evict
        system.memory.reads += llc_misses
        system.memory.writes += mem_wr
    bd = st.bd
    bd["compute"] += comp_gaps / width
    bd["l1"] += fast_all * l1_lat
    bd["l2"] += l2_lat_hits * l2_lat
    bd["llc"] += (llc_hits + llc_misses) * st.llc_lat
    bd["memory"] += mem_bd
    st.instructions += insns
    return finalize(system, st)
