"""The ``repro serve`` HTTP daemon (stdlib only, no new dependencies).

A :class:`ServeDaemon` wraps a threading ``http.server`` — one handler
thread per connection, which SSE requires anyway — around the
:class:`~repro.serve.queue.JobQueue`:

==========================  =================================================
endpoint                    behaviour
==========================  =================================================
``GET /healthz``            daemon liveness: uptime, job tally, cache stats
``POST /jobs``              submit a :class:`~repro.serve.jobs.JobSpec`
                            (JSON body) → 201 + the job (400 on a bad spec)
``GET /jobs``               every known job, newest first (incl. journal
                            rows from earlier daemon incarnations)
``GET /jobs/<id>``          one job: state, queue position, run id
``DELETE /jobs/<id>``       cancel (queued → immediately; running → the
                            harness tears its worker pool down)
``GET /jobs/<id>/events``   Server-Sent-Events: replayed history, then live
                            lifecycle/warm-cache/heartbeat events, closing
                            once the job is terminal
==========================  =================================================

Shutdown: SIGINT/SIGTERM stop accepting connections, cancel in-flight
jobs and re-queue them in the journal (the next daemon resumes them) —
``httpd.shutdown()`` must be called from a different thread than
``serve_forever()``, so the signal handler hands it to a one-shot
thread. See ``docs/serving.md`` for the full API reference.
"""

from __future__ import annotations

import json
import queue as queue_mod
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro import __version__
from repro.errors import ConfigError
from repro.obs import get_logger
from repro.obs.store import default_store_path
from repro.serve.jobs import JobSpec
from repro.serve.queue import JobQueue
from repro.serve.sse import CLOSE, format_sse, keep_alive

log = get_logger("serve.server")

#: Seconds between SSE keep-alive comments on an idle stream.
KEEP_ALIVE_S = 15.0


class ReproServer(ThreadingHTTPServer):
    """Threading HTTP server carrying the queue for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], queue: JobQueue):
        """Bind to ``address`` and attach the job ``queue``."""
        self.queue = queue
        self.started_unix = time.time()
        super().__init__(address, ServeHandler)


class ServeHandler(BaseHTTPRequestHandler):
    """Routes one HTTP connection (see module docstring for the API)."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    # ------------------------------------------------------------- plumbing

    @property
    def queue(self) -> JobQueue:
        """The daemon's job queue."""
        return self.server.queue

    def log_message(self, fmt, *args):  # noqa: A002 - stdlib signature
        """Route access logs through the repro logger, not stderr."""
        log.info("%s %s", self.address_string(), fmt % args)

    def _send_json(self, payload, status: int = 200) -> None:
        """Write one JSON response with explicit length (keep-alive safe)."""
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        """JSON error body with the status code."""
        self._send_json({"error": message}, status=status)

    def _job_path(self) -> Optional[str]:
        """The ``<id>`` of a ``/jobs/<id>[/events]`` path, else None."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) >= 2 and parts[0] == "jobs":
            return parts[1]
        return None

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """``/healthz``, ``/jobs``, ``/jobs/<id>``, ``/jobs/<id>/events``."""
        path = self.path.split("?")[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(
                {
                    "status": "ok",
                    "version": __version__,
                    "uptime_s": time.time() - self.server.started_unix,
                    "jobs": self.queue.counts(),
                    "cache": self.queue.cache.stats(),
                }
            )
            return
        if path == "/jobs":
            self._send_json({"jobs": self.queue.list()})
            return
        job_id = self._job_path()
        if job_id is not None and path.endswith("/events"):
            self._stream_events(job_id)
            return
        if job_id is not None:
            job = self.queue.get(job_id)
            if job is None:
                self._error(404, f"no such job {job_id!r}")
            else:
                self._send_json(job)
            return
        self._error(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """``POST /jobs``: submit a job spec."""
        path = self.path.split("?")[0].rstrip("/")
        if path != "/jobs":
            self._error(404, f"unknown path {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            job = self.queue.submit(JobSpec.from_dict(data))
        except ConfigError as exc:
            self._error(400, str(exc))
            return
        self._send_json(job.to_dict(position=None), status=201)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        """``DELETE /jobs/<id>``: cancel."""
        job_id = self._job_path()
        if job_id is None:
            self._error(404, f"unknown path {self.path!r}")
            return
        job = self.queue.cancel(job_id)
        if job is None:
            self._error(404, f"no such job {job_id!r}")
            return
        self._send_json(job.to_dict())

    # ------------------------------------------------------------------ SSE

    def _stream_events(self, job_id: str) -> None:
        """Tail a job's event stream as Server-Sent Events.

        Replays retained history first, then live events; a keep-alive
        comment goes out every :data:`KEEP_ALIVE_S` idle seconds and
        the response ends when the job's stream closes (terminal
        state) or the client disconnects. ``Connection: close`` keeps
        HTTP/1.1 keep-alive from waiting on an unbounded body.
        """
        if self.queue.get(job_id) is None:
            self._error(404, f"no such job {job_id!r}")
            return
        subscription = self.queue.broker.subscribe(job_id, replay=True)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            while True:
                try:
                    event = subscription.get(timeout=KEEP_ALIVE_S)
                except queue_mod.Empty:
                    self.wfile.write(keep_alive())
                    self.wfile.flush()
                    continue
                if event is CLOSE:
                    return
                self.wfile.write(format_sse(event))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; nothing to clean up but the sub
        finally:
            self.queue.broker.unsubscribe(job_id, subscription)


class ServeDaemon:
    """The assembled daemon: queue + HTTP server + signal handling.

    Args:
        host: bind address (default localhost only).
        port: TCP port; 0 picks a free one (tests) — read the bound
            port back from :attr:`port` after construction.
        store_path: history database (default: the standard store
            resolution, honouring ``REPRO_STORE``).
        workers: concurrent jobs.
        json_dir: base directory for per-job JSON artifacts (None
            disables JSON output).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        store_path: Optional[str] = None,
        workers: int = 1,
        json_dir: Optional[str] = None,
    ):
        """Bind the server and build the queue (workers not yet started)."""
        self.store_path = store_path or default_store_path(json_dir)
        self.queue = JobQueue(
            self.store_path, workers=workers, json_dir=json_dir
        )
        self.httpd = ReproServer((host, port), self.queue)
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """The daemon's base URL."""
        return f"http://{self.host}:{self.port}"

    def run(self) -> int:
        """Serve until SIGINT/SIGTERM (the ``repro serve`` foreground loop).

        Recovery runs first so a restarted daemon's backlog is queued
        ahead of new submissions. ``httpd.shutdown()`` deadlocks when
        called from the ``serve_forever`` thread, so the signal handler
        hands it to a one-shot thread.
        """
        recovered = self.queue.recover()
        self.queue.start()

        def _handler(signum, frame):
            """Stop the server loop from a helper thread."""
            log.info("received %s; shutting down", signal.Signals(signum).name)
            threading.Thread(
                target=self.httpd.shutdown, name="serve-shutdown", daemon=True
            ).start()

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _handler)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                continue
        print(
            f"repro serve listening on {self.url} "
            f"(store {self.store_path}, {self.queue.workers} worker(s)"
            + (f", {recovered} job(s) recovered)" if recovered else ")")
        )
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            for sig, prev in previous.items():
                signal.signal(sig, prev)
            self.httpd.server_close()
            self.queue.shutdown(requeue_running=True)
        return 0

    # ----------------------------------------------------- test entry points

    def start_background(self) -> None:
        """Start serving on a daemon thread (tests / embedding)."""
        self.queue.recover()
        self.queue.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()

    def stop(self, requeue_running: bool = True) -> None:
        """Stop a background daemon: HTTP first, then the queue."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.queue.shutdown(requeue_running=requeue_running)
