"""Warm cross-job cache: shared traces and memoized results.

The daemon's whole point — per the ROADMAP's "many concurrent clients
sharing warm workload traces and memoized map-generation stats" — is
that the second job over a workload should not regenerate what the
first already computed. This module keys everything a job's
:class:`~repro.harness.runner.ExperimentContext` memoizes on the full
determinism triple:

* **traces** by ``(workload, seed, scale)`` — trace generation is the
  dominant setup cost, and the map-generation statistics
  (``approximate_map`` seed pairs, per-region value stats) are
  memoized *on the trace object* by :mod:`repro.engine.precompute`, so
  sharing the trace shares those for free;
* **run records / error values** by ``(workload, spec, seed, scale,
  engine)`` — a :class:`~repro.harness.runner.RunRecord` is immutable
  once computed and bit-identical across processes by the harness's
  determinism contract, so replaying it from cache equals recomputing.

What is deliberately **not** shared: workload instances (mutable
buffers the error pipeline rewrites) and precise outputs (the error
path refreshes workload state before the precise evaluation; caching
across jobs would change evaluation order and risk the bit-identity
invariant the equivalence suite enforces).

:meth:`WarmCache.build_context` seeds a fresh context with only the
entries the job's experiments *plan* to use, so the history rows a job
records never include another job's results.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.harness.runner import ExperimentContext


class WarmCache:
    """Thread-safe cross-job memo for traces, run records and errors."""

    def __init__(self):
        """Create an empty cache."""
        self._lock = threading.Lock()
        self._traces: Dict[Tuple, object] = {}
        self._runs: Dict[Tuple, object] = {}
        self._errors: Dict[Tuple, float] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _engine_key(engine: Optional[str]) -> str:
        """Normalize the engine name (None means batched)."""
        return engine or "batched"

    def build_context(self, spec, obs=None) -> Tuple[ExperimentContext, dict]:
        """A fresh context for ``spec``, pre-seeded from the cache.

        Only entries the spec's experiments *declare* (their
        ``Requirements`` run/error specs, fault-resolved) are seeded —
        a job's recorded history rows therefore cover exactly its own
        plan, warm or cold. Returns ``(ctx, seeded)`` where ``seeded``
        counts what was warm: ``{"traces": n, "runs": n, "errors": n}``.

        Args:
            spec: a :class:`~repro.serve.jobs.JobSpec`.
            obs: optional :class:`~repro.obs.Observability` for the
                context (default disabled — the daemon's contexts are
                headless).

        Raises:
            UnknownExperimentError: a spec experiment is unregistered.
            ConfigError: the spec's fault mapping is malformed.
        """
        from repro.harness.parallel import plan_specs
        from repro.obs import Observability

        ctx = ExperimentContext(
            seed=spec.seed,
            scale=spec.scale,
            workloads=spec.workloads,
            obs=obs or Observability.disabled(),
            engine=spec.engine,
            faults=spec.fault_config(),
        )
        run_specs, error_specs = plan_specs(spec.experiments)
        run_specs = [ctx.apply_faults(s) for s in run_specs]
        error_specs = [ctx.apply_faults(s) for s in error_specs]
        engine = self._engine_key(spec.engine)
        seeded = {"traces": 0, "runs": 0, "errors": 0}
        with self._lock:
            for name in ctx.names:
                trace_key = (name, ctx.seed, ctx.scale)
                if trace_key in self._traces:
                    ctx._traces[name] = self._traces[trace_key]
                    seeded["traces"] += 1
                    self.hits += 1
                else:
                    self.misses += 1
                for cfg in run_specs:
                    key = (name, cfg, ctx.seed, ctx.scale, engine)
                    if key in self._runs:
                        ctx._runs[(name, cfg)] = self._runs[key]
                        seeded["runs"] += 1
                for cfg in error_specs:
                    if cfg.kind == "baseline":
                        continue
                    key = (name, cfg, ctx.seed, ctx.scale, engine)
                    if key in self._errors:
                        ctx._errors[(name, cfg)] = self._errors[key]
                        seeded["errors"] += 1
        return ctx, seeded

    def absorb(self, ctx: ExperimentContext, engine: Optional[str] = None) -> None:
        """Adopt everything a finished job's context memoized.

        Traces, run records and error values land under their full
        determinism keys; later jobs with the same knobs start warm.
        Existing entries are kept (first computation wins — they are
        bit-identical by contract anyway).
        """
        engine = self._engine_key(engine if engine is not None else ctx.engine)
        with self._lock:
            for name, trace in ctx._traces.items():
                self._traces.setdefault((name, ctx.seed, ctx.scale), trace)
            for (name, cfg), record in ctx._runs.items():
                self._runs.setdefault(
                    (name, cfg, ctx.seed, ctx.scale, engine), record
                )
            for (name, cfg), err in ctx._errors.items():
                self._errors.setdefault(
                    (name, cfg, ctx.seed, ctx.scale, engine), err
                )

    def stats(self) -> dict:
        """Cache occupancy and hit counters (``GET /healthz``)."""
        with self._lock:
            return {
                "traces": len(self._traces),
                "runs": len(self._runs),
                "errors": len(self._errors),
                "trace_hits": self.hits,
                "trace_misses": self.misses,
            }
