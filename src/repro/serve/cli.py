"""CLI faces of the serve subsystem: ``serve``, ``submit``, ``jobs``, ``watch``.

Dispatched from :mod:`repro.cli`; each ``main_*`` takes the argv tail
after its subcommand name and returns a process exit code. Typed
errors propagate to the top-level handler for the standard exit-code
mapping. See ``docs/serving.md`` for worked examples.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.client import ServeClient
from repro.obs import configure_logging
from repro.serve.jobs import TERMINAL

#: Default daemon address for every client-side subcommand.
DEFAULT_URL = "http://127.0.0.1:8765"


def _add_url(parser: argparse.ArgumentParser) -> None:
    """The shared ``--url`` flag."""
    parser.add_argument(
        "--url",
        default=DEFAULT_URL,
        help=f"daemon base URL (default {DEFAULT_URL})",
    )


def main_serve(argv) -> int:
    """``repro serve``: run the job daemon in the foreground."""
    from repro.serve.server import ServeDaemon

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the long-lived simulation daemon: an HTTP job "
        "API over the experiment harness with warm cross-job caches.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 picks a free one (default 8765)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="concurrent jobs (each may itself use spec.jobs simulation "
        "processes; default 1)",
    )
    parser.add_argument(
        "--store", default=None,
        help="history database for the job journal and recorded runs "
        "(default: REPRO_STORE or <--json-out>/history.db)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="base directory for per-job JSON artifacts, written under "
        "<dir>/jobs/<id> (default: none)",
    )
    parser.add_argument(
        "--log-level", default="INFO", type=str.upper,
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="logging level (default INFO)",
    )
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    daemon = ServeDaemon(
        args.host,
        args.port,
        store_path=args.store,
        workers=args.workers,
        json_dir=args.json_out,
    )
    return daemon.run()


def _spec_from_args(args) -> dict:
    """Build the ``POST /jobs`` spec body from parsed submit flags."""
    spec = {"experiments": list(dict.fromkeys(args.experiments))}
    if args.workloads:
        spec["workloads"] = args.workloads
    for knob in ("seed", "scale", "engine", "timeout"):
        value = getattr(args, knob)
        if value is not None:
            spec[knob] = value
    if args.jobs != 1:
        spec["jobs"] = args.jobs
    if args.retries:
        spec["retries"] = args.retries
    options = {
        key: value
        for key, value in (
            ("error_budget", args.error_budget),
            ("voltage_steps", args.voltage_steps),
        )
        if value is not None
    }
    if options:
        spec["strategy_options"] = options
    if args.fault_rate or args.fault_stuck_bits:
        spec["faults"] = {
            "seed": args.fault_seed,
            "read_rate": args.fault_rate,
            "stuck_bits": args.fault_stuck_bits,
        }
    return spec


def main_submit(argv) -> int:
    """``repro submit``: queue a job on the daemon.

    Prints the created job as JSON (or just its id with ``--quiet``);
    with ``--wait`` polls to completion and exits non-zero unless the
    job ends ``done``.
    """
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit an experiment job to a running repro serve "
        "daemon.",
    )
    parser.add_argument(
        "experiments", nargs="+", metavar="experiment",
        help="registered experiment name(s)",
    )
    _add_url(parser)
    parser.add_argument("--seed", type=int, default=None, help="data seed")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale")
    parser.add_argument(
        "--workloads", nargs="*", default=None, help="benchmark subset"
    )
    parser.add_argument(
        "--engine", default=None, choices=("batched", "reference"),
        help="simulation engine (default batched)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="simulation worker processes inside the job (default 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="seconds allowed per parallel workload task",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="retry rounds for failed parallel tasks (default 0)",
    )
    parser.add_argument(
        "--error-budget", type=float, default=None,
        help="frontier experiment: max acceptable output error",
    )
    parser.add_argument(
        "--voltage-steps", type=int, default=None,
        help="frontier experiment: voltage-ladder length",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-read transient fault probability (default 0 = off)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="fault-stream seed"
    )
    parser.add_argument(
        "--fault-stuck-bits", type=int, default=0,
        help="stuck bit positions in the approximate data array",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes; exit 0 only on state=done",
    )
    parser.add_argument(
        "--wait-timeout", type=float, default=None,
        help="give up --wait after this many seconds",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the job id (script-friendly)",
    )
    args = parser.parse_args(argv)
    client = ServeClient(args.url)
    job = client.submit(_spec_from_args(args))
    if args.quiet:
        print(job["id"])
    else:
        print(json.dumps(job, indent=2, default=str))
    if not args.wait:
        return 0
    final = client.wait(job["id"], timeout=args.wait_timeout)
    if not args.quiet:
        print(json.dumps(final, indent=2, default=str))
    if final["state"] != "done":
        print(
            f"job {job['id']} ended {final['state']}"
            + (f": {final['error']}" if final.get("error") else ""),
            file=sys.stderr,
        )
        return 1
    return 0


def main_jobs(argv) -> int:
    """``repro jobs``: list the daemon's jobs (optionally one state)."""
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="List jobs known to a running repro serve daemon.",
    )
    _add_url(parser)
    parser.add_argument(
        "--state", default=None,
        choices=("queued", "running", "done", "failed", "cancelled"),
        help="only jobs in this state",
    )
    parser.add_argument(
        "--json", action="store_true", help="raw JSON instead of a table"
    )
    args = parser.parse_args(argv)
    jobs = ServeClient(args.url).jobs()
    if args.state:
        jobs = [job for job in jobs if job["state"] == args.state]
    if args.json:
        print(json.dumps(jobs, indent=2, default=str))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    header = f"{'id':<14} {'state':<10} {'pos':<4} {'run':<5} experiments"
    print(header)
    print("-" * len(header))
    for job in jobs:
        position = job.get("position")
        run_id = job.get("run_id")
        print(
            f"{job['id']:<14} {job['state']:<10} "
            f"{'' if position is None else position:<4} "
            f"{'' if run_id is None else run_id:<5} "
            + ",".join(job["spec"]["experiments"])
        )
    return 0


def main_watch(argv) -> int:
    """``repro watch <id>``: tail a job's SSE stream to the terminal.

    Prints one line per event (state transitions, the warm-cache
    report, worker heartbeats) until the job reaches a terminal state;
    exits 0 for ``done``, 1 otherwise. Watching an already-finished
    job replays its retained history and returns.
    """
    parser = argparse.ArgumentParser(
        prog="repro watch",
        description="Stream a job's live events from a repro serve daemon.",
    )
    parser.add_argument("job", help="job id (from repro submit / repro jobs)")
    _add_url(parser)
    parser.add_argument(
        "--json", action="store_true", help="raw event JSON, one per line"
    )
    args = parser.parse_args(argv)
    client = ServeClient(args.url)
    final_state = None
    for event in client.events(args.job):
        if args.json:
            print(json.dumps(event, default=str))
        else:
            print(_render_event(event))
        sys.stdout.flush()
        if event.get("kind") in TERMINAL:
            final_state = event["kind"]
    if final_state is None:
        final_state = client.job(args.job)["state"]
    return 0 if final_state == "done" else 1


def _render_event(event: dict) -> str:
    """One human line per SSE event."""
    kind = event.get("kind", "?")
    ts = event.get("ts_unix")
    stamp = time.strftime("%H:%M:%S", time.localtime(ts)) if ts else "--:--:--"
    if kind == "state":
        line = f"state -> {event.get('state')}"
        if event.get("requeued"):
            line += " (requeued)"
    elif kind == "warm_cache":
        line = (
            f"warm cache: {event.get('traces', 0)} trace(s), "
            f"{event.get('runs', 0)} run(s), {event.get('errors', 0)} "
            "error value(s) reused"
        )
    elif kind == "worker_heartbeat":
        line = (
            f"worker {event.get('unit')}: {event.get('phase')} "
            f"{event.get('done', 0)}/{event.get('total', 0)}"
        )
    elif kind in TERMINAL:
        line = f"job {kind}"
        if event.get("run_id") is not None:
            line += f" (history run {event['run_id']})"
        if event.get("error"):
            line += f": {event['error']}"
    else:
        line = json.dumps(event, default=str)
    return f"[{stamp}] {line}"
