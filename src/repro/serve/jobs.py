"""Job model for the serve daemon: specs, states and journal rows.

A *job* is one queued invocation of the generic strategy driver
(:func:`repro.harness.strategy.run_strategies`): a :class:`JobSpec`
carries the same knobs ``repro run`` takes (experiments, workloads,
seed/scale, engine, jobs, timeout/retries, fault and strategy
options), and a :class:`Job` wraps the spec with its lifecycle state,
timestamps and — once executed — the history-store run id its results
landed under.

Job rows persist in the history store's ``jobs`` table
(:meth:`repro.obs.store.RunStore.save_job`) on every state
transition, so a restarted daemon re-reports terminal jobs and
re-enqueues interrupted ones (see :meth:`repro.serve.queue.JobQueue.recover`).
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError


class JobState:
    """The job lifecycle states (plain strings, stored verbatim).

    ``QUEUED → RUNNING → DONE | FAILED | CANCELLED``; a queued job may
    also jump straight to ``CANCELLED``. :data:`TERMINAL` is the set a
    job never leaves.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never transitions out of.
TERMINAL = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})

#: The JSON fields a submitted spec may carry (everything optional but
#: ``experiments``); unknown fields are rejected with their names.
_SPEC_FIELDS = (
    "experiments",
    "workloads",
    "seed",
    "scale",
    "engine",
    "jobs",
    "timeout",
    "retries",
    "faults",
    "strategy_options",
)


@dataclass
class JobSpec:
    """What to run: the ``repro run`` knob set as inert, JSON-safe data.

    Attributes:
        experiments: registered strategy names, in execution order.
        workloads: benchmark subset (None = every workload).
        seed: data seed (None = the harness default).
        scale: dataset scale (None = the harness default).
        engine: simulation engine name (None = batched).
        jobs: worker processes for the in-job parallel prefetch.
        timeout: seconds allowed per parallel workload task.
        retries: retry rounds for failed/timed-out parallel tasks.
        faults: a :meth:`~repro.resilience.faults.FaultConfig.to_dict`
            mapping (None = no fault injection).
        strategy_options: free-form options published to strategies as
            ``ctx.strategy_options`` (``error_budget`` …).
    """

    experiments: List[str]
    workloads: Optional[List[str]] = None
    seed: Optional[int] = None
    scale: Optional[float] = None
    engine: Optional[str] = None
    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 0
    faults: Optional[dict] = None
    strategy_options: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Validate and build a spec from a submitted JSON object.

        Raises:
            ConfigError: not a JSON object, unknown fields, a missing /
                empty / non-string-list ``experiments``, or malformed
                scalar knobs (the HTTP layer maps this to a 400).
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"job spec must be a JSON object, got {type(data).__name__}",
                field="spec",
            )
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise ConfigError(
                f"unknown job spec field(s) {unknown}; known fields are "
                f"{list(_SPEC_FIELDS)}",
                field="spec",
            )
        experiments = data.get("experiments")
        if (
            not isinstance(experiments, list)
            or not experiments
            or not all(isinstance(name, str) for name in experiments)
        ):
            raise ConfigError(
                "spec.experiments must be a non-empty list of experiment "
                "names",
                field="experiments",
            )
        workloads = data.get("workloads")
        if workloads is not None and (
            not isinstance(workloads, list)
            or not all(isinstance(name, str) for name in workloads)
        ):
            raise ConfigError(
                "spec.workloads must be a list of workload names",
                field="workloads",
            )
        jobs = data.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 1:
            raise ConfigError(
                f"spec.jobs must be an integer >= 1, got {jobs!r}",
                field="jobs",
            )
        retries = data.get("retries", 0)
        if not isinstance(retries, int) or retries < 0:
            raise ConfigError(
                f"spec.retries must be an integer >= 0, got {retries!r}",
                field="retries",
            )
        timeout = data.get("timeout")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            raise ConfigError(
                f"spec.timeout must be a positive number, got {timeout!r}",
                field="timeout",
            )
        options = data.get("strategy_options") or {}
        if not isinstance(options, dict):
            raise ConfigError(
                "spec.strategy_options must be a JSON object",
                field="strategy_options",
            )
        faults = data.get("faults")
        if faults is not None and not isinstance(faults, dict):
            raise ConfigError(
                "spec.faults must be a FaultConfig.to_dict() object",
                field="faults",
            )
        return cls(
            experiments=list(experiments),
            workloads=list(workloads) if workloads is not None else None,
            seed=data.get("seed"),
            scale=data.get("scale"),
            engine=data.get("engine"),
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            faults=dict(faults) if faults is not None else None,
            strategy_options=dict(options),
        )

    def to_dict(self) -> dict:
        """JSON form; the exact inverse of :meth:`from_dict`."""
        return {
            "experiments": list(self.experiments),
            "workloads": list(self.workloads) if self.workloads else None,
            "seed": self.seed,
            "scale": self.scale,
            "engine": self.engine,
            "jobs": self.jobs,
            "timeout": self.timeout,
            "retries": self.retries,
            "faults": dict(self.faults) if self.faults else None,
            "strategy_options": dict(self.strategy_options),
        }

    def fault_config(self):
        """The spec's :class:`~repro.resilience.faults.FaultConfig` (or None).

        Raises:
            ConfigError: the ``faults`` mapping is malformed (validated
                by ``FaultConfig.from_dict``).
        """
        if not self.faults:
            return None
        from repro.resilience.faults import FaultConfig

        return FaultConfig.from_dict(self.faults)


def new_job_id() -> str:
    """A short, URL-safe, collision-unlikely job id."""
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submitted job: spec + lifecycle state + provenance.

    ``recovered`` marks a job re-enqueued by a daemon restart (it was
    queued or running when the previous daemon died); the API surfaces
    it so clients can tell a resumed job from a fresh one.
    """

    spec: JobSpec
    id: str = field(default_factory=new_job_id)
    state: str = JobState.QUEUED
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    error: Optional[str] = None
    run_id: Optional[int] = None
    recovered: bool = False

    def to_dict(self, position: Optional[int] = None) -> dict:
        """API form (``GET /jobs/<id>``); ``position`` is 0-based in queue."""
        out = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "run_id": self.run_id,
            "recovered": self.recovered,
        }
        if position is not None:
            out["position"] = position
        return out

    def row(self, daemon: Optional[str] = None) -> dict:
        """The ``jobs``-table row for :meth:`~repro.obs.store.RunStore.save_job`."""
        return {
            "id": self.id,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "run_id": self.run_id,
            "error": self.error,
            "daemon": daemon,
        }

    @classmethod
    def from_row(cls, row: dict) -> "Job":
        """Rebuild a job from its journal row (inverse of :meth:`row`)."""
        return cls(
            spec=JobSpec.from_dict(row["spec"]),
            id=row["id"],
            state=row["state"],
            submitted_unix=row["submitted_unix"],
            started_unix=row.get("started_unix"),
            finished_unix=row.get("finished_unix"),
            error=row.get("error"),
            run_id=row.get("run_id"),
        )

    @property
    def terminal(self) -> bool:
        """True once the job reached done/failed/cancelled."""
        return self.state in TERMINAL
