"""The daemon's job queue: bounded workers over ``run_strategies``.

A :class:`JobQueue` owns everything between the HTTP layer and the
PR 7 strategy driver:

* **scheduling** — submitted jobs enter a FIFO; ``workers`` daemon
  threads drain it, each executing one job at a time through
  :func:`repro.harness.strategy.run_strategies` (which itself fans a
  job's ``spec.jobs`` simulation processes);
* **warm caching** — each job's context is pre-seeded from the shared
  :class:`~repro.serve.cache.WarmCache` and absorbed back on success,
  so concurrent clients share parsed traces and memoized map stats;
* **cancellation** — ``cancel()`` flips the job's
  :class:`~repro.harness.parallel.CancelToken`; the in-flight pool is
  torn down by the harness and the typed
  :class:`~repro.errors.Cancelled` lands the job in ``cancelled``;
* **persistence** — every state transition is journaled into the
  history store's ``jobs`` table, so :meth:`recover` re-enqueues the
  queued/running backlog after a daemon restart (re-enqueued jobs are
  marked ``recovered``), and completed jobs link to their
  ``repro history`` run via ``run_id``;
* **streaming** — lifecycle transitions, the warm-cache report and
  worker heartbeats are published to the
  :class:`~repro.serve.sse.EventBroker` feeding ``GET
  /jobs/<id>/events``.

The queue never imports HTTP machinery; tests drive it directly.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.errors import Cancelled, ConfigError
from repro.harness.parallel import CancelToken
from repro.obs import get_logger
from repro.obs.livestream import LiveProgressSink
from repro.obs.store import RunStore
from repro.serve.cache import WarmCache
from repro.serve.jobs import Job, JobSpec, JobState
from repro.serve.sse import EventBroker

log = get_logger("serve.queue")

#: Cancel reason distinguishing a daemon shutdown (job is re-queued for
#: the next daemon) from a client cancel (job ends ``cancelled``).
SHUTDOWN_REASON = "daemon shutdown"


class _JobProgressSink(LiveProgressSink):
    """A livestream sink that republishes worker heartbeats to the SSE broker.

    Inherits the drain thread and store-shaped retention from
    :class:`~repro.obs.livestream.LiveProgressSink` (so heartbeats
    still land in the history store's events table), and additionally
    forwards each beat to the job's event stream.
    """

    def __init__(self, broker: EventBroker, job_id: str):
        """Bind to ``broker`` for job ``job_id`` (no terminal rendering)."""
        super().__init__(stream=None, render=False)
        self._broker = broker
        self._job_id = job_id

    def handle(self, beat: dict) -> None:
        """Retain the beat, then publish it on the job's SSE stream."""
        super().handle(beat)
        event = dict(beat)
        event["job"] = self._job_id
        self._broker.publish(self._job_id, event)


class JobQueue:
    """FIFO job scheduler with bounded worker threads (see module docs).

    Args:
        store_path: history database path — both the job journal and
            where executed jobs record their runs.
        workers: concurrent jobs (each may itself fan ``spec.jobs``
            simulation processes).
        broker: the SSE event broker (a fresh one by default).
        json_dir: base directory for per-job JSON artifacts; each job
            writes under ``<json_dir>/jobs/<id>`` so concurrent jobs
            never race on one ``BENCH_obs.json``.
        daemon_id: identifier journaled with each job row (defaults to
            ``pid<pid>``).
    """

    def __init__(
        self,
        store_path: str,
        *,
        workers: int = 1,
        broker: Optional[EventBroker] = None,
        json_dir: Optional[str] = None,
        daemon_id: Optional[str] = None,
    ):
        """Open the journal store; workers start on :meth:`start`."""
        if workers < 1:
            raise ConfigError(
                f"workers must be >= 1, got {workers}", field="workers"
            )
        self.store_path = store_path
        self.store = RunStore(store_path)
        self.broker = broker if broker is not None else EventBroker()
        self.json_dir = json_dir
        self.daemon_id = daemon_id or f"pid{os.getpid()}"
        self.workers = workers
        self.cache = WarmCache()
        self._jobs: Dict[str, Job] = {}
        self._pending: deque = deque()
        self._tokens: Dict[str, CancelToken] = {}
        self._cond = threading.Condition()
        self._threads: List[threading.Thread] = []
        self._stopping = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for k in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{k}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def recover(self) -> int:
        """Re-enqueue the journal's queued/running backlog; returns count.

        Jobs a previous daemon left ``queued`` or ``running`` restart
        from the top (simulations are deterministic and memoized, so a
        re-run is byte-identical); they are flagged ``recovered`` in
        the API. Call before :meth:`start` accepts new submissions to
        keep FIFO order: the backlog runs first.
        """
        rows = self.store.load_jobs(states=(JobState.QUEUED, JobState.RUNNING))
        count = 0
        for row in rows:
            try:
                job = Job.from_row(row)
            except ConfigError as exc:  # journal row from a newer build
                log.warning("skipping unreadable job row %s: %s", row.get("id"), exc)
                continue
            job.state = JobState.QUEUED
            job.started_unix = None
            job.recovered = True
            with self._cond:
                self._jobs[job.id] = job
                self._pending.append(job.id)
                self._cond.notify()
            self._save(job)
            self._publish_state(job, requeued=True)
            count += 1
        if count:
            log.info("recovered %d job(s) from %s", count, self.store_path)
        return count

    def shutdown(self, requeue_running: bool = True) -> None:
        """Stop workers; in-flight jobs are cancelled and (by default) re-queued.

        With ``requeue_running`` a running job's journal row returns to
        ``queued`` so the next daemon resumes it; with it False the job
        ends ``cancelled``. Queued jobs stay ``queued`` in the journal
        either way. Blocks until the workers exit (bounded by the
        harness's pool-teardown timeout), then closes the journal.
        """
        with self._cond:
            self._stopping = True
            reason = SHUTDOWN_REASON if requeue_running else "cancelled at shutdown"
            for token in self._tokens.values():
                token.cancel(reason)
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []
        self.store.close()

    # -------------------------------------------------------------- the API

    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns it (state ``queued``).

        Validates the experiment names against the strategy registry
        and the workloads against the workload registry up front, so a
        bad spec is a 400 at submission, not a failed job later.

        Raises:
            ConfigError: unknown experiment/workload, or the queue is
                shutting down.
        """
        from repro.harness.strategy import registry

        for name in spec.experiments:
            registry.get(name)
        if spec.workloads:
            from repro.workloads.registry import workload_names

            known = workload_names()
            unknown = [w for w in spec.workloads if w not in known]
            if unknown:
                raise ConfigError(
                    f"unknown workload(s) {unknown}; choose from {known}",
                    field="workloads",
                )
        job = Job(spec=spec)
        with self._cond:
            if self._stopping:
                raise ConfigError(
                    "daemon is shutting down; job not accepted", field="serve"
                )
            self._jobs[job.id] = job
        # Journal + stream the queued state BEFORE a worker can claim the
        # job, so subscribers always see queued -> running in order.
        self._save(job)
        self._publish_state(job)
        with self._cond:
            self._pending.append(job.id)
            self._cond.notify()
        return job

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job: queued jobs immediately, running via their token.

        Returns the job (terminal jobs are returned unchanged) or None
        for an unknown id. A running job transitions once the harness
        tears its pool down and raises
        :class:`~repro.errors.Cancelled` — within the poll interval
        plus pool teardown, not at the next task boundary.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.terminal:
                return job
            if job.state == JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_unix = time.time()
                job.error = "cancelled before start"
            else:
                token = self._tokens.get(job_id)
                if token is not None:
                    token.cancel("cancelled by client")
                return job
        # Queued -> cancelled: journal + stream outside the lock.
        self._save(job)
        self._publish_terminal(job)
        return job

    def get(self, job_id: str) -> Optional[dict]:
        """One job's API dict (with queue position), or None.

        Falls back to the journal for jobs of earlier daemon
        incarnations that never entered this process's memory.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.to_dict(self._position(job_id))
        row = self.store.job_row(job_id)
        if row is None:
            return None
        return Job.from_row(row).to_dict()

    def list(self) -> List[dict]:
        """Every known job's API dict, newest submission first.

        Journal rows from earlier daemons are merged in (memory wins),
        so ``GET /jobs`` after a restart still shows finished history.
        """
        with self._cond:
            out = {
                job.id: job.to_dict(self._position(job.id))
                for job in self._jobs.values()
            }
        for row in self.store.load_jobs():
            if row["id"] not in out:
                try:
                    out[row["id"]] = Job.from_row(row).to_dict()
                except ConfigError:
                    continue
        return sorted(
            out.values(), key=lambda j: j["submitted_unix"], reverse=True
        )

    def counts(self) -> Dict[str, int]:
        """Job tally by state (``GET /healthz``)."""
        with self._cond:
            tally: Dict[str, int] = {}
            for job in self._jobs.values():
                tally[job.state] = tally.get(job.state, 0) + 1
            return tally

    def _position(self, job_id: str) -> Optional[int]:
        """0-based queue position of a queued job (callers hold the lock)."""
        queued = [
            jid
            for jid in self._pending
            if self._jobs[jid].state == JobState.QUEUED
        ]
        return queued.index(job_id) if job_id in queued else None

    # ------------------------------------------------------------ execution

    def _worker_loop(self) -> None:
        """One worker thread: claim the next queued job, execute it."""
        while True:
            with self._cond:
                job = None
                while job is None:
                    if self._stopping:
                        return
                    while self._pending:
                        candidate = self._jobs[self._pending.popleft()]
                        if candidate.state == JobState.QUEUED:
                            job = candidate
                            break
                    if job is None:
                        self._cond.wait(timeout=0.5)
                job.state = JobState.RUNNING
                job.started_unix = time.time()
                token = CancelToken()
                self._tokens[job.id] = token
            self._save(job)
            self._publish_state(job)
            self._execute(job, token)

    def _execute(self, job: Job, token: CancelToken) -> None:
        """Run one job through the strategy driver; settle its state."""
        from repro.harness.strategy import run_strategies

        spec = job.spec
        requeue = False
        progress = None
        try:
            ctx, seeded = self.cache.build_context(spec)
            self.broker.publish(
                job.id,
                {
                    "kind": "warm_cache",
                    "job": job.id,
                    "ts_unix": time.time(),
                    **seeded,
                },
            )
            if spec.jobs > 1:
                progress = _JobProgressSink(self.broker, job.id)
            json_dir = (
                os.path.join(self.json_dir, "jobs", job.id)
                if self.json_dir
                else None
            )
            result = run_strategies(
                spec.experiments,
                ctx=ctx,
                seed=spec.seed,
                scale=spec.scale,
                workloads=spec.workloads,
                engine=spec.engine,
                faults=spec.fault_config(),
                jobs=spec.jobs,
                timeout=spec.timeout,
                retries=spec.retries,
                progress=progress,
                json_dir=json_dir,
                store_path=self.store_path,
                record_history=True,
                argv=["serve", f"job:{job.id}"],
                strategy_options=spec.strategy_options,
                cancel=token,
            )
            self.cache.absorb(ctx, spec.engine)
            job.run_id = result.run_id
            job.state = JobState.DONE
            job.error = None
        except Cancelled as exc:
            job.run_id = getattr(exc, "run_id", job.run_id)
            if self._stopping and token.reason == SHUTDOWN_REASON:
                requeue = True
                job.state = JobState.QUEUED
                job.started_unix = None
                job.error = None
            else:
                job.state = JobState.CANCELLED
                job.error = str(exc)
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            log.warning("job %s failed: %r", job.id, exc)
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        finally:
            with self._cond:
                self._tokens.pop(job.id, None)
                if requeue:
                    self._pending.appendleft(job.id)
            if not requeue:
                job.finished_unix = time.time()
            self._save(job)
            if requeue:
                self._publish_state(job, requeued=True)
            else:
                self._publish_terminal(job)

    # ----------------------------------------------------------- journaling

    def _save(self, job: Job) -> None:
        """Persist the job's current state to the journal (best-effort)."""
        try:
            self.store.save_job(job.row(daemon=self.daemon_id))
        except Exception as exc:  # pragma: no cover - telemetry never fatal
            log.warning("could not journal job %s: %s", job.id, exc)

    def _publish_state(self, job: Job, requeued: bool = False) -> None:
        """Stream a lifecycle transition on the job's SSE channel."""
        event = {
            "kind": "state",
            "job": job.id,
            "state": job.state,
            "ts_unix": time.time(),
        }
        if requeued:
            event["requeued"] = True
        self.broker.publish(job.id, event)

    def _publish_terminal(self, job: Job) -> None:
        """Stream the terminal event and close the job's SSE channel."""
        self.broker.publish(
            job.id,
            {
                "kind": job.state,
                "job": job.id,
                "state": job.state,
                "run_id": job.run_id,
                "error": job.error,
                "ts_unix": time.time(),
            },
        )
        self.broker.close(job.id)
