"""Server-Sent-Events plumbing: per-job event broker + wire format.

The daemon publishes every job's lifecycle transitions, warm-cache
report and worker heartbeats (the PR 6 livestream beats) into an
:class:`EventBroker`. Each job keeps a bounded replay history, so a
late ``GET /jobs/<id>/events`` subscriber first receives everything
already emitted, then live events, then a close sentinel once the job
is terminal — which is exactly the contract ``repro watch`` tails.

Events are plain dicts; the broker stamps a monotonically increasing
``seq`` per job (the SSE ``id:`` field) and :func:`format_sse` renders
one event as an SSE frame (``event:`` carries the event kind so
browser ``EventSource`` listeners can filter).
"""

from __future__ import annotations

import json
import queue as queue_mod
import threading
from collections import deque
from typing import Dict, List, Optional

#: Replay history kept per job (oldest beats drop first).
HISTORY_LIMIT = 2048

#: Sentinel a subscriber queue receives when its job's stream closes.
CLOSE = None


class EventBroker:
    """Fan-out hub: publishers push job events, SSE handlers subscribe.

    Thread-safe; publishers are the queue's worker threads, subscribers
    the HTTP handler threads. Subscriber queues are unbounded but
    short-lived (one per open SSE connection).
    """

    def __init__(self, history_limit: int = HISTORY_LIMIT):
        """Create an empty broker keeping ``history_limit`` events per job."""
        self._lock = threading.Lock()
        self._history: Dict[str, deque] = {}
        self._subscribers: Dict[str, List[queue_mod.Queue]] = {}
        self._seq: Dict[str, int] = {}
        self._closed: set = set()
        self._history_limit = history_limit

    def publish(self, job_id: str, event: dict) -> dict:
        """Stamp ``seq``, append to history, wake every subscriber."""
        with self._lock:
            seq = self._seq.get(job_id, 0) + 1
            self._seq[job_id] = seq
            event = dict(event)
            event["seq"] = seq
            self._history.setdefault(
                job_id, deque(maxlen=self._history_limit)
            ).append(event)
            targets = list(self._subscribers.get(job_id, ()))
        for q in targets:
            q.put(event)
        return event

    def close(self, job_id: str) -> None:
        """Mark the job's stream finished; subscribers get the sentinel."""
        with self._lock:
            if job_id in self._closed:
                return
            self._closed.add(job_id)
            targets = self._subscribers.pop(job_id, [])
        for q in targets:
            q.put(CLOSE)

    def subscribe(
        self, job_id: str, replay: bool = True
    ) -> "queue_mod.Queue":
        """A queue receiving the job's events (history first, then live).

        When the job's stream is already closed the queue holds the
        replayed history followed immediately by the close sentinel, so
        a watcher of a finished job sees the full story and returns.
        """
        q: queue_mod.Queue = queue_mod.Queue()
        with self._lock:
            if replay:
                for event in self._history.get(job_id, ()):
                    q.put(event)
            if job_id in self._closed:
                q.put(CLOSE)
            else:
                self._subscribers.setdefault(job_id, []).append(q)
        return q

    def unsubscribe(self, job_id: str, q: "queue_mod.Queue") -> None:
        """Detach a subscriber queue (idempotent)."""
        with self._lock:
            subs = self._subscribers.get(job_id)
            if subs and q in subs:
                subs.remove(q)

    def history(self, job_id: str) -> List[dict]:
        """The retained events of a job, oldest first."""
        with self._lock:
            return list(self._history.get(job_id, ()))


def format_sse(event: dict) -> bytes:
    """Render one event dict as an SSE frame.

    ``event:`` carries the event's ``kind``, ``id:`` its broker
    ``seq``, and ``data:`` the full JSON payload on one line (JSON
    never embeds raw newlines, so one ``data:`` line suffices).
    """
    kind = event.get("kind", "message")
    seq = event.get("seq")
    lines = [f"event: {kind}"]
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append(f"data: {json.dumps(event, default=str)}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def keep_alive() -> bytes:
    """An SSE comment frame — keeps idle connections from timing out."""
    return b": keep-alive\n\n"
