"""Simulation-as-a-service: the ``repro serve`` daemon (``docs/serving.md``).

A long-lived, stdlib-only HTTP daemon exposing the experiment harness
as an async job API — submit, status, cancel, and a Server-Sent-Events
stream per job — with warm cross-job caches sharing parsed traces and
memoized map-generation stats, a bounded worker pool over the PR 7
``run_strategies`` driver, and job-state journaling in the sqlite
history store so a restarted daemon resumes its backlog.

Layout:

==============  ======================================================
module          contents
==============  ======================================================
``jobs``        :class:`JobSpec` / :class:`Job` model + states
``cache``       :class:`WarmCache` cross-job memo
``sse``         :class:`EventBroker` + SSE wire format
``queue``       :class:`JobQueue` worker scheduling and execution
``server``      HTTP routes + :class:`ServeDaemon`
``cli``         ``repro serve`` / ``submit`` / ``jobs`` / ``watch``
==============  ======================================================

The matching client lives in :mod:`repro.client`.
"""

from repro.serve.cache import WarmCache
from repro.serve.jobs import Job, JobSpec, JobState
from repro.serve.queue import JobQueue
from repro.serve.sse import EventBroker

__all__ = [
    "EventBroker",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "WarmCache",
]
