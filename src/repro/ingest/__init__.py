"""Trace ingestion: streaming external-format adapters with region inference.

Turns external memory traces — valgrind lackey text, dinero ``.din``,
generic CSV/JSONL — into first-class
:class:`~repro.trace.trace.Trace` objects that run through every
existing experiment. Parsing is chunked and gzip-aware (bounded by
``chunk_size``, not trace length), regions are inferred by clustering
the touched address space, and ``[vmin, vmax]`` annotations come from
embedded values when the format carries them or from pluggable
synthetic value models when it does not. See ``docs/workloads.md``.

Quick start::

    from repro.ingest import ingest_trace

    trace = ingest_trace("app.lackey.gz", value_model="gradient")
    record = repro.simulate(trace=trace, config="dopp")
"""

from repro.ingest.base import RawBatch, TraceAdapter, open_trace_file
from repro.ingest.infer import (
    BlockScan,
    InferredRegion,
    annotate_regions,
    cluster_blocks,
    infer_regions,
)
from repro.ingest.pipeline import (
    ADAPTERS,
    IngestOptions,
    adapter_names,
    detect_format,
    get_adapter,
    ingest_trace,
)
from repro.ingest.values import (
    VALUE_MODELS,
    ValueModel,
    get_value_model,
    value_model_names,
)

__all__ = [
    "ADAPTERS",
    "BlockScan",
    "IngestOptions",
    "InferredRegion",
    "RawBatch",
    "TraceAdapter",
    "VALUE_MODELS",
    "ValueModel",
    "adapter_names",
    "annotate_regions",
    "cluster_blocks",
    "detect_format",
    "get_adapter",
    "get_value_model",
    "infer_regions",
    "ingest_trace",
    "open_trace_file",
    "value_model_names",
]
