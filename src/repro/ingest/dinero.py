"""Dinero IV ``.din`` adapter.

The classic two-column dinero input format::

    0 7fffe8a0
    1 00401000
    2 00400500

First column is the access label — ``0`` read, ``1`` write, ``2``
instruction fetch — second is a hex address (bare or ``0x``-prefixed).
Instruction fetches are folded into the next data reference's ``gap``.
Blank lines and ``#`` comments are tolerated; anything else is a
:class:`~repro.errors.TraceFormatError` with path:line context.

Dinero traces are single-threaded and address-only: the pipeline
stripes cores and synthesizes values via the configured value model.
"""

from __future__ import annotations

from repro.errors import TraceFormatError
from repro.ingest.base import TraceAdapter, parse_int

_READ, _WRITE, _IFETCH = "0", "1", "2"


class DineroAdapter(TraceAdapter):
    """Streaming parser for dinero ``.din`` traces."""

    name = "dinero"
    suffixes = (".din",)
    carries_values = False

    def parse_line(self, line: str, lineno: int, path: str, state: dict):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return ()
        parts = stripped.split()
        if len(parts) != 2:
            raise TraceFormatError(
                f"expected '<label> <addr>', got {stripped!r}",
                path=path, line=lineno,
            )
        label, addr_token = parts
        if label not in (_READ, _WRITE, _IFETCH):
            raise TraceFormatError(
                f"unknown dinero label {label!r} (expected 0, 1 or 2)",
                path=path, line=lineno,
            )
        if label == _IFETCH:
            state["gap"] += 1
            return ()
        addr = parse_int(addr_token, 16, "address", lineno, path)
        gap = state["gap"]
        state["gap"] = 0
        return ((0, addr, label == _WRITE, None, gap),)
