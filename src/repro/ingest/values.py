"""Synthetic value models for address-only trace formats.

The Doppelgänger map computation (Sec. 3.7) needs element values and a
declared ``[vmin, vmax]`` per approximate region, but lackey/dinero
traces carry addresses only. A value model fills that hole: it
deterministically synthesizes each inferred region's backing data, so
an address-only trace still exercises map generation, sharing, and the
full approximate insertion path.

Models produce normalized values in ``[0, 1]``; the pipeline rescales
them into the region's ``[vmin, vmax]`` (observed from embedded values
when the format has them, the model's unit range otherwise). The
choice of model governs how much approximate *sharing* the imported
trace exhibits — a deliberate experiment knob, documented in
``docs/workloads.md``:

* ``gradient`` (default) — a smooth ramp across the region with mild
  noise; neighbouring blocks get near-identical averages, so maps
  coalesce the way smooth real data (images, field grids) does.
* ``uniform`` — i.i.d. uniform elements; block averages concentrate
  (law of large numbers) while ranges stay wide, modelling
  unstructured data.
* ``constant`` — every element the midpoint; the degenerate
  everything-shares case, useful as an upper bound on savings.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.errors import ConfigError


class ValueModel:
    """Deterministic per-region element synthesizer (values in [0, 1])."""

    name: str = ""

    def region_values(self, n_elements: int, rng: np.random.Generator) -> np.ndarray:
        """Normalized element values for one region, shape ``(n_elements,)``."""
        raise NotImplementedError


class GradientModel(ValueModel):
    """Smooth ramp plus mild noise — neighbouring blocks look similar."""

    name = "gradient"

    def region_values(self, n_elements: int, rng: np.random.Generator) -> np.ndarray:
        ramp = np.linspace(0.0, 1.0, n_elements, dtype=np.float64)
        noise = rng.normal(0.0, 0.02, size=n_elements)
        return np.clip(ramp + noise, 0.0, 1.0)


class UniformModel(ValueModel):
    """Independent uniform elements — unstructured data."""

    name = "uniform"

    def region_values(self, n_elements: int, rng: np.random.Generator) -> np.ndarray:
        return rng.random(n_elements)


class ConstantModel(ValueModel):
    """Every element the midpoint — maximal sharing upper bound."""

    name = "constant"

    def region_values(self, n_elements: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n_elements, 0.5, dtype=np.float64)


VALUE_MODELS: Dict[str, Type[ValueModel]] = {
    cls.name: cls for cls in (GradientModel, UniformModel, ConstantModel)
}


def value_model_names() -> list:
    """Registered value-model names (default first)."""
    names = sorted(VALUE_MODELS)
    names.remove(GradientModel.name)
    return [GradientModel.name] + names


def get_value_model(name: str) -> ValueModel:
    """Instantiate a value model by name."""
    try:
        return VALUE_MODELS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown value model {name!r}; choose from {value_model_names()}",
            field="value_model",
        ) from None
