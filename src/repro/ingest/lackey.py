"""valgrind lackey ``--trace-mem=yes`` adapter.

Lackey prints one line per instruction fetch and per data reference::

    I  04000000,3
     L 1ffefff968,8
     S 04222cac,8
     M 0421d410,4

``I`` lines (instruction fetches, flush left) are folded into the
``gap`` field of the next data reference — the timing model's count of
non-memory instructions between references. Data lines are indented:
``L`` is a load, ``S`` a store, and ``M`` (modify) expands to a load
followed by a store of the same address. Valgrind's own ``==pid==``
banner lines and blank lines are skipped, since lackey output is
routinely captured with them interleaved.

Lackey traces are single-threaded and address-only: the pipeline
stripes cores and synthesizes values via the configured value model.
"""

from __future__ import annotations

from repro.errors import TraceFormatError
from repro.ingest.base import TraceAdapter, parse_int


class LackeyAdapter(TraceAdapter):
    """Streaming parser for valgrind lackey memory traces."""

    name = "lackey"
    suffixes = (".lackey",)
    carries_values = False

    def parse_line(self, line: str, lineno: int, path: str, state: dict):
        stripped = line.strip()
        if not stripped or stripped.startswith("=="):
            return ()
        parts = stripped.split()
        if len(parts) != 2:
            raise TraceFormatError(
                f"expected '<op> <addr>,<size>', got {stripped!r}",
                path=path, line=lineno,
            )
        op, ref = parts
        if op == "I":
            state["gap"] += 1
            return ()
        if op not in ("L", "S", "M"):
            raise TraceFormatError(
                f"unknown lackey op {op!r} (expected I, L, S or M)",
                path=path, line=lineno,
            )
        addr_part = ref.split(",", 1)[0]
        addr = parse_int(addr_part, 16, "address", lineno, path)
        gap = state["gap"]
        state["gap"] = 0
        if op == "L":
            return ((0, addr, False, None, gap),)
        if op == "S":
            return ((0, addr, True, None, gap),)
        # M: read-modify-write — a load and a store by one instruction.
        return ((0, addr, False, None, gap), (0, addr, True, None, 0))
