"""Streaming adapter substrate for external trace formats.

An adapter turns one external trace file into a stream of
:class:`RawBatch` column chunks. Parsing is line-oriented and
chunk-bounded: an adapter never holds more than ``chunk_size`` parsed
records (plus the one line being parsed) in memory, no matter how large
the input file is, and gzip-compressed inputs are decompressed on the
fly. Malformed input surfaces as a typed
:class:`~repro.errors.TraceFormatError` carrying the file path and
1-based line number, which the CLI maps to exit code 3.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import TraceFormatError


class RawBatch(NamedTuple):
    """One bounded chunk of parsed accesses, column-wise.

    Attributes:
        cores: issuing core per access (int8).
        addrs: byte addresses (int64, not yet block-aligned).
        is_write: store flags (bool).
        values: observed element value per access (float64); NaN for
            address-only formats or records without a value.
        gaps: non-memory instructions since the previous access (int32).
    """

    cores: np.ndarray
    addrs: np.ndarray
    is_write: np.ndarray
    values: np.ndarray
    gaps: np.ndarray

    def __len__(self) -> int:
        return len(self.addrs)


#: One parsed record: (core, addr, is_write, value-or-None, gap).
RawRecord = Tuple[int, int, bool, Optional[float], int]


def open_trace_file(path: str):
    """Open a trace file for streaming text reads, gzip-aware.

    Compression is detected by the ``.gz`` suffix; decompression is
    streamed (never the whole file at once).

    Raises:
        TraceFormatError: the file does not exist or cannot be opened.
    """
    if not os.path.exists(path):
        raise TraceFormatError("no such trace file", path=path)
    try:
        if path.endswith(".gz"):
            return io.TextIOWrapper(
                gzip.open(path, "rb"), encoding="utf-8", errors="replace"
            )
        return open(path, "r", encoding="utf-8", errors="replace")
    except OSError as exc:
        raise TraceFormatError(
            f"cannot open trace file ({exc})", path=path
        ) from exc


class _Accumulator:
    """Bounded record buffer that freezes into :class:`RawBatch` chunks."""

    def __init__(self) -> None:
        self._records: List[RawRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: RawRecord) -> None:
        self._records.append(record)

    def flush(self) -> RawBatch:
        records = self._records
        self._records = []
        n = len(records)
        cores = np.empty(n, dtype=np.int8)
        addrs = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        values = np.full(n, np.nan, dtype=np.float64)
        gaps = np.empty(n, dtype=np.int32)
        for i, (core, addr, is_write, value, gap) in enumerate(records):
            cores[i] = core
            addrs[i] = addr
            writes[i] = is_write
            if value is not None:
                values[i] = value
            gaps[i] = gap
        return RawBatch(cores, addrs, writes, values, gaps)


class TraceAdapter:
    """Base class for external-format adapters.

    Subclasses set :attr:`name` / :attr:`suffixes` and implement
    :meth:`parse_line`, returning zero or more :data:`RawRecord` tuples
    per input line. The chunked streaming loop, gzip handling and
    error context live here.
    """

    #: Registry name (``--format`` value).
    name: str = ""
    #: Filename suffixes (before any ``.gz``) that select this adapter.
    suffixes: Tuple[str, ...] = ()
    #: Whether the format can carry per-access element values.
    carries_values: bool = False

    def begin(self) -> dict:
        """Fresh per-file parser state (adapters stay reusable)."""
        return {"gap": 0}

    def parse_line(self, line: str, lineno: int, path: str, state: dict):
        """Parse one input line into an iterable of records.

        Must raise :class:`~repro.errors.TraceFormatError` (with
        ``path`` and ``lineno``) on malformed input.
        """
        raise NotImplementedError

    def iter_batches(self, path: str, chunk_size: int) -> Iterator[RawBatch]:
        """Stream the file as bounded :class:`RawBatch` chunks.

        Yields batches of at most ``chunk_size`` records; peak parser
        memory is bounded by the chunk, not the file.
        """
        if chunk_size < 1:
            raise TraceFormatError(
                f"chunk size must be >= 1, got {chunk_size}", path=path
            )
        state = self.begin()
        acc = _Accumulator()
        fh = open_trace_file(path)
        try:
            lineno = 0
            try:
                for line in fh:
                    lineno += 1
                    for record in self.parse_line(line, lineno, path, state):
                        acc.add(record)
                        if len(acc) >= chunk_size:
                            yield acc.flush()
            except (OSError, EOFError, UnicodeDecodeError) as exc:
                raise TraceFormatError(
                    f"unreadable trace stream ({exc})", path=path,
                    line=lineno or None,
                ) from exc
        finally:
            fh.close()
        if len(acc):
            yield acc.flush()


def parse_int(token: str, base: int, what: str, lineno: int, path: str) -> int:
    """Parse an integer token, mapping failure to a trace error.

    ``base=0`` auto-detects ``0x`` prefixes (generic formats);
    ``base=16`` reads bare hex (lackey, dinero).
    """
    try:
        value = int(token, base)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"invalid {what} {token!r}", path=path, line=lineno
        ) from exc
    if value < 0:
        raise TraceFormatError(
            f"negative {what} {token!r}", path=path, line=lineno
        )
    return value
