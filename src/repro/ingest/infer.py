"""Region inference over raw address streams.

External traces carry no programmer annotations, yet everything
downstream — map generation over declared ``[vmin, vmax]`` ranges, the
split precise/approximate LLC, the functional error path — is driven by
:class:`~repro.trace.region.Region` metadata. Akiyama (arXiv:2004.01637)
makes the point that identifying *which* data is approximatable is the
hard part of applying approximate memory to real programs; this module
reconstructs a best-effort answer from the access stream itself:

1. **Scan** (streaming, bounded): accumulate per-block read/write
   counts and — for value-carrying formats — first-seen element values.
   State is bounded by the trace's *footprint* (unique blocks), never
   its length.
2. **Cluster**: sort touched blocks and split wherever the gap between
   consecutive blocks exceeds ``gap_blocks`` — contiguous allocations
   (arrays, heap arenas) coalesce into one region, distant ones split.
3. **Annotate**: each cluster becomes a block-aligned ``Region``;
   ``[vmin, vmax]`` comes from observed values when present, else from
   the value model's unit range. The ``approx_min_blocks`` knob keeps
   tiny clusters (locks, counters, stack slots) precise — the
   conservative default for data whose tolerance is unknown.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from repro.errors import TraceFormatError
from repro.ingest.base import RawBatch
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap


@dataclass
class BlockScan:
    """Streaming accumulator over raw batches (footprint-bounded)."""

    block_size: int
    reads: Counter = field(default_factory=Counter)
    writes: Counter = field(default_factory=Counter)
    #: element-address -> first observed value (value-carrying formats).
    elem_values: Dict[int, float] = field(default_factory=dict)
    records: int = 0

    def update(self, batch: RawBatch) -> None:
        """Fold one batch into the per-block statistics."""
        baddrs = batch.addrs & ~np.int64(self.block_size - 1)
        w = batch.is_write
        self.reads.update(baddrs[~w].tolist())
        self.writes.update(baddrs[w].tolist())
        seen = ~np.isnan(batch.values)
        if seen.any():
            elem_values = self.elem_values
            for addr, value in zip(
                batch.addrs[seen].tolist(), batch.values[seen].tolist()
            ):
                elem_values.setdefault(addr, value)
        self.records += len(batch)

    @property
    def has_values(self) -> bool:
        return bool(self.elem_values)

    def touched_blocks(self) -> List[int]:
        """Sorted unique block addresses."""
        return sorted(self.reads.keys() | self.writes.keys())


@dataclass(frozen=True)
class InferredRegion:
    """One clustered span of the address space, pre-annotation."""

    base: int
    size: int
    blocks: int
    reads: int
    writes: int


def cluster_blocks(
    blocks: List[int], block_size: int, gap_blocks: int, scan: BlockScan
) -> List[InferredRegion]:
    """Split sorted block addresses into contiguous clusters.

    A new cluster starts wherever consecutive touched blocks are more
    than ``gap_blocks`` blocks apart. Untouched holes *inside* a
    cluster stay part of the region (they are plausibly the same
    allocation, and the value table must cover them for fills).
    """
    if not blocks:
        return []
    if gap_blocks < 1:
        raise TraceFormatError(f"gap_blocks must be >= 1, got {gap_blocks}")
    max_gap = gap_blocks * block_size
    clusters: List[InferredRegion] = []
    start = prev = blocks[0]
    members = [blocks[0]]

    def close(start: int, end_block: int, members: List[int]) -> None:
        size = end_block + block_size - start
        clusters.append(
            InferredRegion(
                base=start,
                size=size,
                blocks=size // block_size,
                reads=sum(scan.reads.get(b, 0) for b in members),
                writes=sum(scan.writes.get(b, 0) for b in members),
            )
        )

    for block in blocks[1:]:
        if block - prev > max_gap:
            close(start, prev, members)
            start = block
            members = []
        members.append(block)
        prev = block
    close(start, prev, members)
    return clusters


def annotate_regions(
    clusters: List[InferredRegion],
    scan: BlockScan,
    *,
    dtype: DType = DType.F32,
    approx: str = "auto",
    approx_min_blocks: int = 2,
) -> RegionMap:
    """Turn clusters into an annotated :class:`RegionMap`.

    Args:
        dtype: element type every inferred region is declared as.
        approx: ``"auto"`` (clusters of at least ``approx_min_blocks``
            blocks are approximate, smaller ones precise), ``"all"``,
            or ``"none"``.
        approx_min_blocks: the ``auto`` threshold.

    ``[vmin, vmax]`` per approximate region: the span of observed
    element values inside it when the format carried values (widened
    when degenerate), else the value model's unit range ``[0, 1]``.
    """
    if approx not in ("auto", "all", "none"):
        raise TraceFormatError(
            f"approx policy must be auto, all or none, got {approx!r}"
        )
    # Observed value span per cluster (value-carrying formats only).
    spans: Dict[int, List[float]] = {}
    if scan.has_values:
        bases = [c.base for c in clusters]
        for addr, value in scan.elem_values.items():
            i = _cluster_index(bases, addr)
            if i >= 0 and addr < clusters[i].base + clusters[i].size:
                span = spans.get(i)
                if span is None:
                    spans[i] = [value, value]
                elif value < span[0]:
                    span[0] = value
                elif value > span[1]:
                    span[1] = value

    regions = RegionMap()
    for i, cluster in enumerate(clusters):
        is_approx = (
            approx == "all"
            or (approx == "auto" and cluster.blocks >= approx_min_blocks)
        )
        vmin, vmax = 0.0, 1.0
        if i in spans:
            vmin, vmax = spans[i]
            if not vmax > vmin:
                # Degenerate observed span: widen symmetrically so the
                # Region invariant (vmax > vmin) holds.
                vmax = vmin + max(abs(vmin), 1.0)
        regions.add(
            Region(
                name=f"r{i}",
                base=cluster.base,
                size=cluster.size,
                dtype=dtype,
                approx=is_approx,
                vmin=vmin if is_approx else 0.0,
                vmax=vmax if is_approx else 0.0,
            )
        )
    return regions


def _cluster_index(sorted_bases: List[int], addr: int) -> int:
    """Index of the last cluster whose base is <= addr, or -1."""
    import bisect

    return bisect.bisect_right(sorted_bases, addr) - 1


def infer_regions(
    batches: Iterable[RawBatch],
    *,
    block_size: int = 64,
    gap_blocks: int = 64,
    dtype: DType = DType.F32,
    approx: str = "auto",
    approx_min_blocks: int = 2,
) -> "tuple[RegionMap, BlockScan]":
    """One-call inference: scan, cluster and annotate.

    Returns the annotated region map plus the scan (the pipeline reuses
    its element values and record count).
    """
    scan = BlockScan(block_size)
    for batch in batches:
        scan.update(batch)
    clusters = cluster_blocks(scan.touched_blocks(), block_size, gap_blocks, scan)
    regions = annotate_regions(
        clusters, scan, dtype=dtype, approx=approx,
        approx_min_blocks=approx_min_blocks,
    )
    return regions, scan
