"""Generic CSV and JSONL adapters.

The generic formats are the full-fidelity front door for tools that can
emit richer traces than lackey/dinero: they may carry per-access
element values (so region ``[vmin, vmax]`` annotations are derived
from real data instead of a synthetic value model), core ids and
instruction gaps.

CSV — a header row names the columns; ``addr`` is required, ``core``,
``op`` (``r``/``w``, ``0``/``1``, ``l``/``s``), ``value`` and ``gap``
are optional::

    addr,op,core,value,gap
    0x10000,r,0,0.25,8
    0x10040,w,1,0.75,4

JSONL — one object per line with the same keys::

    {"addr": 65536, "op": "r", "value": 0.25, "gap": 8}

Missing optional fields default to core 0, read, no value, gap 0.
"""

from __future__ import annotations

import csv
import io
import json

from repro.errors import TraceFormatError
from repro.ingest.base import TraceAdapter, parse_int

#: Accepted ``op`` spellings.
_READ_OPS = {"r", "l", "0", "read", "load"}
_WRITE_OPS = {"w", "s", "1", "write", "store"}


def _parse_op(token, lineno: int, path: str) -> bool:
    text = str(token).strip().lower()
    if text in _READ_OPS:
        return False
    if text in _WRITE_OPS:
        return True
    raise TraceFormatError(
        f"invalid op {token!r} (expected r/w, l/s or 0/1)",
        path=path, line=lineno,
    )


def _parse_value(token, lineno: int, path: str):
    if token is None:
        return None
    text = str(token).strip()
    if not text:
        return None
    try:
        return float(text)
    except ValueError as exc:
        raise TraceFormatError(
            f"invalid value {token!r}", path=path, line=lineno
        ) from exc


class CSVAdapter(TraceAdapter):
    """Streaming parser for header-first CSV traces."""

    name = "csv"
    suffixes = (".csv",)
    carries_values = True

    def begin(self) -> dict:
        return {"gap": 0, "columns": None}

    def parse_line(self, line: str, lineno: int, path: str, state: dict):
        stripped = line.strip()
        if not stripped:
            return ()
        try:
            row = next(csv.reader(io.StringIO(stripped)))
        except csv.Error as exc:
            raise TraceFormatError(
                f"malformed CSV ({exc})", path=path, line=lineno
            ) from exc
        if state["columns"] is None:
            columns = {name.strip().lower(): i for i, name in enumerate(row)}
            if "addr" not in columns:
                raise TraceFormatError(
                    "CSV header must name an 'addr' column, got "
                    f"{[c.strip() for c in row]}",
                    path=path, line=lineno,
                )
            state["columns"] = columns
            return ()
        columns = state["columns"]
        if len(row) != len(columns):
            raise TraceFormatError(
                f"row has {len(row)} fields, header has {len(columns)}",
                path=path, line=lineno,
            )

        def field(name):
            index = columns.get(name)
            return row[index] if index is not None else None

        addr = parse_int(field("addr"), 0, "address", lineno, path)
        core_token = field("core")
        core = (
            parse_int(core_token, 0, "core", lineno, path)
            if core_token not in (None, "")
            else 0
        )
        op_token = field("op")
        if op_token in (None, ""):
            op_token = field("is_write")
        is_write = (
            _parse_op(op_token, lineno, path)
            if op_token not in (None, "")
            else False
        )
        value = _parse_value(field("value"), lineno, path)
        gap_token = field("gap")
        gap = (
            parse_int(gap_token, 0, "gap", lineno, path)
            if gap_token not in (None, "")
            else 0
        )
        return ((core, addr, is_write, value, gap),)


class JSONLAdapter(TraceAdapter):
    """Streaming parser for JSON-lines traces."""

    name = "jsonl"
    suffixes = (".jsonl", ".ndjson")
    carries_values = True

    def parse_line(self, line: str, lineno: int, path: str, state: dict):
        stripped = line.strip()
        if not stripped:
            return ()
        try:
            obj = json.loads(stripped)
        except ValueError as exc:
            raise TraceFormatError(
                f"malformed JSON ({exc})", path=path, line=lineno
            ) from exc
        if not isinstance(obj, dict):
            raise TraceFormatError(
                f"expected a JSON object per line, got {type(obj).__name__}",
                path=path, line=lineno,
            )
        if "addr" not in obj:
            raise TraceFormatError(
                "record is missing the required 'addr' key",
                path=path, line=lineno,
            )
        addr = parse_int(str(obj["addr"]), 0, "address", lineno, path)
        core = parse_int(str(obj.get("core", 0)), 0, "core", lineno, path)
        op_token = obj.get("op", obj.get("is_write"))
        if isinstance(op_token, bool):
            is_write = op_token
        elif op_token is None:
            is_write = False
        else:
            is_write = _parse_op(op_token, lineno, path)
        value = _parse_value(obj.get("value"), lineno, path)
        gap = parse_int(str(obj.get("gap", 0)), 0, "gap", lineno, path)
        return ((core, addr, is_write, value, gap),)
