"""End-to-end trace ingestion: external file -> first-class ``Trace``.

Two bounded streaming passes over the input. Plain files are simply
re-opened between passes; gzip inputs are decompressed *once* into a
temporary spill file that both passes then read, so the (expensive)
decompression is never repeated (``IngestOptions.spill`` disables the
spill and falls back to re-streaming the ``.gz`` per pass when temp
disk space is tighter than CPU):

1. **Infer** — :mod:`repro.ingest.infer` scans the stream and produces
   the annotated :class:`~repro.trace.region.RegionMap`. Memory here is
   bounded by the parser chunk plus the footprint's per-block counters.
2. **Emit** — the stream is re-parsed chunk by chunk; each chunk is
   block-aligned, region ids are assigned vectorized
   (``np.searchsorted`` over region bases), and the columns are
   appended to a :class:`~repro.trace.trace.TraceBuilder` batch-wise.

Between the passes, every approximate region's backing data is
materialized into the trace's value table: the configured value model
synthesizes normalized elements, rescaled into the region's
``[vmin, vmax]``, and any values embedded in the input overwrite the
synthetic ones at their exact element slots. The initial memory image
then covers every approximate block, which is exactly the invariant
the engines' fill path demands.

The resulting trace is indistinguishable from a workload-generated one:
it memoizes, simulates on both engines, survives
:func:`~repro.trace.io.save_trace` round-trips, and feeds every
experiment the harness has.
"""

from __future__ import annotations

import contextlib
import gzip
import os
import shutil
import tempfile
from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError, TraceFormatError
from repro.ingest.base import TraceAdapter
from repro.ingest.dinero import DineroAdapter
from repro.ingest.generic import CSVAdapter, JSONLAdapter
from repro.ingest.infer import infer_regions
from repro.ingest.lackey import LackeyAdapter
from repro.ingest.values import get_value_model
from repro.trace.record import DType
from repro.trace.trace import Trace, TraceBuilder

#: name -> adapter instance (adapters are stateless and reusable).
ADAPTERS: Dict[str, TraceAdapter] = {
    adapter.name: adapter
    for adapter in (LackeyAdapter(), DineroAdapter(), CSVAdapter(), JSONLAdapter())
}


def adapter_names() -> list:
    """Registered format names."""
    return sorted(ADAPTERS)


def get_adapter(name: str) -> TraceAdapter:
    """Adapter by registry name."""
    try:
        return ADAPTERS[name]
    except KeyError:
        raise TraceFormatError(
            f"unknown trace format {name!r}; choose from {adapter_names()}"
        ) from None


def detect_format(path: str) -> str:
    """Infer the format from the filename (``.gz`` is stripped first)."""
    stem = path[:-3] if path.endswith(".gz") else path
    suffix = os.path.splitext(stem)[1].lower()
    for adapter in ADAPTERS.values():
        if suffix in adapter.suffixes:
            return adapter.name
    raise TraceFormatError(
        f"cannot infer trace format from suffix {suffix!r}; pass an explicit "
        f"format ({adapter_names()})",
        path=path,
    )


@dataclass(frozen=True)
class IngestOptions:
    """Knobs of the ingestion pipeline (see ``docs/workloads.md``).

    Attributes:
        format: adapter name; ``None`` detects from the file suffix.
        chunk_size: records per parser chunk — the bound on parser
            memory, independent of trace length.
        block_size: cache block size the trace is aligned to.
        gap_blocks: region inference splits clusters at address gaps
            larger than this many blocks.
        dtype: declared element type for every inferred region.
        approx: ``auto`` / ``all`` / ``none`` region annotation policy.
        approx_min_blocks: ``auto`` threshold — smaller clusters stay
            precise.
        value_model: synthetic value model for address-only formats.
        seed: value-model seed (ingestion is deterministic under it).
        cores: stripe single-threaded formats round-robin across this
            many cores (1 keeps the stream on core 0).
        name: trace name (defaults to the file's stem).
        spill: decompress ``.gz`` inputs once into a temporary spill
            file shared by both passes (the default); ``False``
            re-streams the compressed input per pass, trading 2x
            decompression CPU for zero temp disk.
    """

    format: Optional[str] = None
    chunk_size: int = 65536
    block_size: int = 64
    gap_blocks: int = 64
    dtype: DType = DType.F32
    approx: str = "auto"
    approx_min_blocks: int = 2
    value_model: str = "gradient"
    seed: int = 7
    cores: int = 1
    name: Optional[str] = None
    spill: bool = True

    def __post_init__(self):
        if self.chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be >= 1, got {self.chunk_size}",
                field="chunk_size",
            )
        bs = self.block_size
        if bs < 8 or bs & (bs - 1):
            raise ConfigError(
                f"block_size must be a power of two >= 8, got {bs}",
                field="block_size",
            )
        if self.gap_blocks < 1:
            raise ConfigError(
                f"gap_blocks must be >= 1, got {self.gap_blocks}",
                field="gap_blocks",
            )
        if not 1 <= self.cores <= 16:
            raise ConfigError(
                f"cores must be in [1, 16], got {self.cores}", field="cores"
            )
        if self.approx_min_blocks < 1:
            raise ConfigError(
                f"approx_min_blocks must be >= 1, got {self.approx_min_blocks}",
                field="approx_min_blocks",
            )


@contextlib.contextmanager
def _spilled(path: str, spill: bool = True):
    """Yield a readable path for ``path``, spilling ``.gz`` to disk.

    Gzip inputs are decompressed exactly once into a temporary spill
    file; both ingestion passes then stream the plain spill instead of
    paying for decompression twice. Plain inputs — or ``spill=False`` —
    pass straight through. The spill file is always deleted on exit.

    Raises:
        TraceFormatError: the input is missing or is not valid gzip.
    """
    if not (spill and path.endswith(".gz")):
        yield path
        return
    if not os.path.exists(path):
        raise TraceFormatError("no such trace file", path=path)
    fd, tmp = tempfile.mkstemp(
        prefix="repro-spill-", suffix="-" + os.path.basename(path[:-3])
    )
    try:
        try:
            with gzip.open(path, "rb") as src, os.fdopen(fd, "wb") as dst:
                shutil.copyfileobj(src, dst, 1 << 20)
        except (OSError, EOFError) as exc:
            raise TraceFormatError(
                f"cannot decompress trace file ({exc})", path=path
            ) from exc
        yield tmp
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp)


def _materialize_values(builder: TraceBuilder, regions, scan, options) -> None:
    """Fill the value table for every approximate region.

    Synthetic model values (rescaled into the region's range) are the
    base; observed element values from value-carrying formats overwrite
    their exact slots. Registration also records the initial memory
    image for every block — the engines' approximate fill invariant.
    """
    model = get_value_model(options.value_model)
    for region_id, region in enumerate(regions):
        if not region.approx:
            continue
        rng = np.random.default_rng((options.seed, region_id))
        n_elements = region.num_blocks(options.block_size) * region.elements_per_block(
            options.block_size
        )
        flat = region.vmin + model.region_values(n_elements, rng) * (
            region.vmax - region.vmin
        )
        if scan.has_values:
            elem_bytes = region.elem_bytes
            for addr, value in scan.elem_values.items():
                if region.base <= addr < region.base + region.size:
                    flat[(addr - region.base) // elem_bytes] = value
        builder.register_block_values(region, flat.astype(np.float64))


def ingest_trace(path: str, options: Optional[IngestOptions] = None, **overrides) -> Trace:
    """Ingest an external trace file into a :class:`Trace`.

    Args:
        path: input file (gzip-compressed inputs end in ``.gz``).
        options: pipeline knobs; keyword overrides are applied on top
            (``ingest_trace(p, chunk_size=1024)``).

    Returns:
        The built trace. ``trace.ingest_stats`` records what streamed
        through: total records, batch count, the largest batch (always
        bounded by ``chunk_size``) and the inferred-region shape.

    Raises:
        TraceFormatError: missing file, undetectable format, malformed
            input (with path:line context), or an empty trace.
        ConfigError: invalid pipeline knobs.
    """
    options = replace(options, **overrides) if options else IngestOptions(**overrides)
    format_name = options.format or detect_format(path)
    adapter = get_adapter(format_name)

    spilled = False
    with _spilled(path, spill=options.spill) as stream_path:
        spilled = stream_path != path
        try:
            # Pass 1: bounded scan -> annotated regions.
            regions, scan = infer_regions(
                adapter.iter_batches(stream_path, options.chunk_size),
                block_size=options.block_size,
                gap_blocks=options.gap_blocks,
                dtype=options.dtype,
                approx=options.approx,
                approx_min_blocks=options.approx_min_blocks,
            )
            if scan.records == 0:
                raise TraceFormatError(
                    "trace contains no memory accesses", path=path
                )

            name = options.name or os.path.basename(
                path[:-3] if path.endswith(".gz") else path
            ).rsplit(".", 1)[0]
            builder = TraceBuilder(
                name, regions=regions, block_size=options.block_size
            )
            _materialize_values(builder, regions, scan, options)

            bases = np.array([r.base for r in regions], dtype=np.int64)
            approx_flags = np.array([r.approx for r in regions], dtype=bool)
            block_mask = np.int64(~(options.block_size - 1))

            # Pass 2: re-stream, assign regions vectorized, append
            # batch-wise.
            batches = 0
            max_batch = 0
            emitted = 0
            for batch in adapter.iter_batches(stream_path, options.chunk_size):
                n = len(batch)
                baddrs = batch.addrs & block_mask
                rids = (
                    np.searchsorted(bases, baddrs, side="right").astype(np.int32)
                    - 1
                )
                cores = batch.cores
                if options.cores > 1:
                    cores = (
                        (np.arange(emitted, emitted + n, dtype=np.int64)
                         % options.cores)
                        .astype(np.int8)
                    )
                builder.append_batch(
                    cores,
                    baddrs,
                    batch.is_write,
                    approx_flags[rids],
                    rids,
                    np.full(n, -1, dtype=np.int64),
                    batch.gaps,
                )
                batches += 1
                max_batch = max(max_batch, n)
                emitted += n
        except TraceFormatError as exc:
            # Parse errors carry the spill path; re-point the context at
            # the file the user actually named.
            if spilled and exc.path == stream_path:
                exc.path = path
            raise

    trace = builder.build()
    trace.ingest_stats = {
        "path": path,
        "format": format_name,
        "records": emitted,
        "batches": batches,
        "max_batch": max_batch,
        "chunk_size": options.chunk_size,
        "regions": len(regions),
        "approx_regions": len(regions.approx_regions()),
        "approx_fraction": regions.approx_fraction(),
        "footprint_bytes": regions.total_bytes(),
        "embedded_values": scan.has_values,
        "value_model": None if scan.has_values else options.value_model,
        "spilled": spilled,
    }
    return trace
