"""Alternative similarity hash functions (the paper's future work).

Sec. 3.7: "Though we use the average and range, other hash functions
are possible; we leave this to future work." This module supplies that
exploration: a small registry of block-summary hash functions that the
extended map generator can combine, each mapping a block of element
values to one scalar in a known output interval:

* ``average`` / ``range`` — the paper's pair.
* ``min`` / ``max`` — order statistics; min+max carries the same
  information as average+range but weights outliers differently.
* ``median`` — robust central tendency; resistant to the single-outlier
  problem that defeats element-wise similarity (Sec. 2).
* ``first`` — the block's first element; a locality-style hash that is
  cheap but order-sensitive.
* ``projection`` — a fixed random-projection (LSH-style) dot product;
  the most discriminating single scalar, at higher hardware cost.

:class:`ExtendedMapGenerator` composes any subset into a map value the
same way the paper composes average+range: the first hash keeps its
full ``M`` bits, every further hash contributes its top ``ceil(M/2)``
bits. The ablation bench ``benchmarks/test_ablation_hash_functions.py``
compares combinations.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.maps import MapConfig
from repro.trace.record import DTYPE_INFO, DType

#: hash name -> (fn(blocks, vmin, vmax) -> values, (lo, hi) output interval
#: expressed as functions of (vmin, vmax)).
HashFn = Callable[[np.ndarray, float, float], np.ndarray]


def _avg(blocks, vmin, vmax):
    return blocks.mean(axis=1)


def _rng(blocks, vmin, vmax):
    return blocks.max(axis=1) - blocks.min(axis=1)


def _min(blocks, vmin, vmax):
    return blocks.min(axis=1)


def _max(blocks, vmin, vmax):
    return blocks.max(axis=1)


def _median(blocks, vmin, vmax):
    return np.median(blocks, axis=1)


def _first(blocks, vmin, vmax):
    return blocks[:, 0]


class _Projection:
    """Seeded random projection onto [vmin, vmax]-normalized weights."""

    def __init__(self, seed: int = 12345):
        self.seed = seed
        self._weights: Dict[int, np.ndarray] = {}

    def __call__(self, blocks, vmin, vmax):
        elems = blocks.shape[1]
        weights = self._weights.get(elems)
        if weights is None:
            rng = np.random.default_rng(self.seed)
            weights = rng.uniform(0.0, 1.0, elems)
            weights /= weights.sum()
            self._weights[elems] = weights
        return blocks @ weights


_REGISTRY: Dict[str, Tuple[HashFn, Callable, Callable]] = {
    "average": (_avg, lambda lo, hi: lo, lambda lo, hi: hi),
    "range": (_rng, lambda lo, hi: 0.0, lambda lo, hi: hi - lo),
    "min": (_min, lambda lo, hi: lo, lambda lo, hi: hi),
    "max": (_max, lambda lo, hi: lo, lambda lo, hi: hi),
    "median": (_median, lambda lo, hi: lo, lambda lo, hi: hi),
    "first": (_first, lambda lo, hi: lo, lambda lo, hi: hi),
    "projection": (_Projection(), lambda lo, hi: lo, lambda lo, hi: hi),
}


def hash_names() -> List[str]:
    """All registered hash-function names."""
    return list(_REGISTRY)


class ExtendedMapGenerator:
    """Map generation from an arbitrary combination of block hashes.

    Mirrors :class:`repro.core.maps.MapGenerator` (clamping, linear
    binning, the integer omit-mapping rule) but composes any hash
    subset. ``("average", "range")`` reproduces the paper's generator
    bit-for-bit in behaviour.

    Args:
        hashes: hash names, first gets the low (full-width) bits.
        bits: the M parameter.
        vmin / vmax: declared element range.
        dtype: element data type.
    """

    def __init__(
        self,
        hashes: Sequence[str] = ("average", "range"),
        bits: int = 14,
        vmin: float = 0.0,
        vmax: float = 1.0,
        dtype: DType = DType.F32,
    ):
        if not hashes:
            raise ValueError("need at least one hash function")
        unknown = [h for h in hashes if h not in _REGISTRY]
        if unknown:
            raise ValueError(f"unknown hash functions {unknown}; see hash_names()")
        if not vmax > vmin:
            raise ValueError(f"need vmax > vmin, got [{vmin}, {vmax}]")
        self.hashes = tuple(hashes)
        self.bits = bits
        self.vmin = float(vmin)
        self.vmax = float(vmax)
        self.dtype = dtype
        info = DTYPE_INFO[dtype]
        self.eff_bits = min(bits, info.bits) if info.is_integer else bits
        self.extra_bits = min(math.ceil(bits / 2), self.eff_bits)

    @property
    def total_bits(self) -> int:
        """Width of the final composed map."""
        return self.eff_bits + self.extra_bits * (len(self.hashes) - 1)

    def compute_batch(self, blocks: np.ndarray) -> np.ndarray:
        """Composed map values for a batch of blocks."""
        blocks = np.asarray(blocks, dtype=np.float64)
        if blocks.ndim == 1:
            blocks = blocks[np.newaxis, :]
        clamped = np.clip(np.nan_to_num(blocks, nan=self.vmin), self.vmin, self.vmax)

        maps = np.zeros(len(clamped), dtype=np.int64)
        shift = 0
        for idx, name in enumerate(self.hashes):
            fn, lo_fn, hi_fn = _REGISTRY[name]
            lo = lo_fn(self.vmin, self.vmax)
            hi = hi_fn(self.vmin, self.vmax)
            span = max(hi - lo, 1e-300)
            norm = (fn(clamped, self.vmin, self.vmax) - lo) / span
            bins = np.clip(
                np.floor(norm * (1 << self.eff_bits)).astype(np.int64),
                0,
                (1 << self.eff_bits) - 1,
            )
            if idx == 0:
                maps |= bins
                shift = self.eff_bits
            else:
                kept = bins >> (self.eff_bits - self.extra_bits)
                maps |= kept << shift
                shift += self.extra_bits
        return maps

    def compute(self, values: np.ndarray) -> int:
        """Composed map value for one block."""
        return int(self.compute_batch(np.asarray(values)[np.newaxis, :])[0])


def savings_for_hashes(
    blocks: np.ndarray,
    hashes: Sequence[str],
    bits: int,
    vmin: float,
    vmax: float,
    dtype: DType = DType.F32,
) -> float:
    """Storage savings (1 - unique/total) under a hash combination."""
    if len(blocks) == 0:
        return 0.0
    gen = ExtendedMapGenerator(hashes, bits, vmin, vmax, dtype)
    maps = gen.compute_batch(blocks)
    return 1.0 - len(np.unique(maps)) / len(blocks)
