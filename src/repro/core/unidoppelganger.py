"""The unified Doppelgänger cache (Sec. 3.8).

uniDoppelgänger lets precise and approximate blocks share one tag array
and one data array. One extra bit per tag and MTag entry distinguishes
the two kinds. For precise blocks the hash computation is forgone: the
map value is simply the physical block address, which points at a
unique data entry, and the prev/next pointers stay null because precise
tags can never share data blocks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.block import BlockState
from repro.core.config import UniDoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache, LLCOutcome
from repro.core.tag_array import NULL_PTR


class UniDoppelgangerCache(DoppelgangerCache):
    """Unified precise + approximate Doppelgänger LLC.

    The approximate path is inherited unchanged from
    :class:`~repro.core.doppelganger.DoppelgangerCache`; this subclass
    adds the precise path keyed by physical block address.
    """

    def __init__(self, config: Optional[UniDoppelgangerConfig] = None, regions=None):
        # The parent constructor only relies on the structural
        # properties the unified config also exposes (tag_entries,
        # data_entries, ways, block size, map, policy).
        super().__init__(config or UniDoppelgangerConfig(), regions)

    # ---------------------------------------------------------- precise path

    def _precise_map(self, addr: int) -> int:
        """Map value of a precise block: its physical block address."""
        return addr // self.block_size

    def insert_block(
        self,
        addr: int,
        approx: bool,
        region_id: int = -1,
        values: Optional[np.ndarray] = None,
        value_id: int = -1,
        dirty: bool = False,
        core: int = 0,
    ) -> LLCOutcome:
        """Install a block of either kind after a memory fetch."""
        if approx:
            if values is None:
                raise ValueError("approximate insertion requires block values")
            return self.insert(addr, region_id, values, value_id, dirty, core)
        return self._insert_precise(addr, value_id, dirty, core)

    def _insert_precise(self, addr: int, value_id: int, dirty: bool, core: int) -> LLCOutcome:
        if self.tags.probe(addr) is not None:
            raise ValueError(f"insert of resident address {addr:#x}")
        writebacks: list = []
        back_invals: list = []

        allocation = self.tags.allocate(addr)
        if allocation.victim is not None:
            self._retire_tag(allocation.victim, writebacks, back_invals)

        entry = allocation.entry
        entry.precise = True
        entry.region_id = -1
        entry.dirty = dirty
        entry.state = BlockState.MODIFIED if dirty else BlockState.SHARED
        entry.sharers = 1 << core
        entry.map_value = self._precise_map(addr)
        self.stats.insertions += 1

        self.stats.mtag_lookups += 1
        data_alloc = self.data.allocate(entry.map_value, precise=True)
        if data_alloc.victim is not None:
            self._evict_data_entry(data_alloc.victim, writebacks, back_invals)
        data_entry = data_alloc.entry
        data_entry.value_id = value_id
        data_entry.head = entry.entry_id
        entry.prev = NULL_PTR
        entry.next = NULL_PTR
        self.stats.data_writes += 1
        return LLCOutcome(
            hit=False, writebacks=tuple(writebacks), back_invalidations=tuple(back_invals)
        )

    def writeback_block(
        self,
        addr: int,
        approx: bool,
        region_id: int = -1,
        values: Optional[np.ndarray] = None,
        value_id: int = -1,
        core: int = 0,
    ) -> LLCOutcome:
        """Handle an L2 dirty writeback of either kind.

        If the resident tag's kind disagrees with the request (an
        address reannotated between precise and approximate), the stale
        tag is invalidated and the block reinserted under its new kind
        — the two key spaces must never cross-link.
        """
        entry = self.tags.probe(addr)
        if entry is not None and entry.precise == approx:
            stale = self.invalidate(addr)
            fresh = self.insert_block(
                addr, approx, region_id=region_id, values=values,
                value_id=value_id, dirty=True, core=core,
            )
            return LLCOutcome(
                hit=False,
                writebacks=stale.writebacks + fresh.writebacks,
                back_invalidations=stale.back_invalidations
                + fresh.back_invalidations,
            )
        if approx:
            if values is None:
                raise ValueError("approximate writeback requires block values")
            return self.writeback(addr, region_id, values, value_id, core)
        entry = self.tags.probe(addr)
        if entry is None:
            return self._insert_precise(addr, value_id, dirty=True, core=core)
        self.stats.tag_lookups += 1
        self.tags.touch(entry)
        entry.dirty = True
        entry.state = BlockState.MODIFIED
        data_entry = self.data.probe(entry.map_value, precise=True)
        if data_entry is not None:
            data_entry.value_id = value_id
            self.data.touch(data_entry)
            self.stats.data_writes += 1
        return LLCOutcome(hit=True)

    # -------------------------------------------------------------- queries

    def precise_occupancy(self) -> int:
        """Resident precise data entries."""
        return sum(1 for e in self.data.resident() if e.precise)

    def approx_occupancy(self) -> int:
        """Resident approximate data entries."""
        return sum(1 for e in self.data.resident() if not e.precise)
