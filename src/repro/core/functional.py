"""Functional Doppelgänger model for application output-error evaluation.

The paper measures output error with a lightweight Pin tool that runs
the *full* application while the cache approximates data (Sec. 4). We
reproduce that methodology: workloads execute their real kernels but
route approximate arrays through this functional model, which applies
exactly the value substitution the hardware performs — every block is
replaced by the *canonical* block of its map value (the first similar
block inserted), subject to a finite, LRU, set-associative data array.

The model is deliberately value-only (no timing, no tag array) so
workloads can evaluate error over full datasets quickly; the
cycle-level model in :mod:`repro.core.doppelganger` covers the
structural behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from repro.core.maps import MapConfig, MapGenerator
from repro.trace.record import DType
from repro.trace.region import Region


class FunctionalDoppelganger:
    """Finite map-keyed store of canonical blocks.

    Keys are ``(dtype, map value)`` so that differently-typed regions
    (a rarity — the paper notes one data type suffices per benchmark)
    never alias. The store is set-associative with per-set LRU,
    mirroring the real data array's geometry.

    Args:
        data_entries: number of canonical blocks (4 K in the base 1/4
            configuration).
        ways: associativity (16).
    """

    def __init__(self, data_entries: int = 4096, ways: int = 16):
        if data_entries % ways:
            raise ValueError(f"{data_entries} entries not divisible into {ways}-way sets")
        self.data_entries = data_entries
        self.ways = ways
        self.num_sets = data_entries // ways
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.lookups = 0
        self.shared_hits = 0
        self.insertions = 0
        self.evictions = 0

    def access(self, dtype: DType, map_value: int, block: np.ndarray) -> np.ndarray:
        """Return the canonical values for ``block``.

        If a block with the same map is resident its values are
        returned (the doppelgänger substitution); otherwise ``block``
        becomes the canonical entry, evicting the set's LRU entry when
        full.
        """
        self.lookups += 1
        # Same multiplicative index hash as the structural MTag array
        # (see repro.core.data_array.MTagDataArray.set_index).
        mixed = (map_value * 2654435761) & 0xFFFFFFFF
        set_idx = (mixed >> 12) % self.num_sets
        # Block length is part of the key so a trailing partial block
        # can never alias (and shape-mismatch) a full block.
        key = (int(dtype), len(block), map_value)
        entries = self._sets[set_idx]
        canonical = entries.get(key)
        if canonical is not None:
            entries.move_to_end(key)
            self.shared_hits += 1
            return canonical
        if len(entries) >= self.ways:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = block.copy()
        self.insertions += 1
        return block

    def occupancy(self) -> int:
        """Resident canonical blocks."""
        return sum(len(s) for s in self._sets)

    def sharing_rate(self) -> float:
        """Fraction of accesses served by an existing canonical block."""
        return self.shared_hits / self.lookups if self.lookups else 0.0


class BlockApproximator:
    """Routes a workload's approximate arrays through the functional model.

    One approximator is created per (configuration, run); it owns one
    shared :class:`FunctionalDoppelganger` — the single data array of
    the hardware — plus one map generator per annotated region.

    Args:
        map_config: map-space knobs (14-bit base).
        data_entries: data-array blocks.
        ways: data-array associativity.
        block_size: line size in bytes.
        faults: optional :class:`~repro.resilience.faults.FaultInjector`
            modelling unprotected approximate storage: blocks arriving
            from DRAM (``dram`` target) and canonical values read from
            the data array (``approx_data`` target, including stuck-at
            cells) are silently corrupted before the application sees
            them. Decisions are counter-based, so the same trace order
            yields the same corruptions on every run.
    """

    def __init__(
        self,
        map_config: Optional[MapConfig] = None,
        data_entries: int = 4096,
        ways: int = 16,
        block_size: int = 64,
        faults=None,
    ):
        self.map_config = map_config or MapConfig()
        self.block_size = block_size
        self.store = FunctionalDoppelganger(data_entries, ways)
        self._generators: Dict[str, MapGenerator] = {}
        self.faults = faults

    def _generator(self, region: Region) -> MapGenerator:
        gen = self._generators.get(region.name)
        if gen is None:
            gen = MapGenerator(self.map_config, region.vmin, region.vmax, region.dtype)
            self._generators[region.name] = gen
        return gen

    def filter(self, array: np.ndarray, region: Region) -> np.ndarray:
        """Apply the doppelgänger substitution to a whole array.

        The array is chunked into cache blocks; each block's map is
        computed (vectorized), then each block is replaced by its
        canonical values. Shape and dtype are preserved; a trailing
        partial block is processed at its natural length.

        Non-approximate regions pass through untouched.
        """
        if not region.approx:
            return array
        gen = self._generator(region)
        arr = np.asarray(array)
        shape, dtype = arr.shape, arr.dtype
        flat = arr.reshape(-1)
        elems = region.elements_per_block(self.block_size)
        n_full = len(flat) // elems

        fi = self.faults
        out = flat.astype(np.float64, copy=True)
        if n_full:
            blocks = out[: n_full * elems].reshape(n_full, elems)
            maps = gen.compute_batch(blocks)
            for i in range(n_full):
                blk = blocks[i]
                if fi is not None:
                    # The fill arriving from DRAM may already be bad
                    # (map generation saw the line the memory sent).
                    blk = fi.corrupt("dram", blk)
                canon = self.store.access(region.dtype, int(maps[i]), blk)
                if fi is not None:
                    # Reading the canonical block out of the
                    # unprotected data array: stuck-at cells always,
                    # transient flips per the configured rates.
                    canon = fi.corrupt("approx_data", canon)
                blocks[i] = canon
        rem = len(flat) - n_full * elems
        if rem:
            tail = out[n_full * elems :]
            map_value = gen.compute(tail)
            blk = fi.corrupt("dram", tail) if fi is not None else tail
            canon = self.store.access(region.dtype, map_value, blk)
            if fi is not None:
                canon = fi.corrupt("approx_data", canon)
            out[n_full * elems :] = canon[:rem]

        if np.issubdtype(dtype, np.integer):
            info = np.iinfo(dtype)
            out = np.clip(np.rint(out), info.min, info.max)
        return out.astype(dtype).reshape(shape)

    def sharing_rate(self) -> float:
        """Fraction of filtered blocks served by a canonical block."""
        return self.store.sharing_rate()


class IdentityApproximator:
    """No-op approximator — the precise baseline execution."""

    def filter(self, array: np.ndarray, region: Region) -> np.ndarray:
        """Return the array unchanged."""
        return array

    def sharing_rate(self) -> float:
        """Always zero: nothing is ever substituted."""
        return 0.0
