"""Sharing-aware data-array replacement (the paper's future work).

Sec. 3.5: "A more specialized replacement algorithm could take into
account additional aspects of the Doppelgänger cache (e.g., the number
of tags associated to a data entry), but the study of such variants of
the replacement policy is left for future work."

This module implements that variant: :class:`TagCountAwarePolicy`
orders victims by (tag-list length, recency) — an entry shared by many
tags is worth more (evicting it invalidates the whole list and may
trigger a burst of writebacks/back-invalidations), so the policy evicts
the least-shared, least-recent entry first.

Wire-up: :func:`make_sharing_aware` converts a built
:class:`~repro.core.doppelganger.DoppelgangerCache` so its data array
consults live tag-list lengths on every victim choice. The ablation
bench ``benchmarks/test_ablation_sharing_aware.py`` measures the
effect.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.replacement import ReplacementPolicy
from repro.core.doppelganger import DoppelgangerCache


class TagCountAwarePolicy(ReplacementPolicy):
    """Victim = fewest sharing tags, ties broken by LRU.

    The policy cannot see tag lists itself; the owning data array gives
    it a ``tag_count(way)`` callback at construction.
    """

    name = "tag-count-aware"

    def __init__(self, ways: int, tag_count: Callable[[int], int]):
        super().__init__(ways)
        self._tag_count = tag_count
        self._order = list(range(ways))  # LRU order, least-recent first

    def on_access(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def on_fill(self, way: int) -> None:
        self.on_access(way)

    def victim(self) -> int:
        # Least shared wins; among equals, least recently used.
        return min(self._order, key=lambda way: (self._tag_count(way), self._order.index(way)))


def make_sharing_aware(cache: DoppelgangerCache) -> DoppelgangerCache:
    """Swap the data array's per-set policies for tag-count-aware ones.

    Returns the same cache instance (mutated) for chaining. Must be
    called before any insertion.
    """
    data = cache.data
    tags = cache.tags

    def counter_for(set_idx: int) -> Callable[[int], int]:
        def tag_count(way: int) -> int:
            entry = data._ways[set_idx][way]
            if entry is None:
                return 0
            return tags.list_length(entry.head)

        return tag_count

    data._policies = [
        TagCountAwarePolicy(data.ways, counter_for(set_idx))
        for set_idx in range(data.num_sets)
    ]
    return cache
