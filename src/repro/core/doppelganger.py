"""The split-design Doppelgänger cache (Secs. 3.1-3.7).

This model implements the full protocol of the paper:

* **Lookups** (Sec. 3.2): address probes the tag array; a hit uses the
  tag's map value to index the MTag array (guaranteed hit) and the
  corresponding data way supplies the block — two sequential tag
  lookups per hit, which the stats record for the energy model.
* **Insertions** (Sec. 3.3): on a miss, once data arrives from memory,
  the block's map is computed (off the critical path). If a similar
  block exists (same map) the new tag joins the head of its
  doubly-linked tag list; otherwise a data entry is allocated, evicting
  a victim entry and *all* tags on its list (writebacks for dirty tags,
  back-invalidations for the inclusive LLC).
* **Writes** (Sec. 3.4): an L2 dirty writeback recomputes the map. Same
  map ⇒ just set the per-tag dirty bit. New map ⇒ move the tag to the
  list of the block with the new map (allocating one if needed); the
  written values are deliberately dropped when a similar block already
  exists.
* **Replacements** (Sec. 3.5): evicting a tag removes it from its list
  and frees the data entry if it was the last sharer; evicting a data
  entry invalidates every tag on its list. LRU in both arrays.
* **Coherence** (Sec. 3.6): MSI state and the directory sharer vector
  live per *tag*; the hierarchy drives protocol actions through the
  returned outcome lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dataclasses_fields
from typing import List, NamedTuple, Optional

import numpy as np

from repro.cache.block import BlockState
from repro.core.config import DoppelgangerConfig
from repro.core.data_array import DataEntry, MTagDataArray
from repro.core.maps import MapRegistry
from repro.core.tag_array import NULL_PTR, TagArray, TagEntry


class LLCOutcome(NamedTuple):
    """Externally visible consequences of one LLC operation.

    Attributes:
        hit: whether the operation hit (lookups only).
        writebacks: block addresses whose dirty tags were evicted and
            must be written to memory.
        back_invalidations: block addresses whose tags were evicted;
            the inclusive hierarchy must invalidate private copies.
    """

    hit: bool
    writebacks: tuple = ()
    back_invalidations: tuple = ()


@dataclass
class DoppelgangerStats:
    """Event counters specific to the Doppelgänger protocol."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    tag_lookups: int = 0
    mtag_lookups: int = 0
    data_reads: int = 0
    data_writes: int = 0
    map_generations: int = 0
    insertions: int = 0
    shared_insertions: int = 0  # insertions that reused a similar block
    tag_evictions: int = 0
    data_evictions: int = 0
    tags_at_data_eviction: int = 0
    dirty_tags_evicted: int = 0
    clean_tags_evicted: int = 0
    writebacks: int = 0
    back_invalidations: int = 0
    write_same_map: int = 0
    write_moved: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0.0 for an untouched cache)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def avg_tags_per_evicted_entry(self) -> float:
        """Average tag-list length at data eviction (paper reports 4.4)."""
        if not self.data_evictions:
            return 0.0
        return self.tags_at_data_eviction / self.data_evictions

    @property
    def dirty_eviction_fraction(self) -> float:
        """Fraction of evicted tags that were dirty (paper reports 5.1%)."""
        total = self.dirty_tags_evicted + self.clean_tags_evicted
        return self.dirty_tags_evicted / total if total else 0.0

    def as_dict(self) -> dict:
        """Counters as a plain dict (for metrics collection)."""
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses_fields(DoppelgangerStats)
            if f.name != "extra"
        }
        out.update(self.extra)
        return out

    def publish(self, registry, prefix: str) -> None:
        """Register these counters as a lazily-collected metrics source."""
        registry.register_source(prefix, self.as_dict)


class DoppelgangerCache:
    """Split-design Doppelgänger LLC for approximate data.

    Args:
        config: structural parameters (Table 1 defaults).
        regions: the workload's RegionMap; approximate regions are
            registered with the map registry (the paper's "range
            information passed to the hardware once at the beginning").
    """

    def __init__(self, config: Optional[DoppelgangerConfig] = None, regions=None):
        self.config = config or DoppelgangerConfig()
        self.tags = TagArray(
            self.config.tag_entries,
            self.config.tag_ways,
            self.config.block_size,
            self.config.policy,
        )
        self.data = MTagDataArray(
            self.config.data_entries, self.config.data_ways, self.config.policy
        )
        self.maps = MapRegistry(self.config.map)
        if regions is not None:
            self.maps.register_regions(regions)
        self.stats = DoppelgangerStats()
        self.block_size = self.config.block_size
        #: Optional :class:`~repro.obs.events.Tracer`; None (the
        #: default) keeps the protocol paths free of tracing cost.
        self.tracer = None
        # Simulation speedup only: a block's map depends solely on its
        # values, so memoize per (region, value-table id). The hardware
        # recomputes every time — stats.map_generations still counts
        # each computation for the energy model.
        self._map_memo: dict = {}

    def publish_metrics(self, registry, prefix: str = "dopp") -> None:
        """Publish protocol counters and array occupancies."""
        self.stats.publish(registry, f"{prefix}.stats")
        registry.register_source(
            f"{prefix}.arrays",
            lambda: {
                "tag_occupied": self.tags.occupied,
                "tag_entries": self.tags.num_entries,
                "data_occupied": self.data.occupied,
                "data_entries": self.data.num_entries,
                "map_memo_entries": len(self._map_memo),
            },
        )

    # ------------------------------------------------------------- lookups

    def lookup(self, addr: int, is_write: bool = False, core: int = 0) -> LLCOutcome:
        """Step 1+2 of Sec. 3.2: probe tag array, then MTag/data.

        A write lookup models a GetX: the tag's state moves to MODIFIED
        and the requesting core becomes the owner. The *values* are not
        changed here — value changes arrive via :meth:`writeback`.
        """
        self.stats.accesses += 1
        self.stats.tag_lookups += 1
        entry = self.tags.probe(addr)
        if entry is None:
            self.stats.misses += 1
            return LLCOutcome(hit=False)

        self.stats.hits += 1
        self.tags.touch(entry)
        # Step 2: locate the data block via the map value. One of the
        # MTags is guaranteed to match.
        data_entry = self.data.probe(entry.map_value, entry.precise)
        if data_entry is None:
            raise RuntimeError(
                f"invariant violated: tag {addr:#x} maps to {entry.map_value} "
                "but no data entry exists"
            )
        self.stats.mtag_lookups += 1
        self.stats.data_reads += 1
        self.data.touch(data_entry)
        if is_write:
            entry.state = BlockState.MODIFIED
            entry.sharers = 1 << core
        else:
            if entry.state is not BlockState.MODIFIED:
                entry.state = BlockState.SHARED
            entry.sharers |= 1 << core
        return LLCOutcome(hit=True)

    def resident_value_id(self, addr: int) -> int:
        """Value-table id of the data the cache would return for ``addr``.

        Because similar blocks share one entry, this may differ from the
        block's precise contents — that substitution *is* the
        approximation error source.
        """
        entry = self.tags.probe(addr)
        if entry is None:
            return -1
        data_entry = self.data.probe(entry.map_value, entry.precise)
        return data_entry.value_id if data_entry is not None else -1

    def _map_for(self, region_id: int, values: np.ndarray, value_id: int) -> int:
        """Map value for a block, memoized by value-table id."""
        if value_id >= 0:
            key = (region_id, value_id)
            map_value = self._map_memo.get(key)
            if map_value is None:
                map_value = self.maps.compute(region_id, values)
                self._map_memo[key] = map_value
            return map_value
        return self.maps.compute(region_id, values)

    def seed_map_memo(self, pairs, values_table, stats=None) -> int:
        """Precompute the map memo for ``(region_id, value_id)`` pairs.

        Trace-level batching: the engines enumerate every pair a run can
        reach and this computes each region's maps in one
        :meth:`~repro.core.maps.MapGenerator.compute_batch` call instead
        of per cold miss. With ``stats`` (the per-pair clamped
        ``(avg, range)`` hashes from
        :func:`~repro.engine.precompute.quantize_region_values`) even
        the reductions are skipped — only the config-dependent binning
        runs, via
        :meth:`~repro.core.maps.MapGenerator.compute_from_stats`, which
        ``compute_batch`` itself routes through, so the two paths are
        identical by construction. Purely a speedup — either path
        equals the per-row computation bit-for-bit, and
        ``map_generations`` still counts every simulated hardware
        computation at its call sites. Returns the number of entries
        added.
        """
        memo = self._map_memo
        by_region: dict = {}
        for rid, vid in pairs:
            if (rid, vid) not in memo:
                by_region.setdefault(rid, []).append(vid)
        added = 0
        for rid, vids in by_region.items():
            gen = self.maps.generator(rid)
            if gen is None:
                continue
            if stats is not None:
                avgs = np.array([stats[(rid, v)][0] for v in vids])
                rngs = np.array([stats[(rid, v)][1] for v in vids])
                for vid, map_value in zip(
                    vids, gen.compute_from_stats(avgs, rngs)
                ):
                    memo[(rid, vid)] = int(map_value)
                    added += 1
                continue
            # Rows of one region share a length, but group defensively.
            by_len: dict = {}
            for vid in vids:
                by_len.setdefault(len(values_table[vid]), []).append(vid)
            for same_len in by_len.values():
                stacked = np.stack([values_table[v] for v in same_len])
                for vid, map_value in zip(same_len, gen.compute_batch(stacked)):
                    memo[(rid, vid)] = int(map_value)
                    added += 1
        return added

    # ----------------------------------------------------------- insertions

    def insert(
        self,
        addr: int,
        region_id: int,
        values: np.ndarray,
        value_id: int = -1,
        dirty: bool = False,
        core: int = 0,
    ) -> LLCOutcome:
        """Sec. 3.3: install a block that arrived from memory.

        Computes the block's map (off the critical path in hardware),
        then either links the new tag onto an existing similar block's
        list or allocates a data entry, evicting a victim entry and its
        whole tag list.
        """
        if self.tags.probe(addr) is not None:
            raise ValueError(f"insert of resident address {addr:#x}")

        writebacks: List[int] = []
        back_invals: List[int] = []

        allocation = self.tags.allocate(addr)
        if allocation.victim is not None:
            self._retire_tag(allocation.victim, writebacks, back_invals)

        entry = allocation.entry
        entry.region_id = region_id
        entry.dirty = dirty
        entry.state = BlockState.MODIFIED if dirty else BlockState.SHARED
        entry.sharers = 1 << core

        map_value = self._map_for(region_id, values, value_id)
        self.stats.map_generations += 1
        self.stats.insertions += 1
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit("map_generation", addr=addr, region=region_id, map=map_value)
        self._attach(entry, map_value, value_id, writebacks, back_invals)
        return LLCOutcome(hit=False, writebacks=tuple(writebacks), back_invalidations=tuple(back_invals))

    def _attach(
        self,
        entry: TagEntry,
        map_value: int,
        value_id: int,
        writebacks: List[int],
        back_invals: List[int],
    ) -> None:
        """Link ``entry`` to the data entry for ``map_value``.

        Reuses an existing similar block when one exists; otherwise
        allocates a data entry (evicting a victim and its tag list).
        """
        entry.map_value = map_value
        self.stats.mtag_lookups += 1
        tr = self.tracer
        data_entry = self.data.probe(map_value)
        if data_entry is not None:
            # Similar data block exists: insert at the head of its list.
            self.stats.shared_insertions += 1
            self._link_head(data_entry, entry)
            self.data.touch(data_entry)
            if tr is not None and tr.enabled:
                tr.emit("tag_insert", addr=entry.addr, map=map_value, shared=True)
            return

        allocation = self.data.allocate(map_value)
        if allocation.victim is not None:
            self._evict_data_entry(allocation.victim, writebacks, back_invals)
        data_entry = allocation.entry
        data_entry.value_id = value_id
        data_entry.head = entry.entry_id
        entry.prev = NULL_PTR
        entry.next = NULL_PTR
        self.stats.data_writes += 1
        if tr is not None and tr.enabled:
            tr.emit("tag_insert", addr=entry.addr, map=map_value, shared=False)

    # --------------------------------------------------------------- writes

    def writeback(
        self, addr: int, region_id: int, values: np.ndarray, value_id: int = -1, core: int = 0
    ) -> LLCOutcome:
        """Sec. 3.4: handle a dirty writeback from the L2.

        Recomputes the map with the written values. If the map is
        unchanged the write is absorbed (silent store or still-similar
        block) and only the dirty bit is set. If it changed, the tag
        moves to the list of the block with the new map; the written
        values are dropped when that block already exists.
        """
        entry = self.tags.probe(addr)
        if entry is None:
            # The tag was evicted while the block sat dirty in the L2
            # (its back-invalidation generated this writeback); treat it
            # as a fresh dirty insertion.
            return self.insert(addr, region_id, values, value_id, dirty=True, core=core)

        writebacks: List[int] = []
        back_invals: List[int] = []
        self.stats.tag_lookups += 1
        self.tags.touch(entry)

        new_map = self._map_for(region_id, values, value_id)
        self.stats.map_generations += 1
        entry.dirty = True
        entry.state = BlockState.MODIFIED

        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit("map_generation", addr=addr, region=region_id, map=new_map)

        if new_map == entry.map_value:
            self.stats.write_same_map += 1
            return LLCOutcome(hit=True)

        self.stats.write_moved += 1
        if tr is not None and tr.enabled:
            tr.emit("tag_move", addr=addr, old_map=entry.map_value, new_map=new_map)
        freed = self._unlink(entry)
        if freed is not None:
            # The tag was the data entry's only sharer; release it.
            self.data.free(freed)
            self.stats.data_evictions += 1
            self.stats.tags_at_data_eviction += 1
        self._attach(entry, new_map, value_id, writebacks, back_invals)
        return LLCOutcome(hit=True, writebacks=tuple(writebacks), back_invalidations=tuple(back_invals))

    # ---------------------------------------------------------- replacements

    def invalidate(self, addr: int) -> LLCOutcome:
        """Externally invalidate one block (testing / protocol support).

        The invalidated address is reported in ``back_invalidations``
        so the inclusive hierarchy purges private copies.
        """
        entry = self.tags.probe(addr)
        if entry is None:
            return LLCOutcome(hit=False)
        writebacks: List[int] = []
        back_invals: List[int] = []
        self.tags.invalidate(entry)
        self._retire_tag(entry, writebacks, back_invals)
        return LLCOutcome(hit=True, writebacks=tuple(writebacks), back_invalidations=tuple(back_invals))

    def _retire_tag(
        self,
        entry: TagEntry,
        writebacks: List[int],
        back_invals: List[int],
        count_back_inval: bool = True,
    ) -> None:
        """Finish evicting a tag already removed from the tag array."""
        self.stats.tag_evictions += 1
        if entry.dirty:
            writebacks.append(entry.addr)
            self.stats.writebacks += 1
            self.stats.dirty_tags_evicted += 1
        else:
            self.stats.clean_tags_evicted += 1
        if count_back_inval:
            back_invals.append(entry.addr)
            self.stats.back_invalidations += 1
        freed = self._unlink(entry)
        if freed is not None:
            self.data.free(freed)
            self.stats.data_evictions += 1
            self.stats.tags_at_data_eviction += 1

    def _evict_data_entry(
        self, victim: DataEntry, writebacks: List[int], back_invals: List[int]
    ) -> None:
        """Sec. 3.5: evicting a data block evicts its whole tag list."""
        tags = list(self.tags.iter_list(victim.head))
        self.stats.data_evictions += 1
        self.stats.tags_at_data_eviction += len(tags)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(
                "data_eviction",
                map=victim.map_value,
                tags=len(tags),
                dirty=sum(1 for t in tags if t.dirty),
            )
        for tag in tags:
            self.stats.tag_evictions += 1
            if tag.dirty:
                writebacks.append(tag.addr)
                self.stats.writebacks += 1
                self.stats.dirty_tags_evicted += 1
            else:
                self.stats.clean_tags_evicted += 1
            back_invals.append(tag.addr)
            self.stats.back_invalidations += 1
            self.tags.invalidate(tag)
        victim.head = NULL_PTR

    # ------------------------------------------------------------- list ops

    def _link_head(self, data_entry: DataEntry, entry: TagEntry) -> None:
        """Insert ``entry`` as the new head of ``data_entry``'s list."""
        old_head = data_entry.head
        entry.prev = NULL_PTR
        entry.next = old_head
        if old_head != NULL_PTR:
            self.tags.entry(old_head).prev = entry.entry_id
        data_entry.head = entry.entry_id

    def _unlink(self, entry: TagEntry) -> Optional[DataEntry]:
        """Remove ``entry`` from its tag list.

        Returns the data entry when the list became empty (the caller
        frees it), else None.
        """
        data_entry = self.data.probe(entry.map_value, entry.precise)
        prev_entry = self.tags.entry(entry.prev)
        next_entry = self.tags.entry(entry.next)
        if prev_entry is not None:
            prev_entry.next = entry.next
        elif data_entry is not None and data_entry.head == entry.entry_id:
            data_entry.head = entry.next
        if next_entry is not None:
            next_entry.prev = entry.prev
        entry.prev = NULL_PTR
        entry.next = NULL_PTR
        if data_entry is not None and data_entry.head == NULL_PTR:
            return data_entry
        return None

    # ------------------------------------------------------------ inspection

    def tags_per_entry_histogram(self) -> dict:
        """Current distribution of tag-list lengths over data entries."""
        hist: dict = {}
        for data_entry in self.data.resident():
            length = self.tags.list_length(data_entry.head)
            hist[length] = hist.get(length, 0) + 1
        return hist

    def current_avg_tags_per_entry(self) -> float:
        """Current mean tags per resident data entry."""
        resident = self.data.resident()
        if not resident:
            return 0.0
        total = sum(self.tags.list_length(e.head) for e in resident)
        return total / len(resident)

    def check_invariants(self) -> None:
        """Raise AssertionError if internal structures are inconsistent.

        Used by tests and the property-based suite: every resident tag
        must be reachable from exactly one data entry's list, and every
        list member's map must equal its data entry's map.
        """
        seen = set()
        for data_entry in self.data.resident():
            prev_id = NULL_PTR
            for tag in self.tags.iter_list(data_entry.head):
                assert tag.entry_id not in seen, "tag on two lists"
                seen.add(tag.entry_id)
                assert tag.map_value == data_entry.map_value, "map mismatch on list"
                assert tag.prev == prev_id, "broken prev pointer"
                prev_id = tag.entry_id
                assert self.tags.probe(tag.addr) is tag, "list tag not resident"
        resident_tags = {t.entry_id for t in self.tags.resident()}
        assert seen == resident_tags, (
            f"orphan tags: {resident_tags - seen}; ghosts: {seen - resident_tags}"
        )
