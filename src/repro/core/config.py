"""Configuration dataclasses mirroring Table 1 of the paper.

The base system: a 2 MB baseline LLC, or — with Doppelgänger — a 1 MB
precise cache plus a 1 MB *tag-equivalent* Doppelgänger cache (16 K
tags) whose approximate data array holds a fraction (1/4 base) of the
tag count. The unified design has a 2 MB tag-equivalent array (32 K
tags) over a data array sized as a fraction of the baseline capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.maps import MapConfig
from repro.errors import ConfigError


def _check_pow2(value: int, label: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigError(
            f"must be a positive power of two, got {value}", field=label
        )


@dataclass(frozen=True)
class DoppelgangerConfig:
    """Split-design Doppelgänger cache parameters (Table 1).

    Attributes:
        tag_entries: tag-array entries (16 K = 1 MB tag-equivalent).
        tag_ways: tag-array associativity.
        data_fraction: approximate data array capacity as a fraction of
            the tag count (1/4 base; the paper sweeps 1/2, 1/4, 1/8).
        data_ways: data-array associativity.
        block_size: line size in bytes.
        map: map-space configuration (14-bit base).
        policy: replacement policy used in both arrays.
    """

    tag_entries: int = 16 * 1024
    tag_ways: int = 16
    data_fraction: float = 0.25
    data_ways: int = 16
    block_size: int = 64
    map: MapConfig = field(default_factory=MapConfig)
    policy: str = "lru"

    def __post_init__(self):
        _check_pow2(self.tag_entries, "tag_entries")
        _check_pow2(self.tag_ways, "tag_ways")
        _check_pow2(self.data_ways, "data_ways")
        _check_pow2(self.block_size, "block_size")
        if not 0 < self.data_fraction <= 1:
            raise ConfigError(
                f"must be in (0, 1], got {self.data_fraction}",
                field="data_fraction",
            )
        if self.data_entries < self.data_ways:
            raise ConfigError(
                f"data array smaller than one set "
                f"({self.data_entries} entries < {self.data_ways} ways)",
                field="data_fraction",
            )

    @property
    def data_entries(self) -> int:
        """Number of data-array blocks."""
        return int(self.tag_entries * self.data_fraction)

    @property
    def tag_sets(self) -> int:
        """Tag-array set count."""
        return self.tag_entries // self.tag_ways

    @property
    def data_sets(self) -> int:
        """Data-array set count."""
        return self.data_entries // self.data_ways

    @property
    def data_capacity_bytes(self) -> int:
        """Approximate data array capacity in bytes."""
        return self.data_entries * self.block_size

    @property
    def tag_equivalent_bytes(self) -> int:
        """Capacity a conventional cache with this many tags would have."""
        return self.tag_entries * self.block_size


@dataclass(frozen=True)
class UniDoppelgangerConfig:
    """Unified Doppelgänger parameters (Sec. 3.8, Table 1).

    ``data_fraction`` here is relative to the *baseline LLC block count*
    (= tag_entries), so 1/2 gives the 1 MB data array of the base
    unified design and 3/4 matches the paper's largest variant.
    """

    tag_entries: int = 32 * 1024
    tag_ways: int = 16
    data_fraction: float = 0.5
    data_ways: int = 16
    block_size: int = 64
    map: MapConfig = field(default_factory=MapConfig)
    policy: str = "lru"

    def __post_init__(self):
        _check_pow2(self.tag_entries, "tag_entries")
        _check_pow2(self.tag_ways, "tag_ways")
        _check_pow2(self.data_ways, "data_ways")
        _check_pow2(self.block_size, "block_size")
        if not 0 < self.data_fraction <= 1:
            raise ConfigError(
                f"must be in (0, 1], got {self.data_fraction}",
                field="data_fraction",
            )
        if self.data_entries < self.data_ways:
            raise ConfigError(
                f"data array smaller than one set "
                f"({self.data_entries} entries < {self.data_ways} ways)",
                field="data_fraction",
            )

    @property
    def data_entries(self) -> int:
        """Number of data-array blocks (fraction of baseline capacity)."""
        return int(self.tag_entries * self.data_fraction)

    @property
    def tag_sets(self) -> int:
        """Tag-array set count."""
        return self.tag_entries // self.tag_ways

    @property
    def data_sets(self) -> int:
        """Data-array set count.

        The 3/4 configuration yields a non-power-of-two count; the data
        array indexes by ``map mod sets``, which handles both cases.
        """
        return self.data_entries // self.data_ways

    @property
    def data_capacity_bytes(self) -> int:
        """Data array capacity in bytes."""
        return self.data_entries * self.block_size
