"""Decoupled tag array of the Doppelgänger cache (Sec. 3.1, Fig. 4).

The tag array is indexed by physical address exactly like a
conventional cache, but each entry additionally carries:

* ``prev`` / ``next`` tag pointers forming the doubly-linked list of
  tags that share one data-array entry (Fig. 5),
* the ``map`` value used to index the MTag/data array,
* per-tag coherence state, dirty bit and directory sharer vector
  (Sec. 3.6: coherence and dirtiness are per *tag*, never per data
  entry).

Entries are addressed by a dense integer ``entry_id`` (set * ways +
way) so that linked-list pointers are plain ints, mirroring the
hardware's 14-bit tag pointers (Table 3).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.cache.block import BlockState
from repro.cache.replacement import make_policy

NULL_PTR = -1


class TagEntry:
    """One Doppelgänger tag-array entry."""

    __slots__ = (
        "addr",
        "tag",
        "set_idx",
        "way",
        "entry_id",
        "state",
        "dirty",
        "sharers",
        "map_value",
        "region_id",
        "prev",
        "next",
        "precise",
    )

    def __init__(self, addr: int, tag: int, set_idx: int, way: int, entry_id: int):
        self.addr = addr
        self.tag = tag
        self.set_idx = set_idx
        self.way = way
        self.entry_id = entry_id
        self.state = BlockState.SHARED
        self.dirty = False
        self.sharers = 0
        self.map_value = NULL_PTR
        self.region_id = -1
        self.prev = NULL_PTR
        self.next = NULL_PTR
        self.precise = False

    def __repr__(self) -> str:
        return (
            f"TagEntry(addr={self.addr:#x}, map={self.map_value}, "
            f"dirty={self.dirty}, prev={self.prev}, next={self.next})"
        )


class TagAllocation(NamedTuple):
    """Result of allocating a tag entry.

    ``victim`` is the evicted entry when the set was full (already
    removed from the array but its linked-list pointers untouched so the
    caller can unlink it from its data entry's list first).
    """

    entry: TagEntry
    victim: Optional[TagEntry]


class TagArray:
    """Address-indexed, set-associative array of :class:`TagEntry`.

    Args:
        entries: total tag count (16 K in the base design).
        ways: associativity (16).
        block_size: line size for address decomposition.
        policy: replacement policy name.
    """

    def __init__(self, entries: int, ways: int, block_size: int = 64, policy: str = "lru"):
        if entries % ways:
            raise ValueError(f"{entries} entries not divisible into {ways}-way sets")
        self.num_entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self.block_size = block_size
        self._entries: List[Optional[TagEntry]] = [None] * entries
        self._lookup: List[dict] = [dict() for _ in range(self.num_sets)]
        self._policies = [make_policy(policy, ways) for _ in range(self.num_sets)]
        self.occupied = 0

    # ---------------------------------------------------------- addressing

    def set_index(self, addr: int) -> int:
        """Tag-array set index of a byte address."""
        return (addr // self.block_size) % self.num_sets

    def addr_tag(self, addr: int) -> int:
        """Address tag of a byte address."""
        return (addr // self.block_size) // self.num_sets

    # ------------------------------------------------------------- queries

    def entry(self, entry_id: int) -> Optional[TagEntry]:
        """Entry by dense id (linked-list pointer dereference)."""
        if entry_id == NULL_PTR:
            return None
        return self._entries[entry_id]

    def probe(self, addr: int) -> Optional[TagEntry]:
        """Look up an address without touching replacement state."""
        set_idx = self.set_index(addr)
        return self._lookup[set_idx].get(self.addr_tag(addr))

    def touch(self, entry: TagEntry) -> None:
        """Mark ``entry`` most-recently used."""
        self._policies[entry.set_idx].on_access(entry.way)

    def resident(self) -> List[TagEntry]:
        """All valid entries (test/diagnostic helper)."""
        return [e for e in self._entries if e is not None]

    # ----------------------------------------------------------- allocation

    def allocate(self, addr: int) -> TagAllocation:
        """Allocate an entry for ``addr``, evicting an LRU victim if full.

        The returned entry has default state (SHARED, clean, null
        pointers, no map); the caller fills it in. Raises if the address
        is already resident — callers must probe first.
        """
        set_idx = self.set_index(addr)
        tag = self.addr_tag(addr)
        lookup = self._lookup[set_idx]
        if tag in lookup:
            raise ValueError(f"address {addr:#x} already resident in tag array")

        victim = None
        if len(lookup) < self.ways:
            used = {e.way for e in lookup.values()}
            way = next(w for w in range(self.ways) if w not in used)
        else:
            way = self._policies[set_idx].victim()
            entry_id = set_idx * self.ways + way
            victim = self._entries[entry_id]
            self._remove_resident(victim)

        entry_id = set_idx * self.ways + way
        entry = TagEntry(addr, tag, set_idx, way, entry_id)
        self._entries[entry_id] = entry
        lookup[tag] = entry
        self._policies[set_idx].on_fill(way)
        self.occupied += 1
        return TagAllocation(entry=entry, victim=victim)

    def _remove_resident(self, entry: TagEntry) -> None:
        """Drop ``entry`` from the array bookkeeping."""
        del self._lookup[entry.set_idx][entry.tag]
        self._entries[entry.entry_id] = None
        self.occupied -= 1

    def invalidate(self, entry: TagEntry) -> None:
        """Invalidate a resident entry (replacement state freed too)."""
        if self._entries[entry.entry_id] is not entry:
            raise ValueError(f"entry {entry!r} is not resident")
        self._remove_resident(entry)
        self._policies[entry.set_idx].on_invalidate(entry.way)

    # ------------------------------------------------------------ list ops

    def list_length(self, head_id: int) -> int:
        """Length of the linked list starting at ``head_id``."""
        count = 0
        cur = head_id
        while cur != NULL_PTR:
            count += 1
            cur = self._entries[cur].next
        return count

    def iter_list(self, head_id: int):
        """Iterate the tag entries of a linked list."""
        cur = head_id
        while cur != NULL_PTR:
            entry = self._entries[cur]
            cur = entry.next
            yield entry
