"""Approximate-similarity map generation (Sec. 3.7 of the paper).

A *map* identifies approximately similar blocks: blocks with equal maps
share one data-array entry. Map generation is a two-step process:

1. **Hash.** Two hash functions aggregate the block's element values:
   the *average* and the *range* (max minus min). Values are clamped to
   the programmer-declared ``[vmin, vmax]`` before hashing, as the paper
   specifies for out-of-range runtime values.
2. **Mapping.** Each hash is linearly binned into an ``M``-bit integer:
   ``vmin`` maps to 0, ``vmax`` to ``2**M - 1``, dividing the hash space
   into ``2**M`` equally spaced bins. If ``M`` exceeds the element
   type's bit width (e.g. 8-bit pixels with M = 14) the mapping step is
   omitted and the hash itself is used, avoiding always-zero low bits
   and the resulting data-array set conflicts.

The final map concatenates the average map (low bits) with the top
``ceil(M/2)`` bits of the range map (footnote 4), giving 21 bits for the
base ``M = 14`` — exactly the per-tag "Map" field width in Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.trace.record import DTYPE_INFO, DType


@dataclass(frozen=True)
class MapConfig:
    """Map-space design knobs.

    Attributes:
        bits: the M parameter — size of the map space per hash.
            The paper evaluates 12, 13 and 14 (base design: 14).
        use_average: include the average hash (ablation knob).
        use_range: include the range hash (ablation knob).
    """

    bits: int = 14
    use_average: bool = True
    use_range: bool = True

    def __post_init__(self):
        if self.bits < 0:
            raise ConfigError(
                f"map bits must be non-negative, got {self.bits}", field="bits"
            )
        if not (self.use_average or self.use_range):
            raise ConfigError(
                "at least one hash function must be enabled",
                field="use_average/use_range",
            )

    @property
    def range_keep_bits(self) -> int:
        """High-order bits of the range map kept in the final map."""
        return math.ceil(self.bits / 2)


class MapGenerator:
    """Computes map values for blocks of a single annotated data type.

    One generator exists per (data type, declared range) registration —
    the paper's model of min/max values sent to the LLC and buffered
    there at program start.

    Args:
        config: map-space configuration.
        vmin: declared minimum element value.
        vmax: declared maximum element value.
        dtype: element data type (integer types may trigger the
            omit-mapping rule).
    """

    def __init__(self, config: MapConfig, vmin: float, vmax: float, dtype: DType = DType.F32):
        if not vmax > vmin:
            raise ValueError(f"need vmax > vmin, got [{vmin}, {vmax}]")
        self.config = config
        self.vmin = float(vmin)
        self.vmax = float(vmax)
        self.dtype = dtype
        info = DTYPE_INFO[dtype]
        # Omit-mapping rule: never use more map bits than the data type
        # has; otherwise the low bits of the map would always be zero.
        if info.is_integer:
            self.avg_bits = min(config.bits, info.bits)
            self.range_bits = min(config.bits, info.bits)
        else:
            self.avg_bits = config.bits
            self.range_bits = config.bits
        self.range_keep = min(config.range_keep_bits, self.range_bits)

    # ------------------------------------------------------------ properties

    @property
    def total_bits(self) -> int:
        """Width of the final map value."""
        bits = 0
        if self.config.use_average:
            bits += self.avg_bits
        if self.config.use_range:
            bits += self.range_keep
        return bits

    @property
    def map_space_size(self) -> int:
        """Number of distinct map values."""
        return 1 << self.total_bits

    # -------------------------------------------------------------- hashing

    def _bin(self, hashes: np.ndarray, lo: float, hi: float, bits: int) -> np.ndarray:
        """Linearly bin hash values in [lo, hi] into ``2**bits`` bins."""
        if bits == 0:
            return np.zeros_like(hashes, dtype=np.int64)
        span = hi - lo
        norm = (np.asarray(hashes, dtype=np.float64) - lo) / span
        bins = np.floor(norm * (1 << bits)).astype(np.int64)
        return np.clip(bins, 0, (1 << bits) - 1)

    def block_stats(self, blocks: np.ndarray):
        """Clamped ``(avgs, ranges)`` per block — the hash step.

        This is the config-independent half of map generation: the
        reductions depend only on the declared ``[vmin, vmax]`` range
        (a property of the region), never on the map-space knobs, so
        the results can be quantized once per trace and rebinned under
        any :class:`MapConfig` (see
        :func:`repro.engine.precompute.quantize_region_values`).
        """
        blocks = np.asarray(blocks, dtype=np.float64)
        if blocks.ndim == 1:
            blocks = blocks[np.newaxis, :]
        clamped = np.clip(np.nan_to_num(blocks, nan=self.vmin), self.vmin, self.vmax)
        avgs = clamped.mean(axis=1)
        rngs = clamped.max(axis=1) - clamped.min(axis=1)
        return avgs, rngs

    def compute_from_stats(self, avgs: np.ndarray, rngs: np.ndarray) -> np.ndarray:
        """Map values from precomputed clamped (avg, range) hashes.

        The mapping step alone: linear binning plus the footnote-4
        concatenation. ``compute_batch`` routes through here, so maps
        built from quantized stats are structurally identical to maps
        built from raw block values.
        """
        maps = np.zeros(len(avgs), dtype=np.int64)
        shift = 0
        if self.config.use_average:
            maps |= self._bin(avgs, self.vmin, self.vmax, self.avg_bits)
            shift = self.avg_bits
        if self.config.use_range:
            range_map = self._bin(rngs, 0.0, self.vmax - self.vmin, self.range_bits)
            kept = range_map >> (self.range_bits - self.range_keep)
            maps |= kept << shift
        return maps

    def compute_batch(self, blocks: np.ndarray) -> np.ndarray:
        """Map values for a batch of blocks.

        Args:
            blocks: array of shape ``(n_blocks, elements_per_block)``.

        Returns:
            int64 array of ``n_blocks`` map values.
        """
        avgs, rngs = self.block_stats(blocks)
        return self.compute_from_stats(avgs, rngs)

    def compute(self, values: np.ndarray) -> int:
        """Map value for a single block."""
        return int(self.compute_batch(np.asarray(values)[np.newaxis, :])[0])

    def flop_count(self, elements: int = 16) -> int:
        """FP multiply-add operations per map generation.

        Sec. 5.6's conservative accounting: computing the average, the
        range and the mapping steps for a 64-byte block of at most 16
        floating-point elements takes 21 multiply-add operations (a
        fused unit covers an add and a scale per op). Scales linearly
        for other element counts.
        """
        return max(1, round(21 * elements / 16))


class MapRegistry:
    """Per-data-type map generators registered at the LLC.

    Sec. 4.1: the application sends, once at startup, the expected value
    range for each approximate data type; the LLC buffers them in a
    small register set. Trace regions carry a region id; the registry
    resolves a region to its generator.
    """

    def __init__(self, config: MapConfig):
        self.config = config
        self._by_region: Dict[int, MapGenerator] = {}

    def register(self, region_id: int, vmin: float, vmax: float, dtype: DType) -> MapGenerator:
        """Register the declared range for one annotated region."""
        gen = MapGenerator(self.config, vmin, vmax, dtype)
        self._by_region[region_id] = gen
        return gen

    def register_regions(self, regions) -> None:
        """Register every approximate region of a RegionMap."""
        for region_id, region in enumerate(regions):
            if region.approx:
                self.register(region_id, region.vmin, region.vmax, region.dtype)

    def generator(self, region_id: int) -> Optional[MapGenerator]:
        """Generator for ``region_id``, or None if not approximate."""
        return self._by_region.get(region_id)

    def compute(self, region_id: int, values: np.ndarray) -> int:
        """Map value for a block belonging to ``region_id``."""
        gen = self._by_region.get(region_id)
        if gen is None:
            raise KeyError(f"region {region_id} has no registered map generator")
        return gen.compute(values)

    def __len__(self) -> int:
        return len(self._by_region)
