"""Map-indexed MTag + data array of the Doppelgänger cache (Fig. 4).

The approximate data array is "nearly identical to a conventional data
cache (with separate tags and data subarrays), except it is indexed by
the map value as opposed to the physical address" (Sec. 3.1). The
lower portion of the map is the set index; the upper portion is the
*map tag* stored in the separate MTag array. Each entry also holds a
tag pointer to the head of the doubly-linked tag list sharing it.

For the unified design (Sec. 3.8), an entry carries a precise bit; a
precise entry's key is derived from the physical block address instead
of a value map, so precise blocks never alias.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.cache.replacement import make_policy
from repro.core.tag_array import NULL_PTR


class DataEntry:
    """One MTag/data-array entry."""

    __slots__ = ("map_value", "mtag", "set_idx", "way", "head", "value_id", "precise")

    def __init__(self, map_value: int, mtag: int, set_idx: int, way: int):
        self.map_value = map_value
        self.mtag = mtag
        self.set_idx = set_idx
        self.way = way
        self.head = NULL_PTR  # tag pointer: head of the sharing tag list
        self.value_id = -1  # canonical block contents (value-table index)
        self.precise = False

    def __repr__(self) -> str:
        return (
            f"DataEntry(map={self.map_value}, set={self.set_idx}, "
            f"way={self.way}, head={self.head}, precise={self.precise})"
        )


class DataAllocation(NamedTuple):
    """Result of allocating a data entry.

    ``victim`` is the evicted entry (with its tag list still intact via
    ``head``) when the set was full; the caller must invalidate every
    tag on that list before reusing the slot — which has already been
    re-purposed for the new entry by the time this returns, so the
    victim object is detached.
    """

    entry: DataEntry
    victim: Optional[DataEntry]


class MTagDataArray:
    """Set-associative array indexed by map value.

    Keys are map values for approximate entries; the unified design
    additionally stores precise entries keyed by block address with a
    distinguishing precise bit (modelled here as separate key spaces).

    Args:
        entries: number of data blocks (4 K in the base 1/4 design).
        ways: associativity (16).
        policy: replacement policy name.
    """

    def __init__(self, entries: int, ways: int, policy: str = "lru"):
        if entries % ways:
            raise ValueError(f"{entries} entries not divisible into {ways}-way sets")
        self.num_entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self._ways: List[List[Optional[DataEntry]]] = [
            [None] * ways for _ in range(self.num_sets)
        ]
        self._lookup: List[dict] = [dict() for _ in range(self.num_sets)]
        self._policies = [make_policy(policy, ways) for _ in range(self.num_sets)]
        self.occupied = 0

    # ---------------------------------------------------------- addressing

    def _key(self, map_value: int, precise: bool) -> tuple:
        return (precise, map_value)

    #: Knuth's multiplicative hash constant (2^32 / golden ratio).
    _MIX = 2654435761

    def set_index(self, map_value: int) -> int:
        """Set index: multiplicatively hashed map bits.

        The paper indexes with "the lower portion of the map", but for
        narrow integer data types (e.g. jpeg's 8-bit pixels under the
        omit-mapping rule) the low map bits *are* the block average,
        which concentrates heavily for smooth data; and integer ranges
        leave the low bin bits structured (multiples of four for
        canneal's grid coordinates), collapsing the effective set
        count. A Fibonacci-style multiplicative hash — a standard
        index-hashing technique with no storage cost — spreads both;
        DESIGN.md records the deviation.
        """
        mixed = (map_value * self._MIX) & 0xFFFFFFFF
        return (mixed >> 12) % self.num_sets

    def map_tag(self, map_value: int) -> int:
        """Map tag: upper portion of the map."""
        return map_value // self.num_sets

    # ------------------------------------------------------------- queries

    def probe(self, map_value: int, precise: bool = False) -> Optional[DataEntry]:
        """Look up a map value without touching replacement state."""
        set_idx = self.set_index(map_value)
        return self._lookup[set_idx].get(self._key(map_value, precise))

    def touch(self, entry: DataEntry) -> None:
        """Mark ``entry`` most-recently used."""
        self._policies[entry.set_idx].on_access(entry.way)

    def resident(self) -> List[DataEntry]:
        """All valid entries (test/diagnostic helper)."""
        return [e for row in self._ways for e in row if e is not None]

    # ----------------------------------------------------------- allocation

    def allocate(self, map_value: int, precise: bool = False) -> DataAllocation:
        """Allocate an entry for ``map_value``; evict LRU victim if full.

        Raises if the map value is already resident — callers must probe
        first (Sec. 3.3 reuses an existing similar block instead).
        """
        set_idx = self.set_index(map_value)
        lookup = self._lookup[set_idx]
        key = self._key(map_value, precise)
        if key in lookup:
            raise ValueError(f"map {map_value} already resident in data array")

        row = self._ways[set_idx]
        victim = None
        way = next((w for w in range(self.ways) if row[w] is None), None)
        if way is None:
            way = self._policies[set_idx].victim()
            victim = row[way]
            del lookup[self._key(victim.map_value, victim.precise)]
            row[way] = None
            self.occupied -= 1

        entry = DataEntry(map_value, self.map_tag(map_value), set_idx, way)
        entry.precise = precise
        row[way] = entry
        lookup[key] = entry
        self._policies[set_idx].on_fill(way)
        self.occupied += 1
        return DataAllocation(entry=entry, victim=victim)

    def free(self, entry: DataEntry) -> None:
        """Release an entry (its last tag was evicted)."""
        row = self._ways[entry.set_idx]
        if row[entry.way] is not entry:
            raise ValueError(f"entry {entry!r} is not resident")
        row[entry.way] = None
        del self._lookup[entry.set_idx][self._key(entry.map_value, entry.precise)]
        self._policies[entry.set_idx].on_invalidate(entry.way)
        self.occupied -= 1
