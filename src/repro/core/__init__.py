"""The paper's contribution: the Doppelgänger cache.

Modules:

* :mod:`repro.core.maps` — approximate-similarity map generation
  (Sec. 3.7): average+range hashes, linear binning into an M-bit map
  space, clamping to the declared value range.
* :mod:`repro.core.tag_array` — decoupled, address-indexed tag array
  whose entries carry prev/next tag pointers and a map value.
* :mod:`repro.core.data_array` — map-indexed MTag + data array whose
  entries point at the head of the tag linked list sharing them.
* :mod:`repro.core.doppelganger` — the split-LLC Doppelgänger cache
  (Secs. 3.1-3.6): lookups, insertions, writes, replacements,
  per-tag coherence bookkeeping.
* :mod:`repro.core.unidoppelganger` — the unified design (Sec. 3.8)
  holding precise and approximate blocks in one array pair.
* :mod:`repro.core.functional` — fast functional model used for
  application output-error evaluation (the paper's Pin methodology).
* :mod:`repro.core.config` — configuration dataclasses mirroring
  Table 1.
"""

from repro.core.config import DoppelgangerConfig, UniDoppelgangerConfig
from repro.core.maps import MapConfig, MapGenerator, MapRegistry
from repro.core.doppelganger import DoppelgangerCache
from repro.core.unidoppelganger import UniDoppelgangerCache
from repro.core.functional import BlockApproximator, FunctionalDoppelganger, IdentityApproximator
from repro.core.replacement_ext import TagCountAwarePolicy, make_sharing_aware

__all__ = [
    "BlockApproximator",
    "DoppelgangerCache",
    "DoppelgangerConfig",
    "FunctionalDoppelganger",
    "IdentityApproximator",
    "MapConfig",
    "MapGenerator",
    "MapRegistry",
    "TagCountAwarePolicy",
    "UniDoppelgangerCache",
    "UniDoppelgangerConfig",
    "make_sharing_aware",
]
