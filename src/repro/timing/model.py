"""First-order analytical performance model.

The standard back-of-envelope decomposition::

    cycles =  instructions / issue_width          (compute)
            + L1 misses  x L2 latency             (read flow only)
            + L2 misses  x LLC latency
            + LLC misses x effective DRAM penalty

The effective DRAM penalty interpolates between the full latency
(isolated misses) and the bandwidth interval (bursts), using the same
MLP parameters as the simulator. The model consumes a finished
:class:`~repro.hierarchy.system.SystemResult` (it needs the miss flow),
so it is a *decomposition check*, not a predictor — its job is to
confirm the simulator's cycle count is explained by the events it
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hierarchy.system import SystemConfig, SystemResult


@dataclass
class CycleEstimate:
    """Analytical cycle decomposition."""

    compute: float
    l2_flow: float
    llc_flow: float
    memory_flow: float

    @property
    def total(self) -> float:
        """Estimated total cycles (single-stream)."""
        return self.compute + self.l2_flow + self.llc_flow + self.memory_flow

    def breakdown(self) -> dict:
        """Components as a dict."""
        return {
            "compute": self.compute,
            "l2_flow": self.l2_flow,
            "llc_flow": self.llc_flow,
            "memory_flow": self.memory_flow,
        }


class AnalyticalModel:
    """First-order CPI model over a finished simulation's event counts.

    Args:
        config: the system parameters the simulation used.
        burst_fraction: fraction of LLC misses assumed to overlap in
            bursts (pay the bandwidth interval instead of full
            latency). The simulator measures this dynamically; 0.7 is a
            reasonable default for streaming-heavy workloads.
        mem_latency: DRAM latency in cycles.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        burst_fraction: float = 0.7,
        mem_latency: int = 160,
    ):
        if not 0.0 <= burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be in [0, 1]")
        self.config = config or SystemConfig()
        self.burst_fraction = burst_fraction
        self.mem_latency = mem_latency

    def effective_miss_penalty(self) -> float:
        """Expected cycles per LLC read miss under the MLP assumption."""
        cfg = self.config
        return (
            self.burst_fraction * cfg.mem_overlap_interval
            + (1.0 - self.burst_fraction) * self.mem_latency
        )

    def estimate(self, result: SystemResult, num_cores: int = 4) -> CycleEstimate:
        """Decompose a simulation result into first-order components.

        Produces a per-core estimate assuming perfectly balanced cores
        (divide aggregate flows by the core count).
        """
        cfg = self.config
        l1 = result.l1_stats
        l2 = result.l2_stats
        # Only loads stall the core in the simulator's model.
        read_frac_l1 = l1.read_accesses / l1.accesses if l1.accesses else 1.0
        read_frac_l2 = l2.read_accesses / l2.accesses if l2.accesses else 1.0
        l1_read_misses = l1.misses * read_frac_l1
        l2_read_misses = l2.misses * read_frac_l2
        llc_read_misses = result.llc_misses * read_frac_l2

        compute = result.instructions / cfg.issue_width
        l2_flow = l1_read_misses * cfg.l2_latency
        llc_flow = l2_read_misses * cfg.llc_latency
        memory_flow = llc_read_misses * self.effective_miss_penalty()
        return CycleEstimate(
            compute=compute / num_cores,
            l2_flow=l2_flow / num_cores,
            llc_flow=llc_flow / num_cores,
            memory_flow=memory_flow / num_cores,
        )


def validate_against_simulation(
    result: SystemResult,
    config: Optional[SystemConfig] = None,
    num_cores: int = 4,
    tolerance: float = 3.0,
) -> float:
    """Ratio of simulated to analytically estimated cycles.

    Returns ``simulated / estimated``; raises AssertionError when the
    ratio leaves ``[1/tolerance, tolerance]`` — the tripwire for
    structurally broken simulations.
    """
    model = AnalyticalModel(config=config)
    estimate = model.estimate(result, num_cores=num_cores)
    if estimate.total <= 0:
        raise ValueError("estimate is degenerate (no work)")
    ratio = result.cycles / estimate.total
    assert 1.0 / tolerance <= ratio <= tolerance, (
        f"simulated cycles {result.cycles} vs analytical {estimate.total:.0f} "
        f"(ratio {ratio:.2f}) outside [{1 / tolerance:.2f}, {tolerance:.2f}]: "
        f"breakdown {estimate.breakdown()}"
    )
    return ratio
