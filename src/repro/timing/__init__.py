"""Analytical timing: first-order performance models.

The cycle-accounting simulation in :mod:`repro.hierarchy.system` is the
source of truth for runtimes; this package provides the closed-form
first-order model architects use for sanity checks —
``CPI = CPI_core + miss-flow x effective penalties`` — and a
cross-validation helper that compares the two. When the analytical
estimate and the simulator diverge wildly, something structural is off
(a thrashing array, a pathological trace); the test suite uses it as a
tripwire.
"""

from repro.timing.model import AnalyticalModel, CycleEstimate, validate_against_simulation

__all__ = ["AnalyticalModel", "CycleEstimate", "validate_against_simulation"]
