"""Stable top-level API: :func:`simulate` and :func:`run_experiment`.

These two calls are the supported programmatic surface of the
reproduction (re-exported as ``repro.simulate`` /
``repro.run_experiment``; see ``docs/api.md``). Everything they return
serializes through one ``to_dict()`` schema shared with the CLI's
JSON output, so a script, ``results/json/*.json`` and the ``compare``
subcommand all consume the same shape.

Quick start::

    import repro

    record = repro.simulate("jpeg", "dopp", scale=0.25)
    print(record.system.cycles, record.to_dict()["system"]["llc_miss_rate"])

    tables = repro.run_experiment("table2", scale=0.25)
    print(tables[""].render())
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.harness.runner import (
    ConfigSpec,
    ExperimentContext,
    RunRecord,
    baseline_spec,
    dopp_spec,
    run_trace,
    uni_spec,
)

#: Shorthand accepted wherever a config is expected.
_KIND_SPECS = {
    "baseline": baseline_spec,
    "dopp": dopp_spec,
    "uni": uni_spec,
}


def as_spec(config) -> ConfigSpec:
    """Coerce ``config`` into a :class:`ConfigSpec`.

    Accepts a spec, ``None`` (baseline), or one of the kind shorthands
    ``"baseline"`` / ``"dopp"`` / ``"uni"`` (paper-default map bits
    and data fraction).
    """
    if config is None:
        return baseline_spec()
    if isinstance(config, ConfigSpec):
        return config
    if isinstance(config, str):
        try:
            return _KIND_SPECS[config]()
        except KeyError:
            raise ValueError(
                f"unknown config {config!r}; choose from {sorted(_KIND_SPECS)} "
                "or pass a ConfigSpec"
            ) from None
    raise TypeError(f"config must be a ConfigSpec, str or None, got {type(config)!r}")


def simulate(
    workload: Optional[str] = None,
    config=None,
    *,
    trace=None,
    engine: str = "batched",
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    faults=None,
    ctx: Optional[ExperimentContext] = None,
) -> RunRecord:
    """Simulate one workload — or one imported trace — under one config.

    Args:
        workload: benchmark name (see
            :func:`repro.workloads.registry.workload_names`). Mutually
            exclusive with ``trace``.
        config: a :class:`ConfigSpec`, a kind shorthand (``"baseline"``,
            ``"dopp"``, ``"uni"``) or ``None`` for the baseline LLC.
        trace: a :class:`~repro.trace.trace.Trace` or a path — ``.npz``
            archives load via :func:`repro.trace.io.load_trace`, any
            other path ingests via :func:`repro.ingest.ingest_trace`
            (format detected from the suffix). The trace's own regions
            drive the LLC; ``seed``/``scale``/``ctx`` do not apply.
        engine: ``"batched"`` (default) or ``"reference"`` — both are
            bit-identical; see :mod:`repro.engine`.
        seed: data-generation seed (``REPRO_SEED`` / 7 by default).
        scale: dataset scale (``REPRO_SCALE`` / 1.0 by default).
        faults: optional
            :class:`~repro.resilience.faults.FaultConfig` — seeded
            deterministic fault injection; the record then carries the
            fault report in ``.faults`` / ``to_dict()["faults"]``. A
            config that can never fault is treated as ``None``.
        ctx: reuse an existing context (its memo) instead of building
            a fresh one; ``seed``/``scale``/``engine`` are then
            ignored in favour of the context's.

    Returns:
        The :class:`RunRecord` — timing in ``.system``, energy in
        ``.energy``, the LLC structure in ``.llc``, JSON form via
        ``.to_dict()``. Workload runs are memoized on the context;
        trace runs are standalone.
    """
    from repro.errors import ConfigError

    if (workload is None) == (trace is None):
        raise ConfigError(
            "pass exactly one of 'workload' or 'trace'", field="workload"
        )
    spec = as_spec(config)
    if faults is not None:
        spec = spec.with_faults(faults)
    if trace is not None:
        if isinstance(trace, str):
            if trace.endswith(".npz"):
                from repro.trace.io import load_trace

                trace = load_trace(trace)
            else:
                from repro.ingest import ingest_trace

                trace = ingest_trace(trace)
        return run_trace(trace, spec, engine=engine)
    if ctx is None:
        ctx = ExperimentContext(
            seed=seed, scale=scale, workloads=[workload], engine=engine
        )
    return ctx.run(workload, spec)


def run_experiment(
    experiment,
    *,
    ctx: Optional[ExperimentContext] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    workloads: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
    jobs: int = 1,
    json_dir: Optional[str] = None,
) -> Dict[str, "object"]:
    """Run one experiment strategy and return its tables.

    Args:
        experiment: a registered experiment name (``repro.cli list``
            prints them all, including installed plugins), or an
            :class:`~repro.harness.strategy.ExperimentStrategy`
            instance/class — an unregistered strategy object runs
            directly, no registration required.
        ctx: reuse an existing context; otherwise one is built from
            ``seed`` / ``scale`` / ``workloads`` / ``engine``.
        jobs: with ``jobs > 1``, prefetch the simulations the
            strategy's ``requires`` metadata declares across a process
            pool first (results are identical to a sequential run; see
            :mod:`repro.harness.parallel`).
        json_dir: also serialize the tables to
            ``<json_dir>/<name>.json`` via the unified ``to_dict()``
            schema.

    Returns:
        Mapping of sub-table key to
        :class:`~repro.harness.reporting.Table` (single-table
        experiments use the key ``""``).

    Raises:
        UnknownExperimentError: ``experiment`` is a name not present
            in the strategy registry (a :class:`ValueError` subclass,
            so pre-existing ``except ValueError`` callers still work).
    """
    from repro.harness.strategy import registry, run_strategies

    strategy = registry.resolve(experiment)
    result = run_strategies(
        [strategy],
        ctx=ctx,
        seed=seed,
        scale=scale,
        workloads=workloads,
        engine=engine,
        jobs=jobs,
        json_dir=json_dir,
    )
    return result.outcomes[0].tables
