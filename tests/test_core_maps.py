"""Unit tests for map generation (Sec. 3.7)."""

import numpy as np
import pytest

from repro.core.maps import MapConfig, MapGenerator, MapRegistry
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap


def gen(bits=14, vmin=0.0, vmax=100.0, dtype=DType.F32, **kw):
    return MapGenerator(MapConfig(bits=bits, **kw), vmin, vmax, dtype)


class TestMapConfig:
    def test_range_keep_bits(self):
        assert MapConfig(14).range_keep_bits == 7
        assert MapConfig(13).range_keep_bits == 7
        assert MapConfig(12).range_keep_bits == 6

    def test_requires_a_hash(self):
        with pytest.raises(ValueError):
            MapConfig(use_average=False, use_range=False)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            MapConfig(bits=-1)


class TestTotalBits:
    def test_base_design_is_21_bits(self):
        # Table 3's per-tag map field: 14 + ceil(14/2) = 21.
        assert gen(14).total_bits == 21

    def test_integer_dtype_caps_bits(self):
        g = MapGenerator(MapConfig(14), 0, 255, DType.U8)
        # 8-bit elements: avg uses 8 bits, range keeps 7.
        assert g.avg_bits == 8
        assert g.total_bits == 15

    def test_average_only(self):
        g = gen(14, use_range=False)
        assert g.total_bits == 14

    def test_range_only(self):
        g = gen(14, use_average=False)
        assert g.total_bits == 7


class TestMapping:
    def test_min_maps_to_zero(self):
        g = gen()
        assert g.compute(np.zeros(16)) == 0

    def test_max_maps_to_top_bin(self):
        g = gen()
        m = g.compute(np.full(16, 100.0))
        # avg at max -> top avg bin; range 0 -> range part 0.
        assert m == (1 << 14) - 1

    def test_similar_blocks_share_map(self):
        g = gen()
        a = np.full(16, 50.0)
        b = a + 0.001
        assert g.compute(a) == g.compute(b)

    def test_distant_blocks_differ(self):
        g = gen()
        assert g.compute(np.full(16, 10.0)) != g.compute(np.full(16, 90.0))

    def test_range_hash_separates_spread(self):
        g = gen()
        flat = np.full(16, 50.0)
        spread = np.linspace(10.0, 90.0, 16)  # same average, big range
        assert g.compute(flat) != g.compute(spread)

    def test_clamping_out_of_range_values(self):
        g = gen()
        over = np.full(16, 1e6)
        assert g.compute(over) == g.compute(np.full(16, 100.0))

    def test_nan_treated_as_vmin(self):
        g = gen()
        with_nan = np.full(16, np.nan)
        assert g.compute(with_nan) == g.compute(np.zeros(16))

    def test_map_in_range(self, rng=np.random.default_rng(0)):
        g = gen()
        blocks = rng.uniform(0, 100, size=(200, 16))
        maps = g.compute_batch(blocks)
        assert maps.min() >= 0
        assert maps.max() < g.map_space_size

    def test_batch_matches_scalar(self, rng=np.random.default_rng(1)):
        g = gen()
        blocks = rng.uniform(0, 100, size=(50, 16))
        batch = g.compute_batch(blocks)
        for i in range(50):
            assert g.compute(blocks[i]) == batch[i]

    def test_smaller_map_space_merges_more(self, rng=np.random.default_rng(2)):
        blocks = rng.uniform(0, 100, size=(2000, 16))
        unique12 = len(np.unique(gen(12).compute_batch(blocks)))
        unique14 = len(np.unique(gen(14).compute_batch(blocks)))
        assert unique12 <= unique14

    def test_zero_bits_single_bin(self):
        g = gen(0)
        a = g.compute(np.full(16, 5.0))
        b = g.compute(np.full(16, 95.0))
        assert a == b == 0

    def test_pixel_identity_mapping(self):
        # 8-bit data with M=14: omit-mapping rule, hash used directly.
        g = MapGenerator(MapConfig(14), 0, 255, DType.U8)
        flat80 = np.full(64, 80, dtype=np.float64)
        flat81 = np.full(64, 81, dtype=np.float64)
        assert g.compute(flat80) != g.compute(flat81)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MapGenerator(MapConfig(14), 5.0, 5.0, DType.F32)

    def test_paper_figure1_example(self):
        # Fig. 1b: blocks 1 and 2 share a map, block 3 differs.
        g = MapGenerator(MapConfig(14), 0, 255, DType.U8)
        b1 = np.array([92, 131, 183, 91, 132, 186], dtype=np.float64)
        b2 = np.array([90, 131, 185, 93, 133, 184], dtype=np.float64)
        b3 = np.array([35, 31, 29, 43, 38, 37], dtype=np.float64)
        assert g.compute(b1) == g.compute(b2)
        assert g.compute(b1) != g.compute(b3)


class TestFlopCount:
    def test_paper_accounting(self):
        # Sec. 5.6: 21 FPMA ops for a 16-element block.
        assert gen().flop_count(16) == 21

    def test_scales_with_elements(self):
        assert gen().flop_count(32) == 42


class TestRegistry:
    def make_regions(self):
        return RegionMap(
            [
                Region("a", 0, 1024, DType.F32, approx=True, vmin=0, vmax=10),
                Region("b", 2048, 1024, DType.I32, approx=False),
            ]
        )

    def test_register_regions_skips_precise(self):
        reg = MapRegistry(MapConfig(14))
        reg.register_regions(self.make_regions())
        assert len(reg) == 1
        assert reg.generator(0) is not None
        assert reg.generator(1) is None

    def test_compute_unregistered_raises(self):
        reg = MapRegistry(MapConfig(14))
        with pytest.raises(KeyError):
            reg.compute(5, np.zeros(16))

    def test_compute_through_registry(self):
        reg = MapRegistry(MapConfig(14))
        reg.register(0, 0.0, 10.0, DType.F32)
        assert reg.compute(0, np.zeros(16)) == 0
