"""Coherence-behaviour tests for the simulated system (Sec. 3.6).

MSI with a directory at the LLC: stores invalidate remote sharers,
back-invalidations purge private copies, and Doppelgänger keeps
coherence state per *tag* so tags sharing one data entry don't share
state.
"""

import numpy as np
import pytest

from repro.cache.block import BlockState
from repro.core.config import DoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache
from repro.core.maps import MapConfig
from repro.hierarchy.llc import BaselineLLC, SplitDoppelgangerLLC
from repro.hierarchy.system import System
from repro.trace.record import Access, DType
from repro.trace.region import Region, RegionMap
from repro.trace.trace import TraceBuilder

RID = 0


def regions_small():
    return RegionMap(
        [Region("r", 0, 1 << 16, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )


def trace_of(accesses, regions):
    builder = TraceBuilder("t", regions)
    vid = builder.register_value(np.full(16, 5.0, dtype=np.float32))
    for addr in range(0, 1 << 16, 64):
        builder.set_initial_value(addr, vid)
    for core, addr, is_write in accesses:
        builder.append(Access(core, addr, is_write, True, RID, vid, 4))
    return builder.build()


class TestDirectoryProtocol:
    def test_read_sharers_accumulate(self):
        regions = regions_small()
        trace = trace_of([(0, 0, False), (1, 0, False), (2, 0, False)], regions)
        system = System(BaselineLLC(regions=regions))
        system.run(trace)
        assert system._sharers[0] == 0b111

    def test_store_claims_exclusive(self):
        regions = regions_small()
        trace = trace_of([(0, 0, False), (1, 0, False), (1, 0, True)], regions)
        system = System(BaselineLLC(regions=regions))
        system.run(trace)
        assert system._sharers[0] == 0b10
        assert not system.l1s[0].contains(0)
        assert system.l1s[1].contains(0)

    def test_store_to_unshared_no_invalidations(self):
        regions = regions_small()
        trace = trace_of([(0, 0, True), (0, 0, True)], regions)
        system = System(BaselineLLC(regions=regions))
        system.run(trace)
        assert system.coherence_invalidations == 0

    def test_ping_pong_counts_invalidations(self):
        regions = regions_small()
        pattern = [(c % 2, 0, True) for c in range(6)]
        trace = trace_of(pattern, regions)
        system = System(BaselineLLC(regions=regions))
        system.run(trace)
        assert system.coherence_invalidations >= 4

    def test_back_invalidation_purges_all_cores(self):
        regions = regions_small()
        # All four cores share block 0; then a Doppelgänger data
        # eviction back-invalidates it.
        accesses = [(c, 0, False) for c in range(4)]
        trace = trace_of(accesses, regions)
        llc = SplitDoppelgangerLLC(
            DoppelgangerConfig(tag_entries=1024, data_fraction=0.25, map=MapConfig(14)),
            regions=regions,
        )
        system = System(llc)
        system.run(trace)
        # Force the eviction through the cache's own interface.
        outcome = llc.dopp.invalidate(0)
        for addr in outcome.back_invalidations:
            system._purge_private(addr)
        for core in range(4):
            assert not system.l1s[core].contains(0)


class TestPerTagCoherenceState:
    def test_tags_sharing_data_have_independent_state(self):
        cache = DoppelgangerCache(
            DoppelgangerConfig(tag_entries=64, tag_ways=4, data_fraction=0.5,
                               data_ways=4, map=MapConfig(14)),
            regions=regions_small(),
        )
        values = np.full(16, 5.0)
        cache.insert(0, RID, values, core=0)
        cache.insert(64, RID, values, core=1)
        assert cache.data.occupied == 1  # shared entry
        cache.lookup(0, is_write=True, core=0)
        a = cache.tags.probe(0)
        b = cache.tags.probe(64)
        assert a.state is BlockState.MODIFIED
        assert b.state is not BlockState.MODIFIED
        assert a.sharers != b.sharers

    def test_dirty_bit_is_per_tag(self):
        cache = DoppelgangerCache(
            DoppelgangerConfig(tag_entries=64, tag_ways=4, data_fraction=0.5,
                               data_ways=4, map=MapConfig(14)),
            regions=regions_small(),
        )
        values = np.full(16, 5.0)
        cache.insert(0, RID, values)
        cache.insert(64, RID, values)
        cache.writeback(0, RID, values)
        assert cache.tags.probe(0).dirty
        assert not cache.tags.probe(64).dirty
