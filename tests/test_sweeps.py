"""Tests for multi-seed sweeps and table aggregation."""

import pytest

from repro.harness.reporting import Table
from repro.harness.sweeps import aggregate_tables, seed_sweep, stability_report
from repro.harness import experiments


def make_table(values, title="t"):
    table = Table(title, ["name", "x", "y"])
    for name, x, y in values:
        table.add_row(name, x, y)
    return table


class TestAggregate:
    def test_mean_and_std(self):
        a = make_table([("w", 1.0, 10.0)])
        b = make_table([("w", 3.0, 10.0)])
        mean, std = aggregate_tables([a, b])
        assert mean.rows[0][1] == pytest.approx(2.0)
        assert std.rows[0][1] == pytest.approx(1.0)
        assert std.rows[0][2] == pytest.approx(0.0)

    def test_non_numeric_passthrough(self):
        a = make_table([("w", None, 1.0)])
        b = make_table([("w", None, 3.0)])
        mean, _ = aggregate_tables([a, b])
        assert mean.rows[0][1] is None
        assert mean.rows[0][2] == pytest.approx(2.0)

    def test_mismatched_headers_rejected(self):
        a = make_table([("w", 1, 2)])
        b = Table("t", ["name", "z", "y"])
        b.add_row("w", 1, 2)
        with pytest.raises(ValueError, match="headers"):
            aggregate_tables([a, b])

    def test_mismatched_labels_rejected(self):
        a = make_table([("w", 1, 2)])
        b = make_table([("v", 1, 2)])
        with pytest.raises(ValueError, match="labels"):
            aggregate_tables([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_tables([])

    def test_note_records_seed_count(self):
        a = make_table([("w", 1, 2)])
        mean, _ = aggregate_tables([a, a, a])
        assert any("3 seeds" in note for note in mean.notes)


class TestSeedSweep:
    def test_sweep_single_table_driver(self):
        mean, std = seed_sweep(
            experiments.fig07_map_space_savings,
            seeds=(1, 2),
            scale=0.05,
            workloads=["swaptions"],
        )
        assert mean.rows[0][0] == "swaptions"
        assert all(s is not None for s in std.rows[0][1:])

    def test_sweep_dict_driver(self):
        out = seed_sweep(
            experiments.fig09_map_space,
            seeds=(1,),
            scale=0.05,
            workloads=["kmeans"],
        )
        assert set(out) == {"error", "runtime"}
        mean, _ = out["runtime"]
        assert mean.rows[-1][0] == "geomean"

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep(experiments.fig07_map_space_savings, seeds=())


class TestStability:
    def test_report_structure(self):
        report = stability_report(
            experiments.fig07_map_space_savings,
            seeds=(1, 2),
            scale=0.05,
            workloads=["kmeans"],
            tolerance=0.0,  # flag everything with any spread
        )
        assert report.headers == ["row", "column", "mean", "std", "cv"]
