"""Unit tests for the conventional set-associative cache."""

import pytest

from repro.cache.block import BlockState
from repro.cache.set_assoc import SetAssociativeCache

KB = 1024


def make_cache(size=16 * KB, ways=4, block=64, policy="lru"):
    return SetAssociativeCache(size, ways, block, policy, name="t")


class TestGeometry:
    def test_set_count(self):
        cache = make_cache()
        assert cache.num_sets == 16 * KB // (4 * 64)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 4, 64)

    def test_non_pow2_block_raises(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(16 * KB, 4, 48)

    def test_address_decomposition_roundtrip(self):
        cache = make_cache()
        for addr in (0, 64, 4096, 123456 & ~63):
            set_idx = cache.set_index(addr)
            tag = cache.addr_tag(addr)
            assert cache._compose_addr(set_idx, tag) == addr


class TestAccess:
    def test_first_access_misses(self):
        cache = make_cache()
        assert not cache.access(0x1000).hit

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1000).hit

    def test_same_block_different_offset_hits(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1010).hit

    def test_write_sets_dirty_and_modified(self):
        cache = make_cache()
        result = cache.access(0x40, is_write=True)
        assert result.block.dirty
        assert result.block.state is BlockState.MODIFIED

    def test_read_fill_is_clean_shared(self):
        cache = make_cache()
        result = cache.access(0x40)
        assert not result.block.dirty
        assert result.block.state is BlockState.SHARED

    def test_no_fill_on_miss_option(self):
        cache = make_cache()
        cache.access(0x40, fill_on_miss=False)
        assert not cache.contains(0x40)

    def test_value_id_tracked_on_write(self):
        cache = make_cache()
        cache.access(0x40, is_write=True, value_id=7)
        assert cache.probe(0x40).value_id == 7

    def test_value_id_updated_on_write_hit(self):
        cache = make_cache()
        cache.access(0x40, is_write=True, value_id=7)
        cache.access(0x40, is_write=True, value_id=9)
        assert cache.probe(0x40).value_id == 9


class TestEviction:
    def test_eviction_on_full_set(self):
        cache = make_cache(size=4 * 64 * 4, ways=4)  # 4 sets
        stride = cache.num_sets * cache.block_size
        for i in range(4):
            cache.access(i * stride)  # same set
        result = cache.access(4 * stride)
        assert result.evicted_addr == 0

    def test_lru_victim_selection(self):
        cache = make_cache(size=4 * 64 * 4, ways=4)
        stride = cache.num_sets * cache.block_size
        for i in range(4):
            cache.access(i * stride)
        cache.access(0)  # refresh way holding addr 0
        result = cache.access(4 * stride)
        assert result.evicted_addr == stride

    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache(size=4 * 64 * 2, ways=2)
        stride = cache.num_sets * cache.block_size
        cache.access(0, is_write=True)
        cache.access(stride)
        result = cache.access(2 * stride)
        assert result.writeback
        assert result.evicted_addr == 0

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=4 * 64 * 2, ways=2)
        stride = cache.num_sets * cache.block_size
        cache.access(0)
        cache.access(stride)
        result = cache.access(2 * stride)
        assert not result.writeback

    def test_occupancy_bounded_by_capacity(self):
        cache = make_cache(size=2 * KB, ways=2)
        for i in range(1000):
            cache.access(i * 64)
        assert cache.occupancy() <= 2 * KB // 64


class TestInstall:
    def test_install_counts_no_demand_access(self):
        cache = make_cache()
        cache.install(0x40)
        assert cache.stats.accesses == 0
        assert cache.stats.misses == 0
        assert cache.stats.fills == 1

    def test_install_resident_raises(self):
        cache = make_cache()
        cache.install(0x40)
        with pytest.raises(ValueError):
            cache.install(0x40)

    def test_install_dirty(self):
        cache = make_cache()
        cache.install(0x40, dirty=True)
        assert cache.probe(0x40).dirty


class TestInvalidateFlush:
    def test_invalidate_removes_block(self):
        cache = make_cache()
        cache.access(0x40)
        block = cache.invalidate(0x40)
        assert block is not None
        assert not cache.contains(0x40)

    def test_invalidate_missing_returns_none(self):
        cache = make_cache()
        assert cache.invalidate(0x40) is None

    def test_invalidated_way_reused(self):
        cache = make_cache(size=4 * 64 * 2, ways=2)
        stride = cache.num_sets * cache.block_size
        cache.access(0)
        cache.access(stride)
        cache.invalidate(0)
        result = cache.access(2 * stride)
        assert result.evicted_addr is None  # reused the freed way

    def test_flush_returns_dirty_blocks(self):
        cache = make_cache()
        cache.access(0x40, is_write=True)
        cache.access(0x80)
        dirty = cache.flush()
        assert [addr for addr, _ in dirty] == [0x40]
        assert cache.occupancy() == 0


class TestStats:
    def test_hit_miss_counts(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == 0.5

    def test_read_write_split(self):
        cache = make_cache()
        cache.access(0)
        cache.access(64, is_write=True)
        assert cache.stats.read_accesses == 1
        assert cache.stats.write_accesses == 1

    def test_resident_addrs_match_contents(self):
        cache = make_cache()
        addrs = [0, 64, 128, 8192]
        for addr in addrs:
            cache.access(addr)
        assert sorted(cache.resident_addrs()) == sorted(addrs)
