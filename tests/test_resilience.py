"""Tests for the resilience layer (``docs/robustness.md``).

Covers the three pillars of the layer: deterministic fault injection
(same config + seed => identical results across runs, engines and job
counts), graceful engine degradation (batched failure falls back to
the reference interpreter with an observable event), and harness
recovery (worker timeouts/deaths retried in a fresh pool; interrupted
sweeps resume from an on-disk journal byte-identically).
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro.engine.batched as batched
import repro.harness.parallel as parallel
from repro.engine import ENGINES
from repro.errors import ConfigError, SimulationFault
from repro.harness.parallel import prefetch_runs
from repro.harness.runner import (
    ExperimentContext,
    baseline_spec,
    dopp_spec,
)
from repro.obs import EVENT_ENGINE_FALLBACK, EVENT_WORKER_RETRY, Observability
from repro.resilience.checkpoint import (
    context_fingerprint,
    open_journal,
    spec_digest,
)
from repro.resilience.faults import FaultConfig, FaultInjector

SEED = 3
SCALE = 0.05
#: kmeans exercises every fault site at this scale (swaptions has no
#: LLC read hits at scale 0.05, so its llc site never fires).
FAULTS = FaultConfig(
    seed=3, read_rate=1e-3, flip_bits=2, targets=("approx_data", "dram")
)
FSPEC = dopp_spec(14, 0.25).with_faults(FAULTS)

_WALL_KEYS = ("sim_wall_s", "accesses_per_sec")


def _strip(rows):
    return [
        {k: v for k, v in row.items() if k not in _WALL_KEYS} for row in rows
    ]


def _kinds(obs):
    return [ev.kind for ev in obs.ring.events]


class _KindSink:
    """Event sink keeping only the kinds under test (the ring would
    evict them under the flood of per-access protocol events)."""

    def __init__(self, *kinds):
        self.kinds = kinds
        self.events = []

    def emit(self, event):
        if event.kind in self.kinds:
            self.events.append(event)


@pytest.fixture(scope="module")
def swaptions_ctx():
    """One baseline swaptions run, shared read-only across classes."""
    ctx = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
    ctx.run("swaptions", baseline_spec())
    return ctx


def _fork_ctx(src, **kwargs):
    """Fresh context sharing ``src``'s (immutable) traces."""
    ctx = ExperimentContext(
        seed=SEED, scale=SCALE, workloads=list(src.names), **kwargs
    )
    ctx._traces = dict(src._traces)
    return ctx


class TestFaultConfig:
    def test_zero_rate_normalizes_to_plain_spec(self):
        spec = dopp_spec(14, 0.25)
        assert spec.with_faults(FaultConfig(seed=9)) is spec
        assert spec.with_faults(None) is spec

    def test_no_targets_is_inactive(self):
        cfg = FaultConfig(seed=1, read_rate=0.5, targets=())
        assert not cfg.active
        assert dopp_spec(14, 0.25).with_faults(cfg) == dopp_spec(14, 0.25)

    def test_active_spec_changes_label_and_dict(self):
        assert FAULTS.active
        assert FSPEC != dopp_spec(14, 0.25)
        assert FSPEC.label() == "dopp-14bit-1/4+faults(s3,r0.001x2,ad+dram)"
        assert FSPEC.to_dict()["faults"] == FAULTS.to_dict()
        assert "faults" not in dopp_spec(14, 0.25).to_dict()

    def test_targets_normalized_for_hashing(self):
        a = FaultConfig(seed=1, read_rate=0.1, targets=("dram", "approx_data"))
        b = FaultConfig(
            seed=1, read_rate=0.1, targets=("approx_data", "dram", "dram")
        )
        assert a == b and hash(a) == hash(b)
        assert a.targets == ("approx_data", "dram")

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"read_rate": 1.5}, "read_rate"),
            ({"burst_rate": -0.1}, "burst_rate"),
            ({"flip_bits": 0}, "flip_bits"),
            ({"flip_bits": 65}, "flip_bits"),
            ({"burst_len": 0}, "burst_len"),
            ({"stuck_bits": 65}, "stuck_bits"),
            ({"targets": ("l3",)}, "targets"),
        ],
    )
    def test_validation(self, kwargs, field):
        with pytest.raises(ConfigError) as excinfo:
            FaultConfig(**kwargs)
        assert excinfo.value.field == field
        assert excinfo.value.exit_code == 2


class TestFaultInjector:
    def test_decision_stream_is_deterministic(self):
        cfg = FaultConfig(seed=11, read_rate=0.05, targets=("llc",))
        inj1, inj2 = FaultInjector(cfg), FaultInjector(cfg)
        stream1 = [inj1.detected("llc") for _ in range(5000)]
        stream2 = [inj2.detected("llc") for _ in range(5000)]
        assert stream1 == stream2
        assert any(stream1)  # 0.05 over 5000 reads fires w.h.p.
        assert inj1.stats("llc").detected == inj1.stats("llc").faults

    def test_untargeted_site_is_inert(self):
        inj = FaultInjector(FaultConfig(seed=1, read_rate=1.0, targets=("llc",)))
        values = np.ones(8)
        assert not inj.silent("dram")
        assert inj.corrupt("approx_data", values) is values
        assert inj.stats("dram") is None
        assert inj.total_faults() == 0

    def test_corrupt_is_deterministic_and_nonmutating(self):
        cfg = FaultConfig(
            seed=5, read_rate=1.0, flip_bits=3, targets=("approx_data",)
        )
        block = np.linspace(0.0, 1.0, 8)
        out1 = FaultInjector(cfg).corrupt("approx_data", block)
        out2 = FaultInjector(cfg).corrupt("approx_data", block)
        assert out1 is not block
        assert np.array_equal(block, np.linspace(0.0, 1.0, 8))
        assert np.array_equal(
            out1.view(np.uint64), out2.view(np.uint64)
        )
        assert not np.array_equal(out1, block)

    def test_stuck_bits_apply_on_every_read(self):
        cfg = FaultConfig(seed=5, stuck_bits=4, targets=("approx_data",))
        inj = FaultInjector(cfg)
        block = np.zeros(4)
        out1 = inj.corrupt("approx_data", block)
        out2 = inj.corrupt("approx_data", block)
        assert np.array_equal(out1.view(np.uint64), out2.view(np.uint64))
        # stuck-at-0 bits are invisible on a zero block; stuck-at-1 show.
        # Either way the mask itself must be stable and non-trivial.
        or_mask = int(inj._stuck_or)
        and_mask = int(inj._stuck_and)
        assert bin(or_mask).count("1") + bin(~and_mask & (2**64 - 1)).count(
            "1"
        ) == 4

    def test_burst_faults_consecutive_reads(self):
        cfg = FaultConfig(
            seed=2, burst_rate=0.01, burst_len=4, targets=("dram",)
        )
        inj = FaultInjector(cfg)
        stream = [inj.detected("dram") for _ in range(4000)]
        assert any(stream)
        first = stream.index(True)
        assert stream[first : first + 4] == [True] * 4

    def test_summary_shape(self):
        inj = FaultInjector(FaultConfig(seed=1, read_rate=0.5, targets=("llc",)))
        inj.detected("llc")
        summary = inj.summary()
        assert summary["config"] == inj.config.to_dict()
        assert set(summary["sites"]) == {"llc"}
        assert summary["sites"]["llc"]["reads"] == 1
        metrics = inj.as_metrics()
        assert metrics["llc.reads"] == 1


class TestFaultDeterminism:
    @pytest.fixture(scope="class")
    def records(self):
        """The same faulty kmeans run from two fresh contexts."""
        ctx_a = ExperimentContext(seed=SEED, scale=SCALE, workloads=["kmeans"])
        ctx_b = ExperimentContext(seed=SEED, scale=SCALE, workloads=["kmeans"])
        return ctx_a, ctx_b, ctx_a.run("kmeans", FSPEC), ctx_b.run("kmeans", FSPEC)

    def test_identical_across_fresh_contexts(self, records):
        _, _, rec_a, rec_b = records
        da = {k: v for k, v in rec_a.to_dict().items() if k not in _WALL_KEYS}
        db = {k: v for k, v in rec_b.to_dict().items() if k not in _WALL_KEYS}
        assert da == db
        assert rec_a.faults == rec_b.faults

    def test_faults_actually_fire(self, records):
        ctx_a, _, rec_a, _ = records
        sites = rec_a.faults["sites"]
        assert set(sites) == {"approx_data", "dram"}
        assert sites["approx_data"]["reads"] > 0
        assert sites["dram"]["reads"] > 0
        assert sites["dram"]["faults"] > 0
        clean = ctx_a.run("kmeans", dopp_spec(14, 0.25))
        assert clean.faults is None
        # Detected DRAM faults refetch: never cheaper than the clean run.
        assert rec_a.system.cycles >= clean.system.cycles
        assert rec_a.system.traffic_bytes >= clean.system.traffic_bytes

    def test_batched_and_reference_engines_agree_under_faults(self, records):
        ctx_a, _, rec_a, _ = records
        ref = _fork_ctx(ctx_a, engine="reference")
        rec_r = ref.run("kmeans", FSPEC)
        assert rec_r.system == rec_a.system
        assert rec_r.energy == rec_a.energy
        assert rec_r.faults == rec_a.faults

    def test_functional_error_shifts_under_silent_faults(self, records):
        ctx_a, _, _, _ = records
        faulty = ctx_a.error("kmeans", FSPEC)
        clean = ctx_a.error("kmeans", dopp_spec(14, 0.25))
        assert faulty != clean
        # And it is reproducible, not noise:
        fresh = _fork_ctx(ctx_a)
        assert fresh.error("kmeans", FSPEC) == faulty

    def test_zero_rate_run_is_the_disabled_run(self, records):
        ctx_a, _, _, _ = records
        clean = ctx_a.run("kmeans", dopp_spec(14, 0.25))
        zero = dopp_spec(14, 0.25).with_faults(FaultConfig(seed=99))
        assert ctx_a.run("kmeans", zero) is clean

    def test_context_default_faults_apply(self, records):
        ctx_a, _, rec_a, _ = records
        dctx = _fork_ctx(ctx_a, faults=FAULTS)
        rec = dctx.run("kmeans", dopp_spec(14, 0.25))
        assert rec.spec == FSPEC
        assert rec.faults == rec_a.faults
        # An explicit spec-level config wins over the context default.
        assert dctx.apply_faults(FSPEC) is FSPEC


class TestEngineFallback:
    def test_batched_failure_falls_back_to_reference(
        self, swaptions_ctx, monkeypatch
    ):
        def boom(system, trace):
            raise RuntimeError("synthetic batched-path failure")

        monkeypatch.setattr(batched, "_FAIL_HOOK", boom)
        obs = Observability(enabled=True)
        sink = _KindSink(EVENT_ENGINE_FALLBACK)
        obs.tracer.add_sink(sink)
        ctx = _fork_ctx(swaptions_ctx, obs=obs)
        rec = ctx.run("swaptions", baseline_spec())
        assert rec.engine_used == "reference"
        assert rec.to_dict()["engine_used"] == "reference"
        # Bit-identical to the healthy batched run (engine equivalence).
        healthy = swaptions_ctx.run("swaptions", baseline_spec())
        assert rec.system == healthy.system
        assert rec.energy == healthy.energy
        assert len(sink.events) == 1
        ev = sink.events[0]
        assert ev.fields["workload"] == "swaptions"
        assert "synthetic batched-path failure" in ev.fields["error"]

    def test_explicit_reference_engine_failure_raises(
        self, swaptions_ctx, monkeypatch
    ):
        def boom_engine(system, trace, limit=None):
            raise RuntimeError("reference down")

        monkeypatch.setitem(ENGINES, "reference", boom_engine)
        ctx = _fork_ctx(swaptions_ctx, engine="reference")
        with pytest.raises(SimulationFault) as excinfo:
            ctx.run("swaptions", baseline_spec())
        assert excinfo.value.exit_code == 4
        assert "reference engine failed" in str(excinfo.value)
        assert "swaptions" in str(excinfo.value)

    def test_both_engines_failing_raises(self, swaptions_ctx, monkeypatch):
        def hook(system, trace):
            raise RuntimeError("batched down")

        def boom_engine(system, trace, limit=None):
            raise RuntimeError("reference down")

        monkeypatch.setattr(batched, "_FAIL_HOOK", hook)
        monkeypatch.setitem(ENGINES, "reference", boom_engine)
        ctx = _fork_ctx(swaptions_ctx)
        with pytest.raises(SimulationFault) as excinfo:
            ctx.run("swaptions", baseline_spec())
        assert "both engines" in str(excinfo.value)
        assert excinfo.value.exit_code == 4


# ---------------------------------------------------------------- parallel
# Worker fakes must be module-level: the pool pickles them by qualified
# name (the fork start method re-resolves them in the child).

def _sleepy_task(task):
    time.sleep(300)


def _dying_task(task):
    os._exit(17)


def _flaky_task(task):
    """Dies once (crossing processes via a sentinel file), then works."""
    sentinel = os.environ["REPRO_TEST_FLAKY_SENTINEL"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("died once\n")
        os._exit(17)
    return _REAL_RUN_TASK(task)


_REAL_RUN_TASK = parallel._run_task


class TestParallelResilience:
    def test_jobs_agree_under_faults(self):
        seq = ExperimentContext(seed=SEED, scale=SCALE, workloads=["kmeans"])
        seq.run("kmeans", baseline_spec())
        seq.run("kmeans", FSPEC)
        par = ExperimentContext(seed=SEED, scale=SCALE, workloads=["kmeans"])
        fetched = prefetch_runs(
            par, [], jobs=2,
            run_specs=[baseline_spec(), FSPEC], error_specs=[],
        )
        assert fetched == 2
        assert _strip(seq.run_summaries()) == _strip(par.run_summaries())

    def test_error_values_agree_across_jobs(self):
        # Regression test: output error used to depend on whether the
        # trace was generated before the error evaluation (workers
        # simulate first, the sequential drivers evaluate error first),
        # because build_trace populates the workloads' output regions.
        spec = dopp_spec(14, 0.25)
        seq = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
        seq_err = seq.error("swaptions", spec)  # before any trace exists
        par = ExperimentContext(seed=SEED, scale=SCALE, workloads=["swaptions"])
        prefetch_runs(
            par, [], jobs=1,
            run_specs=[baseline_spec(), spec], error_specs=[spec],
        )
        assert par._errors[("swaptions", spec)] == seq_err

    def test_timeout_fails_fast_instead_of_hanging(
        self, swaptions_ctx, monkeypatch
    ):
        monkeypatch.setattr(parallel, "_run_task", _sleepy_task)
        ctx = _fork_ctx(swaptions_ctx)
        start = time.monotonic()
        with pytest.raises(SimulationFault) as excinfo:
            prefetch_runs(
                ctx, [], jobs=1,
                run_specs=[baseline_spec()], error_specs=[],
                timeout=1.0, retries=0,
            )
        assert time.monotonic() - start < 60  # the 300s sleeper was killed
        msg = str(excinfo.value)
        assert "timeout" in msg
        assert "swaptions" in msg
        assert baseline_spec().label() in msg

    def test_worker_death_reports_the_failed_pair(
        self, swaptions_ctx, monkeypatch
    ):
        monkeypatch.setattr(parallel, "_run_task", _dying_task)
        ctx = _fork_ctx(swaptions_ctx)
        with pytest.raises(SimulationFault) as excinfo:
            prefetch_runs(
                ctx, [], jobs=1,
                run_specs=[baseline_spec()], error_specs=[], retries=0,
            )
        msg = str(excinfo.value)
        assert "worker process died" in msg
        assert "swaptions" in msg

    def test_worker_death_retried_in_fresh_pool(
        self, swaptions_ctx, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            "REPRO_TEST_FLAKY_SENTINEL", str(tmp_path / "sentinel")
        )
        monkeypatch.setattr(parallel, "_run_task", _flaky_task)
        obs = Observability(enabled=True, ring_capacity=64)
        ctx = _fork_ctx(swaptions_ctx, obs=obs)
        fetched = prefetch_runs(
            ctx, [], jobs=1,
            run_specs=[baseline_spec()], error_specs=[],
            retries=1, backoff=0.01,
        )
        assert fetched == 1
        assert EVENT_WORKER_RETRY in _kinds(obs)
        rec = ctx._runs[("swaptions", baseline_spec())]
        healthy = swaptions_ctx.run("swaptions", baseline_spec())
        assert rec.system == healthy.system


class TestCheckpoint:
    def test_journal_roundtrip_skips_recompute(self, swaptions_ctx, tmp_path):
        journal = open_journal(str(tmp_path / "ckpt"), swaptions_ctx)
        spec = baseline_spec()
        rec = swaptions_ctx.run("swaptions", spec)
        journal.record_run("swaptions", spec, rec)
        journal.record_error("swaptions", dopp_spec(14, 0.25), 0.125)

        fresh = ExperimentContext(
            seed=SEED, scale=SCALE, workloads=["swaptions"]
        )
        resumed = open_journal(str(tmp_path / "ckpt"), fresh)
        assert resumed.load_into(fresh) == (1, 1)
        # The memo hit means run() never simulates again.
        loaded = fresh.run("swaptions", spec)
        assert loaded.system == rec.system
        assert loaded.energy == rec.energy
        assert fresh._errors[("swaptions", dopp_spec(14, 0.25))] == 0.125
        # Loading twice adopts nothing new.
        assert resumed.load_into(fresh) == (0, 0)

    def test_meta_mismatch_is_a_config_error(self, swaptions_ctx, tmp_path):
        directory = str(tmp_path / "ckpt")
        journal = open_journal(directory, swaptions_ctx)
        journal.record_error("swaptions", dopp_spec(14, 0.25), 0.5)
        other = ExperimentContext(
            seed=SEED + 1, scale=SCALE, workloads=["swaptions"]
        )
        with pytest.raises(ConfigError) as excinfo:
            open_journal(directory, other)
        assert excinfo.value.exit_code == 2
        assert "checkpoint" in str(excinfo.value)

    def test_corrupt_entry_is_skipped(self, swaptions_ctx, tmp_path):
        directory = tmp_path / "ckpt"
        journal = open_journal(str(directory), swaptions_ctx)
        journal.record_error("swaptions", dopp_spec(14, 0.25), 0.5)
        (directory / "run-swaptions-deadbeefdeadbeef.pkl").write_bytes(
            b"truncated garbage"
        )
        fresh = ExperimentContext(
            seed=SEED, scale=SCALE, workloads=["swaptions"]
        )
        assert open_journal(str(directory), fresh).load_into(fresh) == (0, 1)

    def test_entries_outside_the_context_are_ignored(
        self, swaptions_ctx, tmp_path
    ):
        directory = str(tmp_path / "ckpt")
        journal = open_journal(directory, swaptions_ctx)
        journal.record_error("kmeans", dopp_spec(14, 0.25), 0.5)
        fresh = ExperimentContext(
            seed=SEED, scale=SCALE, workloads=["swaptions"]
        )
        assert open_journal(directory, fresh).load_into(fresh) == (0, 0)

    def test_fingerprint_and_digest_are_stable(self, swaptions_ctx):
        fp = context_fingerprint(swaptions_ctx)
        assert fp["seed"] == SEED and fp["scale"] == SCALE
        assert fp["engine"] == "default"
        d1 = spec_digest("swaptions", FSPEC)
        assert d1 == spec_digest("swaptions", FSPEC)
        assert d1 != spec_digest("kmeans", FSPEC)
        assert d1 != spec_digest("swaptions", dopp_spec(14, 0.25))

    def test_open_journal_disabled_without_directory(self, swaptions_ctx):
        assert open_journal("", swaptions_ctx) is None
        assert open_journal(None, swaptions_ctx) is None


class TestKillAndResume:
    """End-to-end: a SIGKILLed sweep resumes byte-identically."""

    WORKLOADS = ["swaptions", "kmeans", "blackscholes"]

    def _cli(self, tmp_path, json_dir, extra):
        return [
            sys.executable, "-m", "repro.cli", "headline",
            "--workloads", *self.WORKLOADS,
            "--scale", str(SCALE), "--seed", str(SEED),
            "--out", str(tmp_path / "tables"),
            "--json-out", str(json_dir),
        ] + extra

    @staticmethod
    def _env():
        env = os.environ.copy()
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    @staticmethod
    def _bench_runs(json_dir):
        with open(os.path.join(json_dir, "BENCH_obs.json")) as fh:
            return _strip(json.load(fh)["runs"])

    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        env = self._env()
        ckpt = tmp_path / "ckpt"

        # Run 1: parallel sweep, SIGKILLed once the journal has its
        # first completed record.
        proc = subprocess.Popen(
            self._cli(
                tmp_path, tmp_path / "json_killed",
                ["--jobs", "2", "--checkpoint-dir", str(ckpt)],
            ),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if glob.glob(str(ckpt / "*.pkl")) or proc.poll() is not None:
                break
            time.sleep(0.05)
        interrupted = proc.poll() is None
        if interrupted:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        # Run 2: resume against the same journal.
        resumed = subprocess.run(
            self._cli(
                tmp_path, tmp_path / "json_resumed",
                ["--jobs", "2", "--checkpoint-dir", str(ckpt), "--resume"],
            ),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "[resumed" in resumed.stdout
        if interrupted:
            # The kill landed mid-sweep: the journal held a strict
            # subset, so the resume both loaded and computed records.
            assert glob.glob(str(ckpt / "*.pkl"))

        # Run 3: the same sweep uninterrupted, no checkpointing.
        clean = subprocess.run(
            self._cli(tmp_path, tmp_path / "json_clean", ["--jobs", "2"]),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert clean.returncode == 0, clean.stderr

        assert self._bench_runs(tmp_path / "json_resumed") == self._bench_runs(
            tmp_path / "json_clean"
        )
