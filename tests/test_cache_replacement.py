"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    make_policy,
    policy_names,
)


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        policy = LRUPolicy(4)
        assert policy.victim() == 0

    def test_access_moves_way_to_mru(self):
        policy = LRUPolicy(4)
        policy.on_access(0)
        assert policy.victim() == 1

    def test_victim_is_least_recent(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_access(0)  # order now: 1,2,3,0
        assert policy.victim() == 1

    def test_fill_counts_as_access(self):
        policy = LRUPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        assert policy.victim() == 0

    def test_recency_order_complete(self):
        policy = LRUPolicy(8)
        assert sorted(policy.recency_order()) == list(range(8))

    def test_repeated_access_stable(self):
        policy = LRUPolicy(4)
        for _ in range(10):
            policy.on_access(2)
        assert policy.victim() == 0

    def test_sequence(self):
        policy = LRUPolicy(3)
        for way in (0, 1, 2, 0, 1):
            policy.on_access(way)
        assert policy.victim() == 2


class TestFIFO:
    def test_fill_order_determines_victim(self):
        policy = FIFOPolicy(4)
        for way in (3, 1, 0, 2):
            policy.on_fill(way)
        assert policy.victim() == 3

    def test_hits_do_not_change_order(self):
        policy = FIFOPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_access(0)
        assert policy.victim() == 0

    def test_refill_moves_to_back(self):
        policy = FIFOPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_fill(0)
        assert policy.victim() == 1


class TestRandom:
    def test_victim_in_range(self):
        policy = RandomPolicy(8, seed=3)
        for _ in range(50):
            assert 0 <= policy.victim() < 8

    def test_deterministic_per_seed(self):
        a = [RandomPolicy(8, seed=5).victim() for _ in range(5)]
        b = [RandomPolicy(8, seed=5).victim() for _ in range(5)]
        assert a == b

    def test_covers_ways(self):
        policy = RandomPolicy(4, seed=9)
        seen = {policy.victim() for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestPLRU:
    def test_requires_pow2(self):
        with pytest.raises(ValueError):
            PLRUPolicy(6)

    def test_victim_in_range(self):
        policy = PLRUPolicy(8)
        assert 0 <= policy.victim() < 8

    def test_recently_touched_not_victim(self):
        policy = PLRUPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        victim = policy.victim()
        policy.on_access(victim)
        assert policy.victim() != victim

    def test_two_way_behaves_like_lru(self):
        policy = PLRUPolicy(2)
        policy.on_access(0)
        assert policy.victim() == 1
        policy.on_access(1)
        assert policy.victim() == 0


class TestFactory:
    def test_all_names_construct(self):
        for name in policy_names():
            policy = make_policy(name, 4)
            assert policy.ways == 4

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("mru", 4)

    def test_zero_ways_raises(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0)

    def test_random_uses_seed(self):
        a = make_policy("random", 8, seed=1)
        b = make_policy("random", 8, seed=1)
        assert [a.victim() for _ in range(5)] == [b.victim() for _ in range(5)]
