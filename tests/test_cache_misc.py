"""Unit tests for cache blocks, stats and the writeback buffer."""

import pytest

from repro.cache.block import BlockState, CacheBlock
from repro.cache.stats import CacheStats
from repro.cache.writeback import WritebackBuffer


class TestBlockState:
    def test_invalid_not_valid(self):
        assert not BlockState.INVALID.is_valid

    def test_shared_and_modified_valid(self):
        assert BlockState.SHARED.is_valid
        assert BlockState.MODIFIED.is_valid


class TestCacheBlock:
    def test_sharer_add_remove(self):
        block = CacheBlock(tag=1)
        block.add_sharer(2)
        block.add_sharer(0)
        assert block.has_sharer(2)
        assert block.sharer_list() == [0, 2]
        block.remove_sharer(2)
        assert not block.has_sharer(2)

    def test_remove_absent_sharer_noop(self):
        block = CacheBlock(tag=1)
        block.remove_sharer(3)
        assert block.sharers == 0

    def test_default_state(self):
        block = CacheBlock(tag=0)
        assert block.state is BlockState.SHARED
        assert not block.dirty
        assert block.value_id == -1


class TestCacheStats:
    def test_rates_zero_when_untouched(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_merge_sums_counters(self):
        a = CacheStats(accesses=10, hits=6)
        b = CacheStats(accesses=4, hits=1)
        merged = a.merge(b)
        assert merged.accesses == 14
        assert merged.hits == 7

    def test_merge_extra_keys(self):
        a = CacheStats()
        a.extra["x"] = 2
        b = CacheStats()
        b.extra["x"] = 3
        b.extra["y"] = 1
        merged = a.merge(b)
        assert merged.extra == {"x": 5, "y": 1}

    def test_reset(self):
        stats = CacheStats(accesses=5)
        stats.extra["z"] = 1
        stats.reset()
        assert stats.accesses == 0
        assert stats.extra == {}

    def test_as_dict_includes_extra(self):
        stats = CacheStats(hits=2)
        stats.extra["special"] = 9
        d = stats.as_dict()
        assert d["hits"] == 2
        assert d["special"] == 9


class TestWritebackBuffer:
    def test_enqueue_without_stall(self):
        buf = WritebackBuffer(capacity=4, drain_interval=10)
        assert buf.enqueue(0x40, now=0) == 0
        assert len(buf) == 1

    def test_drain_over_time(self):
        buf = WritebackBuffer(capacity=4, drain_interval=10)
        for i in range(3):
            buf.enqueue(i * 64, now=0)
        buf.tick(now=30)
        assert len(buf) == 0
        assert buf.drained == 3

    def test_full_buffer_stalls(self):
        buf = WritebackBuffer(capacity=2, drain_interval=10)
        buf.enqueue(0, now=0)
        buf.enqueue(64, now=0)
        stall = buf.enqueue(128, now=0)
        assert stall > 0
        assert buf.stall_cycles == stall

    def test_burst_accounting(self):
        buf = WritebackBuffer(capacity=2, drain_interval=10)
        total_stall = sum(buf.enqueue(i * 64, now=0) for i in range(6))
        assert buf.enqueued == 6
        assert total_stall > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WritebackBuffer(capacity=0)
        with pytest.raises(ValueError):
            WritebackBuffer(drain_interval=0)
