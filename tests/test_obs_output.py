"""Tests for machine-readable output (repro.obs.output, Table JSON)."""

import json
import os

from repro.harness.reporting import Table
from repro.obs.output import (
    BENCH_FILENAME,
    load_json,
    render_report,
    save_experiment_json,
    update_bench_summary,
    write_json,
)


def make_table():
    t = Table("Fig. X: demo", ["workload", "a", "b"], precision=2)
    t.add_row("canneal", 1.25, 3)
    t.add_row("jpeg", None, 0.5)
    t.add_note("a note")
    return t


class TestTableJson:
    def test_as_dict_round_trip(self):
        t = make_table()
        clone = Table.from_dict(t.as_dict())
        assert clone.render() == t.render()
        assert clone.rows == t.rows
        assert clone.notes == t.notes

    def test_as_dict_is_json_serializable(self):
        json.dumps(make_table().as_dict())

    def test_save_json(self, tmp_path):
        path = make_table().save_json(str(tmp_path))
        data = load_json(path)
        assert data["title"] == "Fig. X: demo"
        assert data["rows"][0] == ["canneal", 1.25, 3]
        assert data["rows"][1][1] is None

    def test_save_json_explicit_filename(self, tmp_path):
        path = make_table().save_json(str(tmp_path), filename="demo.json")
        assert path.endswith("demo.json")
        assert os.path.exists(path)


class TestExperimentJson:
    def test_single_table_keyed_main(self, tmp_path):
        path = save_experiment_json("fig99", {"": make_table()}, str(tmp_path))
        data = load_json(path)
        assert data["experiment"] == "fig99"
        assert list(data["tables"]) == ["main"]

    def test_multi_table_keys_preserved(self, tmp_path):
        tables = {"error": make_table(), "runtime": make_table()}
        data = load_json(save_experiment_json("fig10", tables, str(tmp_path)))
        assert set(data["tables"]) == {"error", "runtime"}
        assert data["tables"]["error"]["rows"] == make_table().as_dict()["rows"]


class TestBenchSummary:
    def test_creates_file(self, tmp_path):
        path = update_bench_summary(
            str(tmp_path), experiments={"fig10": {"wall_s": 1.0, "tables": ["error"]}}
        )
        data = load_json(path)
        assert data["schema"] == "repro-bench/v1"
        assert data["experiments"]["fig10"]["wall_s"] == 1.0

    def test_merges_experiments_across_calls(self, tmp_path):
        d = str(tmp_path)
        update_bench_summary(d, experiments={"fig10": {"wall_s": 1.0}})
        update_bench_summary(d, experiments={"fig11": {"wall_s": 2.0}})
        data = load_json(os.path.join(d, BENCH_FILENAME))
        assert set(data["experiments"]) == {"fig10", "fig11"}

    def test_runs_replace_same_workload_config(self, tmp_path):
        d = str(tmp_path)
        update_bench_summary(
            d, runs=[{"workload": "jpeg", "config": "baseline-2MB", "sim_wall_s": 9.0}]
        )
        update_bench_summary(
            d,
            runs=[
                {"workload": "jpeg", "config": "baseline-2MB", "sim_wall_s": 1.0},
                {"workload": "canneal", "config": "baseline-2MB", "sim_wall_s": 2.0},
            ],
        )
        runs = load_json(os.path.join(d, BENCH_FILENAME))["runs"]
        assert len(runs) == 2
        jpeg = [r for r in runs if r["workload"] == "jpeg"][0]
        assert jpeg["sim_wall_s"] == 1.0

    def test_corrupt_summary_is_regenerated(self, tmp_path):
        d = str(tmp_path)
        with open(os.path.join(d, BENCH_FILENAME), "w") as fh:
            fh.write("{not json")
        path = update_bench_summary(d, experiments={"fig10": {"wall_s": 1.0}})
        assert load_json(path)["experiments"]["fig10"]["wall_s"] == 1.0

    def test_profile_and_context_overwrite(self, tmp_path):
        d = str(tmp_path)
        update_bench_summary(d, profile={"stages": {"sim": 1.0}}, context={"seed": 7})
        update_bench_summary(d, profile={"stages": {"sim": 2.0}}, context={"seed": 8})
        data = load_json(os.path.join(d, BENCH_FILENAME))
        assert data["profile"]["stages"]["sim"] == 2.0
        assert data["context"]["seed"] == 8


class TestRenderReport:
    def test_missing_directory(self, tmp_path):
        assert "run an experiment first" in render_report(str(tmp_path / "nope"))

    def test_empty_directory(self, tmp_path):
        assert BENCH_FILENAME in render_report(str(tmp_path))

    def test_full_report(self, tmp_path):
        d = str(tmp_path)
        save_experiment_json("fig10", {"error": make_table()}, d)
        update_bench_summary(
            d,
            experiments={"fig10": {"wall_s": 1.5, "tables": ["error"]}},
            runs=[
                {
                    "workload": "jpeg",
                    "config": "dopp-14bit-1/4",
                    "sim_wall_s": 0.5,
                    "accesses_per_sec": 1e5,
                    "llc_miss_rate": 0.25,
                    "back_invalidations": 3,
                }
            ],
            profile={"stages": {"sim": 0.5, "trace": 0.1}},
        )
        text = render_report(d)
        assert "fig10" in text
        assert "jpeg" in text
        assert "dopp-14bit-1/4" in text
        assert "sim" in text
        assert "fig10.json" in text

    def test_write_json_creates_parents(self, tmp_path):
        path = write_json(str(tmp_path / "a" / "b.json"), {"x": 1})
        assert load_json(path) == {"x": 1}


class TestAtomicWrite:
    """write_json must never leave a truncated file (crash window)."""

    def test_failed_serialization_keeps_old_file(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_json(path, {"runs": [1, 2, 3]})

        class Unserializable:
            def __str__(self):
                raise RuntimeError("boom mid-dump")

        try:
            write_json(path, {"runs": Unserializable()})
        except RuntimeError:
            pass
        # The original content survived the crashed write...
        assert load_json(path) == {"runs": [1, 2, 3]}
        # ...and the temp file was cleaned up.
        assert os.listdir(str(tmp_path)) == ["bench.json"]

    def test_replace_is_atomic_not_in_place(self, tmp_path, monkeypatch):
        # If write_json opened the target directly, a crash mid-write
        # would truncate it; assert the data travels via os.replace.
        path = str(tmp_path / "bench.json")
        write_json(path, {"v": 1})
        calls = []
        real_replace = os.replace

        def spy(src, dst):
            calls.append((src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        write_json(path, {"v": 2})
        assert len(calls) == 1
        src, dst = calls[0]
        assert dst == path and src != path
        assert os.path.dirname(src) == os.path.dirname(path)
        assert load_json(path) == {"v": 2}
