"""Deeper driver tests: sampling, companion stats, bar outputs."""

import pytest

from repro.harness import ExperimentContext, experiments
from repro.harness.runner import dopp_spec


@pytest.fixture(scope="module")
def ctx3():
    return ExperimentContext(
        seed=5, scale=0.05, workloads=["jpeg", "canneal", "blackscholes"]
    )


class TestFig02Sampling:
    def test_sampling_cap_respected(self, ctx3):
        table = experiments.fig02_threshold_similarity(ctx3, max_blocks_per_region=64)
        assert len(table.rows) == 3
        for row in table.rows:
            for cell in row[1:]:
                assert 0.0 <= cell <= 1.0

    def test_sampling_preserves_monotonicity(self, ctx3):
        table = experiments.fig02_threshold_similarity(ctx3, max_blocks_per_region=128)
        for row in table.rows:
            vals = row[1:]
            assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))


class TestFig10Companion:
    def test_stats_table_columns(self, ctx3):
        tables = experiments.fig10_data_array(ctx3)
        stats = tables["stats"]
        assert stats.headers == [
            "workload",
            "tags/entry (resident)",
            "tags/evicted entry",
            "dirty evictions %",
            "hit rate %",
        ]
        for row in stats.rows:
            assert row[1] >= 0.0
            assert 0.0 <= row[3] <= 100.0
            assert 0.0 <= row[4] <= 100.0

    def test_resident_sharing_positive_for_redundant_workloads(self, ctx3):
        tables = experiments.fig10_data_array(ctx3)
        stats = {row[0]: row for row in tables["stats"].rows}
        # blackscholes' exact redundancy must show up as resident sharing.
        assert stats["blackscholes"][1] > 1.0


class TestDriverConsistency:
    def test_error_tables_agree_between_figures(self, ctx3):
        """Fig. 9 and Fig. 10 share the (14-bit, 1/4) configuration."""
        fig9 = experiments.fig09_map_space(ctx3)["error"].row_map()
        fig10 = experiments.fig10_data_array(ctx3)["error"].row_map()
        for name in ("jpeg", "canneal", "blackscholes"):
            assert fig9[name][3] == pytest.approx(fig10[name][2])

    def test_run_cache_shared_across_drivers(self, ctx3):
        """Fig. 11's energy reuses Fig. 10's simulations (same spec)."""
        before = len(ctx3._runs)
        experiments.fig11_energy_reduction(ctx3)
        experiments.fig12_offchip_traffic(ctx3)
        after = len(ctx3._runs)
        # Only the baseline + three dopp configs exist per workload;
        # no duplicate simulations were added by the second driver.
        assert after == before

    def test_headline_uses_base_config(self, ctx3):
        table = experiments.summary_headline(ctx3)
        spec = dopp_spec(14, 0.25)
        for name in ctx3.names:
            assert (name, spec) in ctx3._runs
        assert len(table.rows) == 4
