"""Tests for event tracing (repro.obs.events) and its instrumentation."""

import numpy as np

from repro.core.config import DoppelgangerConfig
from repro.core.doppelganger import DoppelgangerCache
from repro.core.maps import MapConfig
from repro.obs.events import (
    EVENT_KINDS,
    Event,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
    read_jsonl,
)
from repro.trace.record import DType
from repro.trace.region import Region, RegionMap

RID = 0


def make_cache(tag_entries=64, tag_ways=4, data_fraction=0.25, bits=14):
    regions = RegionMap(
        [Region("r", 0, 1 << 20, DType.F32, approx=True, vmin=0.0, vmax=100.0)]
    )
    cfg = DoppelgangerConfig(
        tag_entries=tag_entries,
        tag_ways=tag_ways,
        data_fraction=data_fraction,
        data_ways=4,
        map=MapConfig(bits),
    )
    return DoppelgangerCache(cfg, regions=regions)


def block(value, spread=0.0, elems=16):
    if spread:
        return np.linspace(value - spread, value + spread, elems)
    return np.full(elems, float(value))


class TestTracer:
    def test_disabled_without_sinks(self):
        tr = Tracer()
        assert not tr.enabled
        tr.emit("map_generation", addr=0x40)  # no-op

    def test_add_sink_enables(self):
        tr = Tracer()
        ring = tr.add_sink(RingBufferSink(8))
        assert tr.enabled
        tr.emit("map_generation", addr=0x40, map=3)
        assert ring.events[0].kind == "map_generation"
        assert ring.events[0].fields == {"addr": 0x40, "map": 3}

    def test_seq_and_ts_monotonic(self):
        tr = Tracer()
        ring = tr.add_sink(RingBufferSink(8))
        tr.emit("a")
        tr.emit("b")
        first, second = ring.events
        assert second.seq == first.seq + 1
        assert second.ts_ns >= first.ts_ns

    def test_fanout_to_multiple_sinks(self, tmp_path):
        tr = Tracer()
        ring = tr.add_sink(RingBufferSink(8))
        jsonl = tr.add_sink(JsonlFileSink(str(tmp_path / "t.jsonl")))
        tr.emit("data_eviction", map=1, tags=4, dirty=1)
        tr.close()
        assert ring.total_emitted == 1
        assert jsonl.written == 1


class TestRingBufferSink:
    def test_capacity_bound(self):
        ring = RingBufferSink(2)
        for i in range(5):
            ring.emit(Event(i, i, "k", {}))
        assert len(ring.events) == 2
        assert ring.total_emitted == 5
        assert ring.events[0].seq == 3

    def test_counts_by_kind(self):
        ring = RingBufferSink(8)
        ring.emit(Event(1, 0, "a", {}))
        ring.emit(Event(2, 0, "a", {}))
        ring.emit(Event(3, 0, "b", {}))
        assert ring.counts_by_kind() == {"a": 2, "b": 1}


class TestJsonlFileSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "trace.jsonl")
        sink = JsonlFileSink(path)
        sink.emit(Event(1, 100, "map_generation", {"addr": 64, "map": 5}))
        sink.emit(Event(2, 200, "back_invalidation", {"addr": 128, "origin": 64}))
        sink.close()
        events = read_jsonl(path)
        assert [e["kind"] for e in events] == ["map_generation", "back_invalidation"]
        assert events[0] == {
            "seq": 1, "ts_ns": 100, "kind": "map_generation", "addr": 64, "map": 5,
        }

    def test_close_idempotent(self, tmp_path):
        sink = JsonlFileSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()


class TestDoppelgangerInstrumentation:
    def attach(self, cache):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink(4096))
        cache.tracer = tracer
        return ring

    def test_insert_emits_map_generation_and_tag_insert(self):
        cache = make_cache()
        ring = self.attach(cache)
        cache.insert(0x40, RID, block(10))
        kinds = ring.counts_by_kind()
        assert kinds["map_generation"] == 1
        assert kinds["tag_insert"] == 1
        insert_ev = [e for e in ring.events if e.kind == "tag_insert"][0]
        assert insert_ev.fields["shared"] is False

    def test_similar_insert_marked_shared(self):
        cache = make_cache()
        ring = self.attach(cache)
        cache.insert(0x40, RID, block(10))
        cache.insert(0x80, RID, block(10))  # same map -> joins the list
        shared = [e for e in ring.events if e.kind == "tag_insert"][1]
        assert shared.fields["shared"] is True

    def test_write_with_new_map_emits_tag_move(self):
        cache = make_cache()
        ring = self.attach(cache)
        cache.insert(0x40, RID, block(10))
        cache.writeback(0x40, RID, block(90))
        moves = [e for e in ring.events if e.kind == "tag_move"]
        assert len(moves) == 1
        assert moves[0].fields["old_map"] != moves[0].fields["new_map"]

    def test_data_eviction_reports_fanout(self):
        # 16-entry data array (64 tags * 1/4), 4-way: fill every set and
        # force a data-entry eviction carrying a multi-tag list.
        cache = make_cache()
        ring = self.attach(cache)
        addr = 0x40
        # Two tags sharing one data entry:
        cache.insert(addr, RID, block(50))
        cache.insert(addr + 0x40, RID, block(50))
        # Distinct maps until some set overflows:
        v = 0
        while not any(e.kind == "data_eviction" for e in ring.events):
            v += 1
            addr += 0x40
            cache.insert(addr + 0x40, RID, block(v % 100, spread=(v % 7) / 10))
            assert v < 5000, "no data eviction triggered"
        ev = [e for e in ring.events if e.kind == "data_eviction"][0]
        assert ev.fields["tags"] >= 1
        assert 0 <= ev.fields["dirty"] <= ev.fields["tags"]

    def test_untraced_cache_behaves_identically(self):
        traced, plain = make_cache(), make_cache()
        self.attach(traced)
        for i in range(200):
            addr = 0x40 * (i + 1)
            traced.insert(addr, RID, block(i % 50, spread=(i % 3) / 10))
            plain.insert(addr, RID, block(i % 50, spread=(i % 3) / 10))
        assert traced.stats == plain.stats
        traced.check_invariants()

    def test_event_kinds_registry_is_complete(self):
        assert "map_generation" in EVENT_KINDS
        assert "back_invalidation" in EVENT_KINDS
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)


class TestDropAccounting:
    """Ring wrap-around is counted, not silent (observability PR)."""

    def test_no_drops_below_capacity(self):
        ring = RingBufferSink(capacity=8)
        tracer = Tracer([ring])
        for i in range(8):
            tracer.emit("tick", i=i)
        assert ring.dropped_events == 0
        assert ring.total_emitted == 8

    def test_wraparound_counts_drops(self):
        ring = RingBufferSink(capacity=4)
        tracer = Tracer([ring])
        for i in range(10):
            tracer.emit("tick", i=i)
        assert ring.dropped_events == 6
        assert len(ring.events) == 4
        # The invariant the class docstring promises:
        assert ring.total_emitted == len(ring.events) + ring.dropped_events
        # Oldest surviving event is the first one NOT dropped.
        assert ring.events[0].fields["i"] == 6

    def test_clear_is_not_a_drop(self):
        ring = RingBufferSink(capacity=4)
        tracer = Tracer([ring])
        for i in range(4):
            tracer.emit("tick", i=i)
        ring.clear()
        assert ring.dropped_events == 0
        assert ring.total_emitted == 4

    def test_ring_summary(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer([ring])
        for i in range(5):
            tracer.emit("tick", i=i)
        summary = ring.summary()
        assert summary["capacity"] == 2
        assert summary["buffered"] == 2
        assert summary["total_emitted"] == 5
        assert summary["dropped_events"] == 3

    def test_tracer_summary_exposes_drops(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer([ring], sample=2)
        for i in range(10):
            tracer.emit("tick", i=i)
        summary = tracer.summary()
        assert summary["emitted"] == 10
        assert summary["forwarded"] == 5  # 1-in-2 sampling
        assert summary["dropped_events"] == 3  # 5 forwarded - 2 buffered
        assert summary["sinks"][0]["sink"] == "RingBufferSink"

    def test_jsonl_sink_never_drops(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlFileSink(path)
        tracer = Tracer([sink])
        for i in range(5):
            tracer.emit("tick", i=i)
        tracer.close()
        assert tracer.summary()["dropped_events"] == 0
        assert sink.summary()["written"] == 5
