"""Additional CLI and stats-structure tests."""

import pytest

from repro.core.doppelganger import DoppelgangerStats


class TestDoppelgangerStats:
    def test_hit_rate_zero_division(self):
        stats = DoppelgangerStats()
        assert stats.hit_rate == 0.0

    def test_avg_tags_zero_division(self):
        stats = DoppelgangerStats()
        assert stats.avg_tags_per_evicted_entry == 0.0

    def test_dirty_fraction_zero_division(self):
        stats = DoppelgangerStats()
        assert stats.dirty_eviction_fraction == 0.0

    def test_derived_values(self):
        stats = DoppelgangerStats(
            accesses=10, hits=4,
            data_evictions=2, tags_at_data_eviction=9,
            dirty_tags_evicted=1, clean_tags_evicted=3,
        )
        assert stats.hit_rate == pytest.approx(0.4)
        assert stats.avg_tags_per_evicted_entry == pytest.approx(4.5)
        assert stats.dirty_eviction_fraction == pytest.approx(0.25)


class TestRunnerEnv:
    def test_env_scale_and_seed(self, monkeypatch):
        from repro.harness.runner import env_scale, env_seed

        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_SEED", "42")
        assert env_scale() == 0.5
        assert env_seed() == 42

    def test_defaults(self, monkeypatch):
        from repro.harness.runner import env_scale, env_seed

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert env_scale() == 1.0
        assert env_seed() == 7

    def test_snap_pow2(self):
        from repro.harness.runner import snap_pow2

        assert snap_pow2(1.0) == 1.0
        assert snap_pow2(2.0) == 1.0  # never scale structures up
        assert snap_pow2(0.5) == 0.5
        assert snap_pow2(0.3) == 0.25
        assert snap_pow2(0.01) == pytest.approx(1 / 16)


class TestSizeScaling:
    def test_scaled_llc_geometry(self):
        from repro.harness.runner import dopp_spec

        llc = dopp_spec(14, 0.25).build_llc(None, size_factor=0.25)
        assert llc.dopp.tags.num_entries == 4096
        assert llc.dopp.data.num_entries == 1024
        assert llc.precise.size_bytes == 256 * 1024

    def test_floor_respected(self):
        from repro.harness.runner import dopp_spec

        llc = dopp_spec(14, 0.25).build_llc(None, size_factor=1 / 64)
        assert llc.dopp.tags.num_entries >= 1024
        assert llc.precise.size_bytes >= 64 * 1024


class TestVersionFlag:
    def test_top_level_version(self, capsys):
        from repro import __version__
        from repro.cli import main

        assert main(["--version"]) == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_short_form(self, capsys):
        from repro import __version__
        from repro.cli import main

        assert main(["-V"]) == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_matches_pyproject(self):
        import pathlib
        import re

        import repro

        pyproject = (
            pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        )
        match = re.search(
            r'^version = "([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        assert match is not None
        assert match.group(1) == repro.__version__
