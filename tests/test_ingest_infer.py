"""Region inference and synthetic value models."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, TraceFormatError
from repro.ingest import (
    BlockScan,
    RawBatch,
    annotate_regions,
    cluster_blocks,
    get_value_model,
    infer_regions,
    value_model_names,
)

BS = 64


def make_batch(addrs, is_write=None, values=None, cores=None, gaps=None):
    n = len(addrs)
    return RawBatch(
        cores=np.asarray(cores if cores is not None else [0] * n, dtype=np.int8),
        addrs=np.asarray(addrs, dtype=np.int64),
        is_write=np.asarray(
            is_write if is_write is not None else [False] * n, dtype=bool
        ),
        values=np.asarray(
            values if values is not None else [np.nan] * n, dtype=np.float64
        ),
        gaps=np.asarray(gaps if gaps is not None else [0] * n, dtype=np.int32),
    )


def scan_of(addrs, **kw):
    scan = BlockScan(BS)
    scan.update(make_batch(addrs, **kw))
    return scan


class TestClustering:
    def test_contiguous_blocks_coalesce(self):
        addrs = [0x1000 + i * BS for i in range(8)]
        scan = scan_of(addrs)
        clusters = cluster_blocks(scan.touched_blocks(), BS, 4, scan)
        assert len(clusters) == 1
        assert clusters[0].base == 0x1000
        assert clusters[0].blocks == 8

    def test_split_at_large_gap(self):
        addrs = [0x1000, 0x1000 + BS, 0x100000]
        scan = scan_of(addrs)
        clusters = cluster_blocks(scan.touched_blocks(), BS, 4, scan)
        assert [c.base for c in clusters] == [0x1000, 0x100000]

    def test_hole_within_gap_stays_one_region(self):
        # Blocks 0 and 3 touched, hole of 2 blocks <= gap_blocks=4.
        addrs = [0x0, 3 * BS]
        scan = scan_of(addrs)
        (cluster,) = cluster_blocks(scan.touched_blocks(), BS, 4, scan)
        assert cluster.size == 4 * BS  # hole included
        assert cluster.blocks == 4

    def test_read_write_counts(self):
        scan = scan_of([0x0, 0x0, BS], is_write=[False, True, True])
        (cluster,) = cluster_blocks(scan.touched_blocks(), BS, 4, scan)
        assert (cluster.reads, cluster.writes) == (1, 2)

    def test_bad_gap_blocks(self):
        scan = scan_of([0x0])
        with pytest.raises(TraceFormatError):
            cluster_blocks(scan.touched_blocks(), BS, 0, scan)


class TestAnnotation:
    def infer(self, addrs, **kw):
        return infer_regions([make_batch(addrs)], block_size=BS, **kw)

    def test_auto_policy_keeps_small_clusters_precise(self):
        # One 4-block cluster, one single-block cluster far away.
        addrs = [i * BS for i in range(4)] + [0x100000]
        regions, _ = self.infer(addrs, approx_min_blocks=2)
        assert [r.approx for r in regions] == [True, False]

    def test_all_and_none_policies(self):
        addrs = [0x0, 0x100000]
        all_regions, _ = self.infer(addrs, approx="all")
        assert all(r.approx for r in all_regions)
        none_regions, _ = self.infer(addrs, approx="none")
        assert not any(r.approx for r in none_regions)

    def test_unknown_policy(self):
        with pytest.raises(TraceFormatError):
            self.infer([0x0], approx="sometimes")

    def test_synthetic_range_is_unit(self):
        regions, _ = self.infer([0x0, BS])
        (region,) = regions
        assert (region.vmin, region.vmax) == (0.0, 1.0)

    def test_embedded_values_drive_range(self):
        batch = make_batch([0x0, BS, 2 * BS], values=[-3.5, 2.0, 7.25])
        regions, scan = infer_regions([batch], block_size=BS)
        assert scan.has_values
        (region,) = regions
        assert (region.vmin, region.vmax) == (-3.5, 7.25)

    def test_degenerate_span_is_widened(self):
        batch = make_batch([0x0, BS], values=[4.0, 4.0])
        regions, _ = infer_regions([batch], block_size=BS)
        (region,) = regions
        assert region.vmin == 4.0 and region.vmax > region.vmin

    def test_values_outside_any_cluster_are_ignored(self):
        scan = scan_of([0x0, BS], values=[1.0, 2.0])
        clusters = cluster_blocks([0], BS, 4, scan)  # only block 0
        regions = annotate_regions(clusters, scan)
        assert len(regions) == 1
        (region,) = regions
        assert region.vmax >= region.vmin


class TestValueModels:
    def test_registry(self):
        names = value_model_names()
        assert names[0] == "gradient"
        assert set(names) == {"gradient", "uniform", "constant"}

    @pytest.mark.parametrize("name", ["gradient", "uniform", "constant"])
    def test_models_are_normalized_and_deterministic(self, name):
        model = get_value_model(name)
        a = model.region_values(256, np.random.default_rng(5))
        b = model.region_values(256, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0.0 and a.max() <= 1.0

    def test_unknown_model_is_config_error(self):
        with pytest.raises(ConfigError) as excinfo:
            get_value_model("sawtooth")
        assert excinfo.value.exit_code == 2


@settings(max_examples=30, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=120
    ),
    gap_blocks=st.integers(min_value=1, max_value=32),
)
def test_inference_invariants(addrs, gap_blocks):
    """Clusters tile the touched footprint for any address stream."""
    regions, scan = infer_regions(
        [make_batch(addrs)], block_size=BS, gap_blocks=gap_blocks
    )
    touched = scan.touched_blocks()
    assert touched == sorted({a & ~(BS - 1) for a in addrs})
    # Every touched block falls inside exactly one region.
    for block in touched:
        hits = [
            r for r in regions if r.base <= block < r.base + r.size
        ]
        assert len(hits) == 1
    # Regions are sorted, disjoint, block-aligned.
    spans = [(r.base, r.base + r.size) for r in regions]
    assert spans == sorted(spans)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start
    assert all(r.base % BS == 0 and r.size % BS == 0 for r in regions)
    # Per-block counters cover every access exactly once.
    counted = Counter()
    counted.update(scan.reads)
    counted.update(scan.writes)
    assert sum(counted.values()) == len(addrs)
